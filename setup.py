"""Setuptools shim.

The environment this repository targets has no network access and no
``wheel`` package, so PEP 517/660 builds (which need an editable wheel)
fail.  Keeping a classic ``setup.py`` alongside ``pyproject.toml`` lets
``pip install -e .`` fall back to the legacy ``setup.py develop`` path,
which works offline.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
