"""Command-line experiment runner.

Run reconstructed experiments by id and print their tables:

    python -m repro E2 E4            # specific experiments
    python -m repro --list           # what's available
    python -m repro --all            # everything (tens of minutes)

Benchmarks (``pytest benchmarks/ --benchmark-only``) run the same code
under timing and shape assertions; this entry point is for interactive
exploration.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis.experiments import ALL_EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run reconstructed experiments (see DESIGN.md).")
    parser.add_argument("experiments", nargs="*", metavar="EXPERIMENT",
                        help="experiment ids, e.g. E1 E5 (case-insensitive)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment")
    parser.add_argument("--report", metavar="PATH",
                        help="also write the tables to a markdown file")
    args = parser.parse_args(argv)

    if args.list:
        for key in sorted(ALL_EXPERIMENTS,
                          key=lambda k: int(k[1:])):
            doc = (ALL_EXPERIMENTS[key].__doc__ or "").strip().splitlines()
            print(f"{key:>4}  {doc[0] if doc else ''}")
        return 0

    requested = ([k for k in sorted(ALL_EXPERIMENTS,
                                    key=lambda k: int(k[1:]))]
                 if args.all else [e.upper() for e in args.experiments])
    if not requested:
        parser.print_usage()
        print("error: give experiment ids, --all, or --list",
              file=sys.stderr)
        return 2
    unknown = [e for e in requested if e not in ALL_EXPERIMENTS]
    if unknown:
        print(f"error: unknown experiment(s) {', '.join(unknown)}; "
              "try --list", file=sys.stderr)
        return 2

    sections: list[str] = []
    for key in requested:
        started = time.perf_counter()
        result = ALL_EXPERIMENTS[key]()
        elapsed = time.perf_counter() - started
        table = result.table()
        print(table)
        print(f"({elapsed:.1f}s)\n")
        sections.append(f"## {key}\n\n```\n{table}\n```\n"
                        f"_({elapsed:.1f}s)_\n")
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write("# Experiment report\n\n" + "\n".join(sections))
        print(f"report written to {args.report}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
