"""Command-line experiment runner.

Run reconstructed experiments by id and print their tables:

    python -m repro E2 E4              # specific experiments
    python -m repro --list             # what's available
    python -m repro --all --jobs 4     # everything, 4 worker processes

Results are cached under ``.repro_cache/`` keyed by (experiment shard,
package version, source fingerprint), so an unchanged tree re-prints in
seconds; ``--no-cache`` forces recomputation.  Every task execution is
appended to the run ledger (``.repro_cache/ledger.jsonl``, or a
sqlite-WAL database with ``--ledger-backend sqlite``);
``--ledger-summary`` prints where the time went and
``--ledger-query 'outcome=failed,order=-wall_s,limit=5'`` filters the
raw history.  A suite interrupted mid-run resumes from the cache
automatically; ``--resume`` additionally skips work the ledger records
as already completed and reports orphaned tasks an earlier run never
finished.

``--chaos LEVEL`` runs the suite under seeded runtime fault injection
(worker crashes, transient errors, torn cache/ledger writes) as a
self-test of the execution machinery: results must come out identical
to a clean run, because injection stays within the retry budget.

Benchmarks (``pytest benchmarks/ --benchmark-only``) run the same code
under timing and shape assertions; this entry point is for interactive
exploration.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import tempfile

from repro.analysis.experiments import ALL_EXPERIMENTS
from repro.runtime.cache import DEFAULT_CACHE_DIR
from repro.runtime.ledger import (
    DEFAULT_LEDGER_NAME,
    DEFAULT_SQLITE_LEDGER_NAME,
    LEDGER_BACKENDS,
    RunLedger,
    format_ledger_summary,
    parse_query,
    summarize_ledger,
)
from repro.runtime.runner import (
    ExperimentOutcome,
    dedupe_ids,
    run_experiments,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run reconstructed experiments (see DESIGN.md).")
    parser.add_argument("experiments", nargs="*", metavar="EXPERIMENT",
                        help="experiment ids, e.g. E1 E5 (case-insensitive)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment")
    parser.add_argument("--report", metavar="PATH",
                        help="also write the tables to a markdown file "
                             "(updated incrementally as experiments finish)")
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="worker processes (default 1 = in-process "
                             "serial; 0 = one per CPU)")
    parser.add_argument("--no-cache", action="store_true",
                        help="neither read nor write the result cache")
    parser.add_argument("--param", action="append", default=[],
                        metavar="KEY=VALUE", dest="params",
                        help="experiment keyword override, value parsed "
                             "as JSON with a plain-string fallback (e.g. "
                             "--param sizes=[[24,16]]); applies to every "
                             "requested experiment and is part of the "
                             "cache key")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        metavar="DIR",
                        help="cache/ledger directory (default %(default)s)")
    parser.add_argument("--resume", action="store_true",
                        help="skip work the run ledger records as already "
                             "completed (cached tables still print)")
    parser.add_argument("--ledger-summary", action="store_true",
                        help="print outcome counts, retries, orphans, "
                             "quarantined cache entries, and slowest "
                             "tasks from the run ledger, then exit")
    parser.add_argument("--ledger-backend", choices=LEDGER_BACKENDS,
                        default=None,
                        help="run-ledger storage backend (default: "
                             "inferred from the ledger path suffix; "
                             "'sqlite' uses a WAL database with "
                             "transactional appends)")
    parser.add_argument("--ledger-query", metavar="EXPR",
                        help="print matching ledger records as JSON "
                             "lines, then exit; EXPR is comma-separated "
                             "field=value terms plus order=[-]field and "
                             "limit=N, e.g. "
                             "'outcome=failed,order=-wall_s,limit=5'")
    parser.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="per-task wall-clock limit in seconds "
                             "(enforced with --jobs > 1)")
    parser.add_argument("--retry-timeouts", action="store_true",
                        help="spend retry budget on timed-out tasks too "
                             "(default: a timeout is presumed systematic "
                             "and fails immediately)")
    parser.add_argument("--chaos", type=float, default=None,
                        metavar="LEVEL",
                        help="inject runtime faults at intensity 0..1 "
                             "(worker crashes, transient errors, torn "
                             "cache/ledger writes); injection stays "
                             "within the retry budget, so results must "
                             "be identical to a clean run")
    parser.add_argument("--chaos-seed", type=int, default=0, metavar="N",
                        help="seed for the --chaos injection schedule "
                             "(default %(default)s)")
    parser.add_argument("--metrics", metavar="PATH",
                        help="collect metrics while running and write the "
                             "deterministic snapshot (JSON) to PATH")
    parser.add_argument("--trace", metavar="PATH",
                        help="write a JSONL span trace to PATH "
                             "(requires --jobs 1)")
    parser.add_argument("--profile", action="store_true",
                        help="print a per-stage wall-time summary after "
                             "the run (implies metrics collection)")
    return parser


def _write_report(path: str, requested: list[str],
                  outcomes: dict[int, ExperimentOutcome]) -> None:
    """Atomically rewrite the report from every finished experiment.

    Called after each completion, so the file on disk always holds all
    tables computed *so far* -- a crash mid-suite loses nothing.
    """
    sections: list[str] = []
    for index, key in enumerate(requested):
        outcome = outcomes.get(index)
        if outcome is None:
            continue
        if outcome.ok:
            sections.append(f"## {key}\n\n```\n{outcome.result.table()}\n"
                            f"```\n_({outcome.wall_s:.1f}s"
                            f"{', cached' if outcome.cached else ''})_\n")
        else:
            sections.append(f"## {key}\n\n**{outcome.outcome.upper()}**: "
                            f"{outcome.error}\n")
    text = "# Experiment report\n\n" + "\n".join(sections)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_name = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    ledger_name = (DEFAULT_SQLITE_LEDGER_NAME
                   if args.ledger_backend == "sqlite"
                   else DEFAULT_LEDGER_NAME)
    ledger_path = pathlib.Path(args.cache_dir) / ledger_name

    if args.list:
        cache = None
        if not args.no_cache:
            from repro.runtime.cache import ResultCache
            from repro.runtime.tasks import shard_experiment

            cache = ResultCache(args.cache_dir)
        for key in sorted(ALL_EXPERIMENTS,
                          key=lambda k: int(k[1:])):
            doc = (ALL_EXPERIMENTS[key].__doc__ or "").strip().splitlines()
            status = ""
            if cache is not None:
                tasks = shard_experiment(key)
                hits = sum(1 for t in tasks if cache.get(t) is not None)
                status = ("cached" if hits == len(tasks)
                          else f"partial {hits}/{len(tasks)}" if hits
                          else "uncached")
                status = f"[{status:<8}] "
            print(f"{key:>4}  {status}{doc[0] if doc else ''}")
        return 0

    if args.ledger_summary:
        print(format_ledger_summary(summarize_ledger(
            ledger_path, backend=args.ledger_backend,
            quarantine_dir=pathlib.Path(args.cache_dir) / "quarantine")))
        return 0

    if args.ledger_query:
        from repro.errors import ConfigurationError

        try:
            where, order, limit = parse_query(args.ledger_query)
            ledger = RunLedger(ledger_path, backend=args.ledger_backend)
            try:
                rows = ledger.query(where, order=order, limit=limit)
            finally:
                ledger.close()
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        for row in rows:
            print(json.dumps(row, sort_keys=True))
        return 0

    params = {}
    for item in args.params:
        key, sep, raw = item.partition("=")
        if not sep or not key:
            print(f"error: --param needs KEY=VALUE, got {item!r}",
                  file=sys.stderr)
            return 2
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw

    if args.jobs < 0:
        print("error: --jobs must be >= 0", file=sys.stderr)
        return 2
    jobs = args.jobs if args.jobs > 0 else None  # None -> cpu_count

    try:
        pathlib.Path(args.cache_dir).mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        print(f"error: cannot use --cache-dir {args.cache_dir!r}: {exc}",
              file=sys.stderr)
        return 2

    requested = ([k for k in sorted(ALL_EXPERIMENTS,
                                    key=lambda k: int(k[1:]))]
                 if args.all else dedupe_ids(args.experiments))
    if not requested:
        parser.print_usage()
        print("error: give experiment ids, --all, or --list",
              file=sys.stderr)
        return 2
    unknown = [e for e in requested if e not in ALL_EXPERIMENTS]
    if unknown:
        print(f"error: unknown experiment(s) {', '.join(unknown)}; "
              "try --list", file=sys.stderr)
        return 2

    outcomes: dict[int, ExperimentOutcome] = {}
    next_to_print = 0

    def emit(outcome: ExperimentOutcome) -> None:
        if outcome.ok:
            print(outcome.result.table())
            print(f"({outcome.wall_s:.1f}s"
                  f"{', cached' if outcome.cached else ''})\n")
        elif outcome.outcome == "skipped":
            print(f"[{outcome.experiment}] skipped: {outcome.error}\n")
        else:
            print(f"[{outcome.experiment}] FAILED: {outcome.error}\n",
                  file=sys.stderr)

    def on_experiment(index: int, outcome: ExperimentOutcome) -> None:
        nonlocal next_to_print
        outcomes[index] = outcome
        if args.report:
            _write_report(args.report, requested, outcomes)
        # Stream tables in requested order as they become available.
        while next_to_print in outcomes:
            emit(outcomes[next_to_print])
            next_to_print += 1

    if args.trace and jobs != 1:
        print("error: --trace requires --jobs 1 (worker processes cannot "
              "share the trace file)", file=sys.stderr)
        return 2

    chaos = None
    if args.chaos is not None:
        from repro.errors import ConfigurationError
        from repro.runtime.chaos import ChaosPolicy

        # Hangs need a per-task timeout to cut them short in parallel
        # mode; without one they only make sense serially (where the
        # runtime models them as instant timeouts).
        include_hangs = jobs == 1 or args.timeout is not None
        try:
            chaos = ChaosPolicy.at_intensity(
                args.chaos, seed=args.chaos_seed, max_attempt=1,
                include_hangs=include_hangs,
                hang_s=(3.0 * args.timeout if args.timeout else 30.0))
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    registry = None
    if args.metrics or args.trace or args.profile:
        from repro import obs

        registry = obs.MetricsRegistry()
    trace = None
    if args.trace:
        from repro import obs

        trace = obs.TraceWriter(args.trace)

    try:
        run_experiments(requested, jobs=jobs, use_cache=not args.no_cache,
                        cache_dir=args.cache_dir,
                        ledger_path=str(ledger_path),
                        ledger_backend=args.ledger_backend,
                        resume=args.resume, params=params or None,
                        timeout_s=args.timeout,
                        retry_timeouts=args.retry_timeouts or
                        chaos is not None,
                        chaos=chaos,
                        on_experiment=on_experiment,
                        metrics=registry, trace=trace)
    finally:
        if trace is not None:
            trace.close()
            print(f"trace ({trace.spans_written} spans) written to "
                  f"{args.trace}")

    if registry is not None and args.metrics:
        from repro import obs

        obs.write_metrics_json(args.metrics, registry)
        print(f"metrics written to {args.metrics}")
    if registry is not None and args.profile:
        from repro import obs

        print()
        print(obs.format_profile(registry))

    if args.report:
        print(f"report written to {args.report}")
    failures = [o for o in outcomes.values() if o.outcome == "failed"]
    if failures:
        print(f"error: {len(failures)} experiment(s) failed:",
              file=sys.stderr)
        for outcome in sorted(failures, key=lambda o: o.experiment):
            print(f"  {outcome.experiment}: {outcome.error}",
                  file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
