"""repro.resilience -- control-plane loss tolerance (S33).

The paper's premise is running the 802.16 mesh TDMA MAC over commodity
WiFi, where nothing guarantees that control frames (sync beacons, schedule
announcements, DSCH handshake legs) actually arrive.  This package holds
the pieces that keep the *guarantees* intact when they do not:

- :class:`ResilienceConfig` -- the knob set: dissemination coverage target
  and re-flood cadence for the schedule distributor, and the degraded-mode
  thresholds of the health monitor.
- :class:`HealthMonitor` -- per-node beacon-staleness tracking.  From the
  time since a node's last clock adoption and the oscillator drift bound it
  maintains a *worst-case* sync-error envelope; as the envelope approaches
  the slot guard budget the node first widens its effective guard
  (sacrificing usable airtime inside its own slots), and past a hard
  threshold it fail-safe-mutes every transmission until re-synced.  Slots
  are wasted, but a stale clock can never corrupt a neighbour's slot.

The companion mechanisms live where the traffic is: coverage-acked
activation with epoch re-floods and last-known-good holdover in
:class:`repro.overlay.distribution.ScheduleDistributor`, lossy handshakes
with timeout/retry in :class:`repro.mesh16.distributed.
DistributedScheduler`, and control-frame loss injection in
:meth:`repro.phy.channel.BroadcastChannel.set_control_error_model` plus
the ``control_loss`` fault kind.  Experiment E18 measures the whole stack.
"""

from repro.resilience.config import ResilienceConfig
from repro.resilience.health import HealthMonitor, NodeHealth

__all__ = [
    "HealthMonitor",
    "NodeHealth",
    "ResilienceConfig",
]
