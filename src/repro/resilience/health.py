"""Per-node sync-health tracking and fail-safe degraded modes.

A node cannot see its own clock error -- what it *can* bound is the worst
case: right after a successful beacon adoption the error is at most the
sync residual, and from then on it grows at twice the oscillator drift
bound (both sides of a link may drift apart).  The
:class:`HealthMonitor` maintains that envelope per node from adoption
timestamps alone and derives two graceful-degradation behaviours the
overlay MAC consults at every transmission opportunity:

**guard widening** -- while the envelope exceeds the dimensioned guard the
node starts its transmissions later (effective guard = envelope) and only
sends what still provably ends inside the slot at every neighbour's clock:
a transmission launched ``G`` after the local slot edge with airtime ``D``
stays inside the reference slot for any error up to ``wc`` iff ``G >= wc``
and ``G + D + wc <= slot``.  Usable airtime shrinks; safety does not.

**fail-safe mute** -- past a hard threshold (a configurable multiple of
the guard) the node stops transmitting entirely -- data, beacons,
announcements and ACKs -- until the next adoption.  Its slots are wasted,
but a badly stale clock can no longer corrupt anyone else's slot, so
conflict-freedom and the QoS of surviving flows hold unconditionally.

The monitor never touches an RNG and reads only the simulator clock, so
enabling it keeps runs deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro import obs
from repro.errors import ConfigurationError
from repro.mesh16.frame import MeshFrameConfig
from repro.resilience.config import ResilienceConfig
from repro.sim.trace import Trace
from repro.units import ppm


@dataclass
class NodeHealth:
    """One node's sync-health record."""

    #: true (simulator) time of the last clock adoption; nodes are assumed
    #: synchronized at start-up (time 0.0)
    last_adoption_true: float = 0.0
    adoptions: int = 0
    muted: bool = False
    degraded: bool = False
    #: closed/open mute intervals in true time: [start, end] or [start, None]
    mute_windows: list = field(default_factory=list)


class HealthMonitor:
    """Worst-case sync-error envelopes and the degraded-mode state machine.

    Parameters
    ----------
    frame_config:
        Frame geometry; supplies the guard budget and data-slot length the
        thresholds are measured against.
    config:
        Thresholds and the drift bound (see :class:`ResilienceConfig`).
    root:
        The timebase root (gateway).  The root *is* the reference clock,
        so its envelope is identically zero and it never degrades.
    trace:
        Optional shared trace; emits ``resilience.mute`` /
        ``resilience.unmute`` records.
    """

    def __init__(self, frame_config: MeshFrameConfig,
                 config: Optional[ResilienceConfig] = None, root: int = 0,
                 trace: Optional[Trace] = None) -> None:
        self.frame_config = frame_config
        self.config = config if config is not None else ResilienceConfig()
        self.root = root
        self.trace = trace if trace is not None else Trace(enabled=False)
        self._drift = ppm(self.config.drift_bound_ppm)
        self._nodes: dict[int, NodeHealth] = {}

    def _entry(self, node: int) -> NodeHealth:
        entry = self._nodes.get(node)
        if entry is None:
            entry = self._nodes[node] = NodeHealth()
        return entry

    # -- inputs -------------------------------------------------------------

    def note_adoption(self, node: int, true_now: float) -> None:
        """Record a successful clock adoption; lifts any mute."""
        entry = self._entry(node)
        entry.last_adoption_true = true_now
        entry.adoptions += 1
        entry.degraded = False
        if entry.muted:
            entry.muted = False
            entry.mute_windows[-1][1] = true_now
            obs.counter("resilience.unmute_events").inc()
            self.trace.emit(true_now, "resilience.unmute", node=node)

    # -- the envelope -------------------------------------------------------

    def worst_case_error_s(self, node: int, true_now: float) -> float:
        """Upper bound on ``node``'s clock error vs the root, right now."""
        if node == self.root:
            return 0.0
        elapsed = true_now - self._entry(node).last_adoption_true
        if elapsed < 0:
            raise ConfigurationError(
                f"adoption for node {node} recorded in the future")
        return self.config.sync_residual_s + 2 * self._drift * elapsed

    def tx_allowance(self, node: int, true_now: float) -> tuple[float, float]:
        """``(extra_guard_s, max_airtime_s)`` for a data slot right now.

        ``extra_guard_s`` is how much later than the dimensioned guard the
        transmission must start; ``max_airtime_s`` is the longest airtime
        that still provably ends inside the slot at every neighbour.  The
        pair degrades continuously: with a fresh envelope it is
        ``(0.0, slot - guard)``, i.e. the undegraded MAC behaviour.
        """
        guard = self.frame_config.guard_s
        slot = self.frame_config.data_slot_s
        wc = self.worst_case_error_s(node, true_now)
        self._note_degraded(node, wc, guard)
        effective = max(guard, wc)
        return effective - guard, slot - effective - wc

    def _note_degraded(self, node: int, wc: float, guard: float) -> None:
        entry = self._entry(node)
        if wc > self.config.degrade_error_fraction * guard:
            if not entry.degraded:
                entry.degraded = True
                obs.counter("resilience.degraded_events").inc()
        else:
            entry.degraded = False

    # -- fail-safe mute -----------------------------------------------------

    def check_mute(self, node: int, true_now: float) -> bool:
        """Evaluate the hard threshold at a transmission opportunity.

        Returns True iff the node must stay silent.  Entering the muted
        state is recorded here; leaving it happens only in
        :meth:`note_adoption` (a stale node cannot talk itself healthy).
        """
        if node == self.root:
            return False
        entry = self._entry(node)
        if entry.muted:
            return True
        wc = self.worst_case_error_s(node, true_now)
        threshold = self.config.mute_guard_multiple * self.frame_config.guard_s
        if wc > threshold:
            entry.muted = True
            entry.mute_windows.append([true_now, None])
            obs.counter("resilience.mute_events").inc()
            self.trace.emit(true_now, "resilience.mute", node=node,
                            worst_case_error_s=wc)
            return True
        return False

    def is_muted(self, node: int) -> bool:
        return self._entry(node).muted

    def muted_nodes(self) -> frozenset[int]:
        return frozenset(n for n, e in self._nodes.items() if e.muted)

    def mute_windows(self, node: int) -> tuple[tuple[float, Optional[float]], ...]:
        """True-time intervals during which ``node`` was muted."""
        return tuple((s, e) for s, e in self._entry(node).mute_windows)

    # -- instrumentation ----------------------------------------------------

    def state(self, node: int, true_now: float) -> str:
        """``"ok"``, ``"degraded"`` or ``"muted"`` -- for reports/tests."""
        if self.is_muted(node):
            return "muted"
        wc = self.worst_case_error_s(node, true_now)
        guard = self.frame_config.guard_s
        if wc > self.config.degrade_error_fraction * guard:
            return "degraded"
        return "ok"
