"""Resilience knobs: dissemination coverage and degraded-mode thresholds.

One frozen config object parameterizes both halves of the control-plane
loss story:

- **dissemination** (used by :class:`repro.overlay.distribution.
  ScheduleDistributor`): what fraction of live nodes must implicitly ack a
  schedule version before the gateway treats it as *committed* (and may
  originate the next one), how often the gateway re-floods an uncommitted
  version with a bumped epoch, and how many re-floods it is willing to pay;
- **degradation** (used by :class:`repro.resilience.health.HealthMonitor`):
  the oscillator drift bound that grows the worst-case sync-error envelope
  while beacons are lost, the fraction of the guard at which a node counts
  as *degraded*, and the guard multiple past which it fail-safe-mutes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ResilienceConfig:
    """Control-plane loss-tolerance parameters.

    Parameters
    ----------
    coverage_target:
        Fraction of live nodes whose implicit acks the gateway requires
        before a schedule version counts as committed.  1.0 (the default)
        is what makes mixed-version operation provably conflict-free: with
        full coverage required between originations, any two concurrently
        *applied* slot maps are adjacent versions, and adjacent versions
        are checked (or made, via a transition version) mutually
        conflict-free at origination time.
    reflood_interval_frames:
        How many frames the gateway waits between coverage checks; each
        check on an uncommitted version bumps the announcement epoch and
        re-arms the flood.
    max_refloods:
        Upper bound on epoch bumps per version (keeps control chatter
        bounded when a partition makes coverage unreachable).
    drift_bound_ppm:
        Worst-case oscillator frequency error assumed by the health
        monitor.  The mutual error envelope between two nodes grows at
        twice this rate while beacons are lost.
    sync_residual_s:
        Error assumed to remain immediately after a successful sync
        adoption (timestamp jitter over relay hops; E8 measures it).
    degrade_error_fraction:
        Worst-case error, as a fraction of the slot guard, past which a
        node counts as degraded (reported/counted; guard widening itself
        is continuous and starts as soon as the envelope exceeds the
        guard).
    mute_guard_multiple:
        Hard fail-safe threshold: when the worst-case error exceeds this
        multiple of the slot guard, the node mutes every transmission
        until the next successful adoption.
    """

    coverage_target: float = 1.0
    reflood_interval_frames: int = 8
    max_refloods: int = 32
    drift_bound_ppm: float = 50.0
    sync_residual_s: float = 0.0
    degrade_error_fraction: float = 0.5
    mute_guard_multiple: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 < self.coverage_target <= 1.0:
            raise ConfigurationError(
                f"coverage target must be in (0, 1], got {self.coverage_target}")
        if self.reflood_interval_frames < 1:
            raise ConfigurationError("re-flood interval must be >= 1 frame")
        if self.max_refloods < 0:
            raise ConfigurationError("max refloods must be non-negative")
        if self.drift_bound_ppm < 0:
            raise ConfigurationError("drift bound must be non-negative")
        if self.sync_residual_s < 0:
            raise ConfigurationError("sync residual must be non-negative")
        if not 0.0 <= self.degrade_error_fraction:
            raise ConfigurationError("degrade fraction must be non-negative")
        if self.mute_guard_multiple <= 0:
            raise ConfigurationError("mute threshold must be positive")
