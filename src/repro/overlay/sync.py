"""Clock synchronization over the control subframe.

The gateway's clock is the network timebase.  Every node, when it owns a
control opportunity (:class:`~repro.mesh16.network.ControlPlane`), puts a
:class:`~repro.mesh16.messages.SyncBeacon` on air carrying its current
estimate of the gateway clock.  Receivers recover "gateway time now" by
adding the beacon airtime and propagation delay, and *step* their software
clock to it -- adopting only estimates that are fresher (newer round) or
closer to the gateway (fewer relay hops) than what they already have.

Each timestamping operation (reading the clock at transmit start, at
reception end) carries hardware jitter, modelled as a uniform draw in
``+-timestamp_jitter_s``; the residual error after a sync step therefore
grows with tree depth, which is why :func:`repro.overlay.guard.
required_guard_s` takes a ``sync_residual_s`` term.

An optional extension (``skew_compensation``) estimates the local
oscillator's rate error from consecutive adoptions and disciplines the
clock rate, shrinking the drift term between resyncs (ablated in E8).

When beacons stop arriving (control-frame loss, a partitioned relay) the
daemon itself simply holds its last estimate and drifts; bounding the
damage is the :class:`repro.resilience.health.HealthMonitor`'s job, which
the overlay MAC consults per transmission opportunity -- it tracks the
worst-case error envelope from adoption timestamps, widens the effective
guard as the envelope grows, and fail-safe-mutes the node (including its
beacon relaying, so a stale timebase is not propagated) past the hard
threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro import obs
from repro.errors import ConfigurationError
from repro.mesh16.messages import SyncBeacon
from repro.sim.clock import DriftingClock
from repro.sim.trace import Trace
from repro.units import US


@dataclass(frozen=True)
class SyncConfig:
    """Synchronization protocol parameters."""

    #: hardware timestamping error bound per clock read (uniform +-bound)
    timestamp_jitter_s: float = 2 * US
    #: master switch; disabled sync lets clocks free-run (E8's control arm)
    enabled: bool = True
    #: estimate and discipline oscillator rate from consecutive adoptions
    skew_compensation: bool = False

    def __post_init__(self) -> None:
        if self.timestamp_jitter_s < 0:
            raise ConfigurationError("jitter bound must be non-negative")


@dataclass
class SyncState:
    """A node's view of the network timebase."""

    round_id: int = -1
    hops: int = 0
    #: local clock reading at the most recent adoption
    last_adoption_local: Optional[float] = None
    #: gateway-time estimate at the most recent adoption
    last_adoption_root: Optional[float] = None
    adoptions: int = 0
    #: rate (skew) estimation state: root-time anchor of the current
    #: estimation window and the phase steps accumulated inside it.  Each
    #: adoption step cancels exactly the error accrued since the previous
    #: one, so the steps telescope to (rate error) x (window length) --
    #: robust to the steps themselves, and jitter averages out over a long
    #: window.
    rate_anchor_root: Optional[float] = None
    step_accumulator_s: float = 0.0


class SyncDaemon:
    """Per-node synchronization logic (passive; driven by the overlay MAC).

    Parameters
    ----------
    node, root:
        This node's id and the timebase root (gateway).
    clock:
        The node's software clock; stepped (and optionally rate-disciplined)
        on adoption.
    config, rng, trace:
        Protocol parameters, jitter stream, and optional trace
        (``sync.beacon``, ``sync.adopt``).
    """

    def __init__(self, node: int, root: int, clock: DriftingClock,
                 config: SyncConfig, rng: np.random.Generator,
                 trace: Optional[Trace] = None) -> None:
        self.node = node
        self.root = root
        self.clock = clock
        self.config = config
        self.rng = rng
        self.trace = trace if trace is not None else Trace(enabled=False)
        self.state = SyncState()
        if node == root:
            # The root defines the timebase: round 0 is implicitly adopted.
            self.state.round_id = 0
            self.state.hops = 0
        self._next_round = 1

    @property
    def is_root(self) -> bool:
        return self.node == self.root

    @property
    def synced(self) -> bool:
        """True once this node has a usable timebase estimate."""
        return self.is_root or self.state.adoptions > 0

    def _jitter(self) -> float:
        bound = self.config.timestamp_jitter_s
        if bound == 0:
            return 0.0
        return float(self.rng.uniform(-bound, bound))

    # -- transmit side ------------------------------------------------------

    def make_beacon(self, true_now: float) -> Optional[SyncBeacon]:
        """The beacon to send at this node's control opportunity (or None).

        The root mints a new round each time it speaks; relays forward
        their current estimate.  Unsynced relays stay silent.
        """
        if not self.config.enabled:
            return None
        if self.is_root:
            round_id = self._next_round
            self._next_round += 1
            root_time = self.clock.local_time(true_now) + self._jitter()
            beacon = SyncBeacon(origin=self.node, sender=self.node,
                                root_time_at_tx=root_time,
                                round_id=round_id, hops=0)
        else:
            if not self.synced:
                return None
            estimate = self.clock.local_time(true_now) + self._jitter()
            beacon = SyncBeacon(origin=self.root, sender=self.node,
                                root_time_at_tx=estimate,
                                round_id=self.state.round_id,
                                hops=self.state.hops)
        self.trace.emit(true_now, "sync.beacon", node=self.node,
                        round=beacon.round_id, hops=beacon.hops)
        return beacon

    # -- receive side ----------------------------------------------------------

    def on_beacon(self, beacon: SyncBeacon, true_now: float,
                  airtime_s: float, propagation_s: float) -> bool:
        """Process a received beacon; returns True if the clock was stepped.

        ``true_now`` is the reception-complete instant; the sender stamped
        the beacon at transmission start, so gateway time "now" is the
        stamp plus airtime plus propagation (plus our own read jitter).
        """
        if not self.config.enabled or self.is_root:
            return False
        state = self.state
        fresher = beacon.round_id > state.round_id
        closer = (beacon.round_id == state.round_id
                  and beacon.hops + 1 < state.hops)
        if not (fresher or closer):
            return False

        root_now = (beacon.root_time_at_tx + airtime_s + propagation_s
                    + self._jitter())
        local_before = self.clock.local_time(true_now)

        step = root_now - local_before
        if self.config.skew_compensation:
            if state.rate_anchor_root is None:
                state.rate_anchor_root = root_now
                state.step_accumulator_s = 0.0
            else:
                state.step_accumulator_s += step
                elapsed_root = root_now - state.rate_anchor_root
                # Jitter per step is +-timestamp_jitter_s; over a window of
                # T root-seconds the telescoped steps resolve the rate to
                # ~jitter/T, so a 1 s floor gets comfortably below typical
                # crystal drifts for microsecond-class jitter.
                if elapsed_root >= 1.0:
                    # The clock gained -sum(steps) of error over the window,
                    # so its effective rate is high by that per-second.
                    rate_error = -state.step_accumulator_s / elapsed_root
                    intrinsic_rate = 1.0 + self.clock.skew
                    desired_effective = (self.clock.effective_rate
                                         / (1.0 + rate_error))
                    correction = float(np.clip(
                        desired_effective / intrinsic_rate, 0.999, 1.001))
                    self.clock.discipline_rate(true_now, correction)
                    state.rate_anchor_root = root_now
                    state.step_accumulator_s = 0.0

        self.clock.set_local(true_now, root_now)
        state.round_id = beacon.round_id
        state.hops = beacon.hops + 1
        state.last_adoption_local = root_now
        state.last_adoption_root = root_now
        state.adoptions += 1
        obs.counter("overlay.sync.adoptions").inc()
        obs.histogram("overlay.sync.step_abs_s",
                      edges=obs.TIME_EDGES_S).observe(abs(step))
        self.trace.emit(true_now, "sync.adopt", node=self.node,
                        round=beacon.round_id, hops=state.hops,
                        step=root_now - local_before)
        return True
