"""Guard-time dimensioning: the emulation's core overhead trade-off.

Two neighbours agree on slot boundaries only up to their mutual clock
error.  Between synchronization events that error grows at the *relative*
drift rate (bounded by twice the per-oscillator ppm bound), on top of the
residual error of the sync step itself (timestamping jitter accumulated
per relay hop) and propagation delay.  A transmission that starts a guard
interval after the local slot edge and must end a guard interval before
the local slot end stays inside every neighbour's view of the slot iff

    ``guard >= max_mutual_clock_error + propagation + turnaround``

with ``max_mutual_clock_error = 2 * drift_bound * resync_interval +
sync_residual``.  Larger guards waste airtime; experiment E4 sweeps this
trade-off and E9 translates it into goodput efficiency.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.units import US, ppm

#: Radio turnaround / timer granularity floor for commodity WiFi hardware.
DEFAULT_TURNAROUND_S = 5 * US


def required_guard_s(drift_bound_ppm: float, resync_interval_s: float,
                     sync_residual_s: float = 0.0,
                     propagation_s: float = 1 * US,
                     turnaround_s: float = DEFAULT_TURNAROUND_S) -> float:
    """Minimum per-slot guard for collision-free slot adherence.

    Parameters
    ----------
    drift_bound_ppm:
        Per-oscillator frequency error bound (crystal spec), in ppm.
    resync_interval_s:
        Worst-case time between successful clock corrections at a node.
    sync_residual_s:
        Error left right after a sync step (timestamp jitter accumulated
        over relay hops); measured by experiment E8.
    """
    if drift_bound_ppm < 0 or resync_interval_s < 0 or sync_residual_s < 0:
        raise ConfigurationError("guard inputs must be non-negative")
    mutual_drift = 2 * ppm(drift_bound_ppm) * resync_interval_s
    return mutual_drift + sync_residual_s + propagation_s + turnaround_s


def max_resync_interval_s(guard_s: float, drift_bound_ppm: float,
                          sync_residual_s: float = 0.0,
                          propagation_s: float = 1 * US,
                          turnaround_s: float = DEFAULT_TURNAROUND_S) -> float:
    """Longest resync period a given guard can absorb (inverse of above)."""
    if guard_s <= 0:
        raise ConfigurationError("guard must be positive")
    if drift_bound_ppm <= 0:
        raise ConfigurationError("drift bound must be positive")
    budget = guard_s - sync_residual_s - propagation_s - turnaround_s
    if budget <= 0:
        return 0.0
    return budget / (2 * ppm(drift_bound_ppm))


def slot_overhead_fraction(slot_s: float, guard_s: float,
                           plcp_overhead_s: float) -> float:
    """Fraction of a slot lost to guard + PHY preamble (0..1)."""
    if slot_s <= 0:
        raise ConfigurationError("slot must be positive")
    overhead = min(slot_s, guard_s + plcp_overhead_s)
    return overhead / slot_s
