"""In-band schedule distribution (the MSH-DSCH analogue).

The centralized scheduler lives at the gateway; its slot assignments must
reach every node over the mesh itself before they can take effect.  The
distributor floods a versioned :class:`~repro.mesh16.messages.
ScheduleAnnouncement` through the control subframe: the gateway transmits
it at its own control opportunities, every node that hears a new version
rebroadcasts it a configurable number of times at *its* opportunities
(control slots are collision-free by construction), and each node applies
the assignments at the announcement's activation frame -- measured on its
own synchronized clock, so the whole mesh switches schedules on the same
frame boundary (up to sync error, which the activation margin absorbs).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.schedule import Schedule
from repro.errors import ConfigurationError
from repro.mesh16.messages import ScheduleAnnouncement

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.overlay.emulation import TdmaOverlay


class ScheduleDistributor:
    """Flood-and-activate distribution of centralized schedules.

    Parameters
    ----------
    overlay:
        The TDMA overlay to distribute within (attach with
        :meth:`TdmaOverlay.attach_distributor`).
    gateway:
        The node that originates announcements.
    rebroadcasts:
        How many of its control opportunities each node spends repeating a
        newly learned version (redundancy against reception losses).
    """

    def __init__(self, overlay: "TdmaOverlay", gateway: int,
                 rebroadcasts: int = 2) -> None:
        if rebroadcasts < 1:
            raise ConfigurationError("need at least one rebroadcast")
        self.overlay = overlay
        self.gateway = gateway
        self.rebroadcasts = rebroadcasts
        self._next_version = 1
        #: highest version seen per node
        self.seen_version: dict[int, int] = {
            node: 0 for node in overlay.nodes}
        #: highest version applied per node
        self.applied_version: dict[int, int] = {
            node: 0 for node in overlay.nodes}
        #: node -> [announcement, remaining rebroadcasts]
        self._pending: dict[int, list] = {}

    # -- origination --------------------------------------------------------

    def announce(self, schedule,
                 activation_frame: int) -> ScheduleAnnouncement:
        """Queue a new schedule version for flooding from the gateway.

        ``schedule`` is anything exposing ``frame_slots`` and ``items()``
        -- a plain :class:`~repro.core.schedule.Schedule` or a multi-block
        view such as :class:`~repro.core.besteffort.TwoClassSchedule`.
        ``activation_frame`` should leave enough frames for the flood to
        cover the mesh: at least ``ceil(nodes / control_slots)`` frames per
        tree depth tier in the worst case.
        """
        if schedule.frame_slots != self.overlay.frame_config.data_slots:
            raise ConfigurationError(
                "announced schedule does not match the frame geometry")
        announcement = ScheduleAnnouncement.build(
            version=self._next_version,
            activation_frame=activation_frame,
            assignments=tuple(schedule.items()))
        self._next_version += 1
        self._learn(self.gateway, announcement)
        return announcement

    # -- overlay hooks ------------------------------------------------------

    def control_payload(self, node: int) -> Optional[ScheduleAnnouncement]:
        """Called by the overlay at ``node``'s control opportunity."""
        entry = self._pending.get(node)
        if entry is None:
            return None
        announcement, remaining = entry
        if remaining <= 1:
            del self._pending[node]
        else:
            entry[1] = remaining - 1
        return announcement

    def on_announcement(self, node: int,
                        announcement: ScheduleAnnouncement) -> bool:
        """Called by the overlay when ``node`` receives an announcement."""
        return self._learn(node, announcement)

    # -- internals -----------------------------------------------------------

    def _learn(self, node: int, announcement: ScheduleAnnouncement) -> bool:
        if announcement.version <= self.seen_version[node]:
            return False
        self.seen_version[node] = announcement.version
        self._pending[node] = [announcement, self.rebroadcasts]
        self._schedule_activation(node, announcement)
        self.overlay.trace.emit(self.overlay.sim.now, "dsch.learn",
                                node=node, version=announcement.version)
        return True

    def _schedule_activation(self, node: int,
                             announcement: ScheduleAnnouncement) -> None:
        tdma_node = self.overlay.nodes[node]
        local_at = self.overlay.frame_config.frame_start_local(
            announcement.activation_frame)
        at_true = tdma_node.clock.true_time(local_at)
        now = self.overlay.sim.now
        if at_true < now:
            at_true = now  # late learner activates immediately
        self.overlay.sim.schedule_at(at_true, self._activate, node,
                                     announcement)

    def _activate(self, node: int,
                  announcement: ScheduleAnnouncement) -> None:
        if announcement.version <= self.applied_version[node]:
            return  # superseded before activation
        self.applied_version[node] = announcement.version
        self.overlay.nodes[node].apply_assignments(announcement.assignments)
        self.overlay.trace.emit(self.overlay.sim.now, "dsch.activate",
                                node=node, version=announcement.version)

    # -- instrumentation -------------------------------------------------------

    def coverage(self) -> float:
        """Fraction of nodes that have learned the latest version."""
        latest = self._next_version - 1
        if latest == 0:
            return 1.0
        learned = sum(1 for v in self.seen_version.values() if v >= latest)
        return learned / len(self.seen_version)
