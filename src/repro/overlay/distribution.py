"""In-band schedule distribution (the MSH-DSCH analogue).

The centralized scheduler lives at the gateway; its slot assignments must
reach every node over the mesh itself before they can take effect.  The
distributor floods a versioned :class:`~repro.mesh16.messages.
ScheduleAnnouncement` through the control subframe: the gateway transmits
it at its own control opportunities, every node that hears a new version
rebroadcasts it a configurable number of times at *its* opportunities, and
each node applies the assignments at the announcement's activation frame
-- measured on its own synchronized clock, so the mesh switches schedules
on the same frame boundary (up to sync error, which the activation margin
absorbs).

Control slots are collision-free by construction, but on real WiFi
hardware control *receptions* are not reliable: fading, noise bursts and
interference lose announcements exactly like data (modelled by
:meth:`repro.phy.channel.BroadcastChannel.set_control_error_model` and the
``control_loss`` fault kind).  A fixed rebroadcast budget then silently
strands nodes on stale slot maps.  Passing a :class:`repro.resilience.
ResilienceConfig` enables the loss-tolerant dissemination mode:

- **implicit acks** -- every rebroadcast of version ``N`` is an implicit
  ack; announcements piggyback the sender's set of nodes known to hold
  ``N``, receivers merge it, and the union gossips back to the gateway on
  the rebroadcasts themselves (no extra message type).
- **coverage-acked commit with epoch re-floods** -- the gateway treats a
  version as *committed* only once its ack set covers a configurable
  fraction of live nodes; until then it defers any successor version and
  periodically re-floods with a bumped ``epoch``, which refreshes every
  node's rebroadcast budget.  Stale floods (older version, or same version
  with a non-newer epoch) are rejected and only mined for acks.
- **last-known-good holdover** -- a node that missed version ``N`` simply
  keeps executing ``N-1``; nothing ever clears a slot map except a newer
  one.  Because the gateway never originates ``N+1`` before ``N`` commits,
  any two *concurrently applied* maps are adjacent versions.
- **make-before-break transition versions** -- at origination the new
  assignments are checked against the last committed ones on the conflict
  graph (cross-version overlaps only matter between *different*
  transmitters: one node holds exactly one map).  If the union conflicts,
  the gateway first floods an automatic transition version containing
  only the compatible subset, commits it, then floods the full target --
  so every adjacent-version mix on air is conflict-free by construction,
  and the S8 validator passes at any control-loss rate.
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace
from typing import TYPE_CHECKING, Optional

from repro import obs
from repro.errors import ConfigurationError
from repro.mesh16.messages import ScheduleAnnouncement
from repro.resilience.config import ResilienceConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    import networkx as nx

    from repro.overlay.emulation import TdmaOverlay

#: minimum frames between consecutive activation boundaries in resilient
#: mode; keeps non-adjacent versions from ever being co-applied across the
#: residual sync error
ACTIVATION_GAP_FRAMES = 2


class ScheduleDistributor:
    """Flood-and-activate distribution of centralized schedules.

    Parameters
    ----------
    overlay:
        The TDMA overlay to distribute within (attach with
        :meth:`TdmaOverlay.attach_distributor`).
    gateway:
        The node that originates announcements.
    rebroadcasts:
        How many of its control opportunities each node spends repeating a
        newly learned version (redundancy against reception losses).
    resilience:
        Enables the loss-tolerant dissemination mode (implicit-ack
        coverage, epoch re-floods, commit gating, transition versions).
        ``None`` (the default) keeps the legacy fire-and-forget flood.
    conflicts:
        Link conflict graph (:func:`repro.core.conflict.conflict_graph`),
        required for automatic transition versions.  Without it the
        resilient mode trusts the caller to only announce schedules whose
        union with the previous one is conflict-free.
    """

    def __init__(self, overlay: "TdmaOverlay", gateway: int,
                 rebroadcasts: int = 2,
                 resilience: Optional[ResilienceConfig] = None,
                 conflicts: Optional["nx.Graph"] = None) -> None:
        if rebroadcasts < 1:
            raise ConfigurationError("need at least one rebroadcast")
        self.overlay = overlay
        self.gateway = gateway
        self.rebroadcasts = rebroadcasts
        self.resilience = resilience
        self.conflicts = conflicts
        self._next_version = 1
        #: highest version seen per node
        self.seen_version: dict[int, int] = {
            node: 0 for node in overlay.nodes}
        #: highest version applied per node
        self.applied_version: dict[int, int] = {
            node: 0 for node in overlay.nodes}
        #: node -> [announcement, remaining rebroadcasts]
        self._pending: dict[int, list] = {}
        #: the slot map each node is currently executing (holdover state);
        #: version 0 is the overlay's statically installed schedule
        initial = tuple(overlay.schedule.items())
        self.applied_assignments: dict[int, tuple] = {
            node: initial for node in overlay.nodes}
        # -- resilient-mode state ------------------------------------------
        #: canonical announcement per version (assignments + activation)
        self._announcements: dict[int, ScheduleAnnouncement] = {}
        #: per node: epoch of the version it currently holds
        self._epoch: dict[int, int] = {node: 0 for node in overlay.nodes}
        #: per node: ids known to hold the node's current version
        self._acked: dict[int, set[int]] = {
            node: set() for node in overlay.nodes}
        #: last version whose coverage the gateway confirmed
        self.committed_version = 0
        self._committed_pairs: tuple = initial
        #: version currently flooding (None when committed/caught up)
        self._inflight: Optional[int] = None
        self._refloods_used = 0
        #: queued (assignments, requested activation frame) targets
        self._queue: deque = deque()
        self._reflood_armed = False
        self._last_activation_frame = 0
        #: true time each version was first flooded / confirmed covered
        self.announce_times: dict[int, float] = {}
        self.commit_times: dict[int, float] = {}

    # -- origination --------------------------------------------------------

    def announce(self, schedule,
                 activation_frame: int) -> ScheduleAnnouncement:
        """Queue a new schedule version for flooding from the gateway.

        ``schedule`` is anything exposing ``frame_slots`` and ``items()``
        -- a plain :class:`~repro.core.schedule.Schedule` or a multi-block
        view such as :class:`~repro.core.besteffort.TwoClassSchedule`.
        ``activation_frame`` should leave enough frames for the flood to
        cover the mesh: at least ``ceil(nodes / control_slots)`` frames per
        tree depth tier in the worst case.

        In resilient mode the call returns the announcement that actually
        starts flooding *now*: the requested target itself when it is
        union-compatible with the committed schedule, an automatic
        transition version when it is not, or -- while an earlier version
        is still uncommitted -- the in-flight announcement, with the
        target queued behind it.
        """
        if schedule.frame_slots != self.overlay.frame_config.data_slots:
            raise ConfigurationError(
                "announced schedule does not match the frame geometry")
        if self.resilience is None:
            announcement = ScheduleAnnouncement.build(
                version=self._next_version,
                activation_frame=activation_frame,
                assignments=tuple(schedule.items()))
            self._next_version += 1
            self._learn(self.gateway, announcement)
            return announcement
        self._queue.append((tuple(schedule.items()), activation_frame))
        self._try_dispatch()
        return self._announcements[
            self._inflight if self._inflight is not None
            else self.committed_version]

    # -- overlay hooks ------------------------------------------------------

    def control_payload(self, node: int) -> Optional[ScheduleAnnouncement]:
        """Called by the overlay at ``node``'s control opportunity."""
        entry = self._pending.get(node)
        if entry is None:
            return None
        announcement, remaining = entry
        if remaining <= 1:
            del self._pending[node]
        else:
            entry[1] = remaining - 1
        if self.resilience is None:
            return announcement
        # Each rebroadcast carries this node's up-to-date implicit-ack view
        # and its current epoch, so coverage gossips back to the gateway.
        return replace(announcement, epoch=self._epoch[node],
                       acked=tuple(sorted(self._acked[node])))

    def on_announcement(self, node: int,
                        announcement: ScheduleAnnouncement) -> bool:
        """Called by the overlay when ``node`` receives an announcement."""
        if self.resilience is None:
            return self._learn(node, announcement)
        version = announcement.version
        if version < self.seen_version[node]:
            # A straggler's rebroadcast of an already superseded version:
            # reject it, but keep our own flood of the newer one going.
            obs.counter("resilience.dsch.stale_rejected").inc()
            return False
        if version == self.seen_version[node]:
            self._merge_acks(node, announcement)
            if announcement.epoch > self._epoch[node]:
                # A re-flood: adopt the new epoch and refresh this node's
                # rebroadcast budget so the wave propagates outward again.
                self._epoch[node] = announcement.epoch
                self._pending[node] = [
                    self._canonical(version), self.rebroadcasts]
            return False
        return self._learn(node, announcement)

    # -- internals -----------------------------------------------------------

    def _canonical(self, version: int) -> ScheduleAnnouncement:
        announcement = self._announcements.get(version)
        if announcement is None:
            raise ConfigurationError(f"unknown schedule version {version}")
        return announcement

    def _merge_acks(self, node: int,
                    announcement: ScheduleAnnouncement) -> None:
        acked = self._acked[node]
        before = len(acked)
        acked.update(announcement.acked)
        if len(acked) == before:
            return
        if node == self.gateway:
            self._check_commit()
        elif node not in self._pending:
            # Ack-gossip: a grown ack view is news worth one rebroadcast,
            # pulling coverage gateway-ward tier by tier instead of waiting
            # a full epoch re-flood per tier.  Monotone sets bound this at
            # O(nodes) extra broadcasts per node per version.
            self._pending[node] = [
                self._canonical(self.seen_version[node]), 1]

    def _learn(self, node: int, announcement: ScheduleAnnouncement) -> bool:
        if announcement.version <= self.seen_version[node]:
            return False
        self.seen_version[node] = announcement.version
        if self.resilience is not None:
            canonical = self._announcements.setdefault(
                announcement.version,
                replace(announcement, epoch=0, acked=()))
            self._epoch[node] = announcement.epoch
            self._acked[node] = {node} | set(announcement.acked)
            self._pending[node] = [canonical, self.rebroadcasts]
            if node == self.gateway:
                self._check_commit()
        else:
            self._pending[node] = [announcement, self.rebroadcasts]
        self._schedule_activation(node, announcement)
        self.overlay.trace.emit(self.overlay.sim.now, "dsch.learn",
                                node=node, version=announcement.version)
        return True

    def _schedule_activation(self, node: int,
                             announcement: ScheduleAnnouncement) -> None:
        tdma_node = self.overlay.nodes[node]
        local_at = self.overlay.frame_config.frame_start_local(
            announcement.activation_frame)
        at_true = tdma_node.clock.true_time(local_at)
        now = self.overlay.sim.now
        if at_true < now:
            at_true = now  # late learner activates immediately
        self.overlay.sim.schedule_at(at_true, self._activate, node,
                                     announcement)

    def _activate(self, node: int,
                  announcement: ScheduleAnnouncement) -> None:
        if announcement.version <= self.applied_version[node]:
            return  # superseded before activation
        self.applied_version[node] = announcement.version
        self.applied_assignments[node] = announcement.assignments
        self.overlay.nodes[node].apply_assignments(announcement.assignments)
        self.overlay.trace.emit(self.overlay.sim.now, "dsch.activate",
                                node=node, version=announcement.version)

    # -- resilient dissemination ---------------------------------------------

    def _alive_nodes(self) -> list[int]:
        channel = self.overlay.channel
        return [n for n in self.overlay.nodes
                if not channel.node_is_down(n)]

    def _gateway_frame_index(self) -> int:
        clock = self.overlay.nodes[self.gateway].clock
        local = clock.local_time(self.overlay.sim.now)
        return self.overlay.frame_config.frame_index_at_local(local)

    def _try_dispatch(self) -> None:
        """Start flooding the next version if nothing is uncommitted."""
        if self._inflight is not None or not self._queue:
            return
        target_pairs, requested_frame = self._queue[0]
        pairs = target_pairs
        if (self.conflicts is not None
                and not self._union_conflict_free(self._committed_pairs,
                                                  target_pairs)):
            subset = self._compatible_subset(target_pairs)
            if subset != target_pairs:
                pairs = subset
                obs.counter("resilience.dsch.transition_versions").inc()
        if pairs == target_pairs:
            self._queue.popleft()
        activation_frame = max(
            requested_frame,
            self._gateway_frame_index() + ACTIVATION_GAP_FRAMES,
            self._last_activation_frame + ACTIVATION_GAP_FRAMES)
        self._last_activation_frame = activation_frame
        version = self._next_version
        self._next_version += 1
        announcement = ScheduleAnnouncement.build(
            version=version, activation_frame=activation_frame,
            assignments=pairs)
        self._announcements[version] = announcement
        self._inflight = version
        self._refloods_used = 0
        self.announce_times[version] = self.overlay.sim.now
        self.overlay.trace.emit(self.overlay.sim.now, "dsch.flood",
                                version=version,
                                transition=pairs is not target_pairs)
        self._learn(self.gateway, announcement)
        self._arm_reflood()

    def _union_conflict_free(self, old_pairs, new_pairs) -> bool:
        """Can ``old`` and ``new`` run on different nodes simultaneously?

        Cross-version pairs on the *same* transmitter cannot co-occur (a
        node executes exactly one version), so only different-transmitter
        conflicts with overlapping slots matter.
        """
        for link_a, block_a in old_pairs:
            for link_b, block_b in new_pairs:
                if link_a[0] == link_b[0]:
                    continue
                if not block_a.overlaps(block_b):
                    continue
                if link_a == link_b or self.conflicts.has_edge(link_a,
                                                               link_b):
                    return False
        return True

    def _compatible_subset(self, new_pairs) -> tuple:
        """The assignments of ``new`` that coexist with the committed map."""
        return tuple(
            (link, block) for link, block in new_pairs
            if self._union_conflict_free(self._committed_pairs,
                                         ((link, block),)))

    def _check_commit(self) -> None:
        if self._inflight is None:
            return
        if self.seen_version[self.gateway] != self._inflight:
            return
        alive = self._alive_nodes()
        acked = self._acked[self.gateway]
        covered = sum(1 for n in alive if n in acked)
        if covered < self.resilience.coverage_target * len(alive):
            return
        version = self._inflight
        self._inflight = None
        self.committed_version = version
        self._committed_pairs = self._canonical(version).assignments
        self.commit_times[version] = self.overlay.sim.now
        obs.counter("resilience.dsch.commits").inc()
        self.overlay.trace.emit(self.overlay.sim.now, "dsch.commit",
                                version=version, coverage=covered)
        self._try_dispatch()

    def _arm_reflood(self) -> None:
        if self._reflood_armed:
            return
        self._reflood_armed = True
        period = (self.resilience.reflood_interval_frames
                  * self.overlay.frame_config.frame_duration_s)
        self.overlay.sim.schedule(period, self._reflood_tick)

    def _reflood_tick(self) -> None:
        self._reflood_armed = False
        self._check_commit()
        if self._inflight is None:
            return  # committed (any successor re-arms at dispatch)
        if self._refloods_used >= self.resilience.max_refloods:
            return  # budget spent; acks may still trickle in and commit
        self._refloods_used += 1
        version = self._inflight
        self._epoch[self.gateway] += 1
        self._pending[self.gateway] = [
            self._canonical(version), self.rebroadcasts]
        obs.counter("resilience.dsch.refloods").inc()
        self.overlay.trace.emit(self.overlay.sim.now, "dsch.reflood",
                                version=version,
                                epoch=self._epoch[self.gateway])
        self._arm_reflood()

    # -- instrumentation -------------------------------------------------------

    def coverage(self) -> float:
        """Fraction of nodes that have learned the latest version."""
        latest = self._next_version - 1
        if latest == 0:
            return 1.0
        learned = sum(1 for v in self.seen_version.values() if v >= latest)
        return learned / len(self.seen_version)

    def acked_coverage(self) -> float:
        """The gateway's implicit-ack view of live-node coverage."""
        alive = self._alive_nodes()
        if not alive:
            return 1.0
        acked = self._acked[self.gateway]
        return sum(1 for n in alive if n in acked) / len(alive)

    def holdover_nodes(self) -> frozenset[int]:
        """Nodes still executing an older version than the committed one."""
        return frozenset(
            n for n, v in self.applied_version.items()
            if v < self.committed_version)
