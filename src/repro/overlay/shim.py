"""TDMA shim header and fragmentation.

Application packets rarely match slot capacity, so the overlay carries a
small shim header on every on-air fragment identifying the directed link,
the originating packet and the fragment's position.  Receivers reassemble
per (link, packet) and deliver whole packets upward.  VoIP payloads are
typically below one slot's capacity (one fragment); larger best-effort
packets span several slots of the link's block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.net.packet import Packet
from repro.net.topology import Link


@dataclass(frozen=True)
class ShimFragment:
    """One slot-sized piece of an application packet."""

    link: Link
    packet: Packet
    index: int
    count: int
    payload_bits: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < self.count:
            raise ConfigurationError(
                f"fragment index {self.index} outside 0..{self.count - 1}")
        if self.payload_bits <= 0:
            raise ConfigurationError("fragment must carry payload")

    @property
    def key(self) -> tuple[Link, int, int]:
        """Reassembly key: (link, packet id, fragment count)."""
        return (self.link, self.packet.packet_id, self.count)


def fragment_packet(packet: Packet, link: Link,
                    capacity_bits: int) -> list[ShimFragment]:
    """Split ``packet`` into fragments of at most ``capacity_bits`` payload."""
    if capacity_bits <= 0:
        raise ConfigurationError("slot capacity must be positive")
    pieces = []
    remaining = packet.size_bits
    count = (packet.size_bits + capacity_bits - 1) // capacity_bits
    for index in range(count):
        chunk = min(capacity_bits, remaining)
        pieces.append(ShimFragment(link=link, packet=packet, index=index,
                                   count=count, payload_bits=chunk))
        remaining -= chunk
    return pieces


class Reassembler:
    """Per-receiver reassembly of shim fragments into packets.

    Fragments of a packet all travel on the same link within (usually) one
    frame; a bounded table evicts stale partial packets so losses cannot
    leak memory.
    """

    def __init__(self, max_partial: int = 64) -> None:
        self._partial: dict[tuple[Link, int, int], set[int]] = {}
        self._arrival_order: list[tuple[Link, int, int]] = []
        self._max_partial = max_partial

    def accept(self, fragment: ShimFragment) -> Optional[Packet]:
        """Feed one fragment; returns the packet when it completes."""
        if fragment.count == 1:
            return fragment.packet
        key = fragment.key
        if key not in self._partial:
            self._partial[key] = set()
            self._arrival_order.append(key)
            if len(self._arrival_order) > self._max_partial:
                stale = self._arrival_order.pop(0)
                self._partial.pop(stale, None)
        received = self._partial[key]
        received.add(fragment.index)
        if len(received) == fragment.count:
            del self._partial[key]
            self._arrival_order.remove(key)
            return fragment.packet
        return None

    @property
    def pending(self) -> int:
        """Number of partially reassembled packets."""
        return len(self._partial)
