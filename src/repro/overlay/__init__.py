"""TDMA-over-WiFi emulation (systems S17-S19 in DESIGN.md).

The ICDCS 2007 paper's contribution: run the 802.16 mesh TDMA MAC in
software on top of the raw 802.11 broadcast primitive.

- :mod:`repro.overlay.guard` -- dimension per-slot guard times from the
  clock-drift bound and the resynchronization period.
- :mod:`repro.overlay.sync` -- timestamped beacons flooded down the
  scheduling tree keep every node's software clock within the guard budget.
- :mod:`repro.overlay.shim` -- the per-fragment TDMA shim header and
  fragmentation/reassembly of application packets into slot-sized units.
- :mod:`repro.overlay.emulation` -- the per-node TDMA MAC: local-clock slot
  timers, per-link queues, and the control subframe.
"""

from repro.overlay.distribution import ScheduleDistributor
from repro.overlay.emulation import TdmaNode, TdmaOverlay
from repro.overlay.guard import (
    max_resync_interval_s,
    required_guard_s,
    slot_overhead_fraction,
)
from repro.overlay.shim import Reassembler, ShimFragment, fragment_packet
from repro.overlay.sync import SyncConfig, SyncDaemon, SyncState

__all__ = [
    "Reassembler",
    "ScheduleDistributor",
    "ShimFragment",
    "SyncConfig",
    "SyncDaemon",
    "SyncState",
    "TdmaNode",
    "TdmaOverlay",
    "fragment_packet",
    "max_resync_interval_s",
    "required_guard_s",
    "slot_overhead_fraction",
]
