"""The TDMA-over-WiFi emulation MAC.

Each node runs a software frame loop against its *own* drifting clock:

1. at every local frame boundary it plans the frame: its control
   opportunities (sync beacons) and the data slots of the links it
   transmits on (from the TDMA :class:`~repro.core.schedule.Schedule`);
2. each transmission starts one guard interval after the local slot edge
   and must fit inside the slot minus the guard;
3. received beacons may *step* the local clock, after which the node
   replans its pending slot timers from the corrected clock.

Nothing here prevents a badly synchronized node from transmitting into a
neighbour's slot -- the shared channel then corrupts both frames, exactly
as on hardware.  The emulation's correctness claim (slot adherence given
an adequate guard) is therefore *measured*, not assumed: E8 reads the sync
error and ``tdma.rx_corrupt`` counts off the same machinery.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro import obs
from repro.core.schedule import Schedule
from repro.dot11.params import ACK_BITS, DATA_HEADER_BITS
from repro.errors import ConfigurationError
from repro.mesh16.frame import MeshFrameConfig
from repro.mesh16.messages import ScheduleAnnouncement, SyncBeacon
from repro.mesh16.network import ControlPlane
from repro.net.packet import Packet
from repro.net.topology import Link, MeshTopology
from repro.overlay.shim import Reassembler, ShimFragment, fragment_packet
from repro.overlay.sync import SyncConfig, SyncDaemon
from repro.phy.channel import BroadcastChannel
from repro.resilience.health import HealthMonitor
from repro.phy.frames import FrameKind, PhyFrame
from repro.dot11.broadcast import RawBroadcastMac
from repro.sim.clock import DriftingClock
from repro.sim.engine import Event, Simulator
from repro.sim.trace import Trace
from repro.units import US

#: receiver turnaround before a slot-level ARQ micro-ACK
ARQ_SIFS_S = 10 * US


class TdmaNode:
    """One node's TDMA MAC state (queues, clock, timers)."""

    def __init__(self, overlay: "TdmaOverlay", node: int,
                 clock: DriftingClock, daemon: SyncDaemon) -> None:
        self.overlay = overlay
        self.node = node
        self.clock = clock
        self.daemon = daemon
        self.mac = RawBroadcastMac(overlay.sim, overlay.channel, node,
                                   deliver=self._on_receive,
                                   trace=overlay.trace)
        #: per outgoing link FIFO of pending fragments
        self.queues: dict[Link, deque[ShimFragment]] = {}
        self.reassembler = Reassembler()
        self._pending: list[Event] = []
        #: (data slot index, link) pairs this node transmits in
        self.tx_slots: list[tuple[int, Link]] = []
        #: slot-level ARQ state: per link, [fragment, tx attempts so far]
        self._inflight: dict[Link, list] = {}
        #: recently delivered fragment keys, for retransmission dedup
        self._seen_fragments: deque = deque(maxlen=128)
        self._seen_set: set = set()

    # -- queueing ----------------------------------------------------------

    def enqueue(self, packet: Packet) -> bool:
        link = packet.current_link
        if link is None or link[0] != self.node:
            raise ConfigurationError(
                f"packet {packet.packet_id} queued at {self.node} but its "
                f"next link is {link}")
        queue = self.queues.setdefault(link, deque())
        fragments = fragment_packet(
            packet, link, self.overlay.fragment_capacity_bits)
        if (len(queue) + len(fragments)
                > self.overlay.queue_capacity_fragments):
            self.overlay.trace.emit(self.overlay.sim.now, "tdma.queue_drop",
                                    node=self.node, flow=packet.flow)
            obs.counter("overlay.queue_drops").inc()
            return False
        if packet.priority == 0:
            # guaranteed-class fragments jump ahead of any queued elastic
            # traffic sharing this link (but stay behind other guaranteed
            # fragments, preserving per-class FIFO order)
            insert_at = next(
                (i for i, f in enumerate(queue) if f.packet.priority > 0),
                len(queue))
            for offset, fragment in enumerate(fragments):
                queue.insert(insert_at + offset, fragment)
        else:
            queue.extend(fragments)
        return True

    def queued_fragments(self) -> int:
        return sum(len(q) for q in self.queues.values())

    def apply_assignments(self, assignments) -> None:
        """Replace this node's transmit slots (in-band schedule update).

        ``assignments`` is a mapping link -> block or an iterable of
        (link, block) pairs (links may repeat: one reservation per traffic
        class).  Only links transmitted by this node matter here.  Timers
        are re-planned immediately so the new slots take effect from the
        current frame onward.
        """
        pairs = (assignments.items() if hasattr(assignments, "items")
                 else assignments)
        self.tx_slots = []
        for link, block in pairs:
            if link[0] != self.node:
                continue
            for slot in block.slots():
                self.tx_slots.append((slot, link))
        self.tx_slots.sort()
        self.plan_from_now()

    # -- frame planning ------------------------------------------------------

    def start(self) -> None:
        self.plan_from_now()

    def plan_from_now(self, min_frame_index: int = 0) -> None:
        """(Re)build all pending timers from the current clock reading.

        Called at start-up and after every clock step.  Plans the remainder
        of the current local frame plus the boundary of the next one.

        ``min_frame_index`` guarantees forward progress when a frame
        boundary fires: converting the boundary's local time to simulator
        time and back can land a float epsilon *before* the boundary, and
        without the floor the node would replan the frame it just finished
        and re-arm the same boundary at the same instant, forever.
        """
        for event in self._pending:
            event.cancel()
        self._pending.clear()

        config = self.overlay.frame_config
        now_true = self.overlay.sim.now
        now_local = self.clock.local_time(now_true)
        frame_index = max(config.frame_index_at_local(now_local),
                          min_frame_index)
        self._plan_frame(frame_index, now_local)
        # The next frame boundary re-plans everything from fresh readings.
        next_start_local = config.frame_start_local(frame_index + 1)
        self._schedule_local(next_start_local, self._frame_boundary,
                             frame_index + 1)

    def _frame_boundary(self, frame_index: int) -> None:
        self.plan_from_now(min_frame_index=frame_index)

    def _plan_frame(self, frame_index: int, now_local: float) -> None:
        obs.counter("overlay.frames_planned").inc()
        config = self.overlay.frame_config
        frame_local = config.frame_start_local(frame_index)
        guard = config.guard_s
        # Control opportunities owned by this node.
        plane = self.overlay.control_plane
        for slot in range(config.control_slots):
            if not plane.owns(self.node, frame_index, slot):
                continue
            at_local = frame_local + config.control_slot_offset(slot) + guard
            if at_local >= now_local:
                self._schedule_local(at_local, self._control_slot, slot)
        # Data slots of owned links.
        for slot, link in self.tx_slots:
            at_local = frame_local + config.data_slot_offset(slot) + guard
            if at_local >= now_local:
                self._schedule_local(at_local, self._data_slot, slot, link)

    def _schedule_local(self, at_local: float, callback, *args) -> None:
        at_true = self.clock.true_time(at_local)
        sim = self.overlay.sim
        if at_true < sim.now:
            at_true = sim.now
        self._pending.append(sim.schedule_at(at_true, callback, *args))

    # -- slot actions -----------------------------------------------------------

    def _control_slot(self, slot: int) -> None:
        overlay = self.overlay
        if (overlay.health is not None
                and overlay.health.check_mute(self.node, overlay.sim.now)):
            # Fail-safe: a node whose worst-case clock error exceeds the
            # hard threshold cannot place *any* transmission safely -- not
            # even control frames, whose slots are just as guard-bounded.
            overlay.trace.emit(overlay.sim.now, "tdma.mute_skip",
                               node=self.node, kind="control", slot=slot)
            obs.counter("resilience.control_slots_muted").inc()
            return
        # Schedule announcements pre-empt sync beacons at this node's
        # opportunity: distribution is rarer and must converge before its
        # activation frame, while the beacon flood is continuous.
        distributor = self.overlay.distributor
        if distributor is not None:
            announcement = distributor.control_payload(self.node)
            if announcement is not None:
                bits = announcement.size_bits()
                # Announcements ride the data burst profile: a
                # multi-reservation DSCH at the 1 Mb/s basic rate would
                # overflow the control slot and collide with the next
                # opportunity.  Beacons (fixed, small, must be maximally
                # robust) keep the basic rate and fit.
                duration = self.overlay.frame_config.phy.airtime(bits)
                self.mac.broadcast(announcement, bits,
                                   kind=FrameKind.CONTROL,
                                   duration=duration)
                return
        beacon = self.daemon.make_beacon(self.overlay.sim.now)
        if beacon is None:
            return
        duration = self.overlay.frame_config.phy.airtime(
            SyncBeacon.SIZE_BITS, basic_rate=True)
        self.mac.broadcast(beacon, SyncBeacon.SIZE_BITS,
                           kind=FrameKind.BEACON, duration=duration)

    def _data_slot(self, slot: int, link: Link) -> None:
        overlay = self.overlay
        health = overlay.health
        now = overlay.sim.now
        if health is not None and health.check_mute(self.node, now):
            overlay.trace.emit(now, "tdma.mute_skip", node=self.node,
                               link=link, slot=slot, kind="data")
            obs.counter("resilience.slots_muted").inc()
            return
        fragment = None
        from_inflight = False
        if overlay.arq:
            inflight = self._inflight.get(link)
            if inflight is not None:
                if inflight[1] > overlay.arq_retry_limit:
                    overlay.trace.emit(overlay.sim.now, "tdma.arq_drop",
                                       node=self.node, link=link)
                    del self._inflight[link]
                else:
                    fragment = inflight[0]
                    from_inflight = True
                    if inflight[1] > 0:
                        overlay.trace.emit(overlay.sim.now, "tdma.arq_retx",
                                           node=self.node, link=link,
                                           attempt=inflight[1])
        queue = self.queues.get(link)
        if fragment is None:
            if not queue:
                return
            fragment = queue[0]
        config = overlay.frame_config
        size_bits = (fragment.payload_bits + config.shim_overhead_bits
                     + DATA_HEADER_BITS)
        duration = config.phy.airtime(size_bits)
        extra_guard = 0.0
        if health is not None:
            # Degraded mode: start later (widened effective guard) and only
            # send what still provably ends inside the slot at every
            # neighbour's clock, given the worst-case error envelope.
            extra_guard, max_airtime = health.tx_allowance(self.node, now)
            if duration > max_airtime:
                overlay.trace.emit(now, "tdma.degraded_skip",
                                   node=self.node, link=link, slot=slot)
                obs.counter("resilience.slots_skipped").inc()
                return
            if extra_guard > 0.0:
                obs.counter("resilience.guard_widenings").inc()
        if not from_inflight:
            queue.popleft()
            if overlay.arq:
                self._inflight[link] = [fragment, 0]
        if overlay.arq:
            self._inflight[link][1] += 1
        if extra_guard > 0.0:
            overlay.sim.schedule(extra_guard, self._transmit_fragment,
                                 fragment, size_bits, duration, slot, link)
        else:
            self._transmit_fragment(fragment, size_bits, duration, slot,
                                    link)

    def _transmit_fragment(self, fragment: ShimFragment, size_bits: int,
                           duration: float, slot: int, link: Link) -> None:
        overlay = self.overlay
        overlay.trace.emit(overlay.sim.now, "tdma.tx",
                           node=self.node, link=link, slot=slot)
        registry = obs.get_registry()
        if registry.enabled:
            registry.counter("overlay.tx_fragments").inc()
            if self._violates_guard(slot, duration):
                registry.counter("overlay.guard_violations").inc()
        self.mac.broadcast(fragment, size_bits, kind=FrameKind.DATA,
                           duration=duration)

    def _violates_guard(self, slot: int, duration_s: float) -> bool:
        """Does this transmission leave the slot, as the *gateway* sees it?

        The slot boundaries that matter on air are the reference (gateway)
        clock's: a node whose clock has drifted can start "one guard after
        its own slot edge" and still spill into a neighbour's slot.  This
        is the slot-adherence condition of E8, checked per transmission.
        """
        overlay = self.overlay
        config = overlay.frame_config
        root = overlay.nodes[overlay.control_plane.gateway]
        tx_root = root.clock.local_time(overlay.sim.now)
        frame_local = config.frame_start_local(
            config.frame_index_at_local(tx_root))
        slot_start = frame_local + config.data_slot_offset(slot)
        slot_end = slot_start + config.data_slot_s
        return tx_root < slot_start or tx_root + duration_s > slot_end

    # -- reception ----------------------------------------------------------------

    def _on_receive(self, node: int, frame: PhyFrame, success: bool) -> None:
        overlay = self.overlay
        if not success:
            overlay.trace.emit(overlay.sim.now, "tdma.rx_corrupt",
                               node=self.node, kind=frame.kind.value)
            obs.counter("overlay.rx_corrupt").inc()
            return
        if frame.kind is FrameKind.BEACON and isinstance(frame.payload,
                                                         SyncBeacon):
            airtime = overlay.frame_config.phy.airtime(
                frame.size_bits, basic_rate=True)
            stepped = self.daemon.on_beacon(
                frame.payload, overlay.sim.now, airtime,
                overlay.frame_config.phy.propagation_delay_s)
            if stepped:
                if overlay.health is not None:
                    overlay.health.note_adoption(self.node, overlay.sim.now)
                self.plan_from_now()
            return
        if frame.kind is FrameKind.CONTROL:
            distributor = overlay.distributor
            if distributor is not None and isinstance(
                    frame.payload, ScheduleAnnouncement):
                distributor.on_announcement(self.node, frame.payload)
            return
        if frame.kind is FrameKind.ACK and overlay.arq:
            payload = frame.payload
            if isinstance(payload, tuple) and len(payload) == 3:
                link, packet_id, index = payload
                if link[0] != self.node:
                    return  # someone else's micro-ACK
                inflight = self._inflight.get(link)
                if (inflight is not None
                        and inflight[0].packet.packet_id == packet_id
                        and inflight[0].index == index):
                    del self._inflight[link]
            return
        if frame.kind is FrameKind.DATA and isinstance(frame.payload,
                                                       ShimFragment):
            fragment = frame.payload
            if fragment.link[1] != self.node:
                return  # overheard a neighbour's slot; not for us
            if overlay.arq:
                self._send_micro_ack(fragment)
                key = (fragment.link, fragment.packet.packet_id,
                       fragment.index)
                if key in self._seen_set:
                    return  # retransmission of an already delivered piece
                if len(self._seen_fragments) == self._seen_fragments.maxlen:
                    self._seen_set.discard(self._seen_fragments[0])
                self._seen_fragments.append(key)
                self._seen_set.add(key)
            packet = self.reassembler.accept(fragment)
            if packet is not None:
                obs.counter("overlay.packets_reassembled").inc()
                overlay.on_packet(self.node, packet)

    def _send_micro_ack(self, fragment: ShimFragment) -> None:
        """Acknowledge a data fragment within its own slot (ARQ mode).

        Sent at the data rate: both endpoints of a scheduled link decode
        it by construction, and paying the PLCP preamble twice per slot at
        the 1 Mb/s basic rate would leave no room for data on 802.11b.
        """
        overlay = self.overlay
        if (overlay.health is not None
                and overlay.health.check_mute(self.node, overlay.sim.now)):
            return  # fail-safe mute covers micro-ACKs too
        ack_payload = (fragment.link, fragment.packet.packet_id,
                       fragment.index)
        duration = overlay.frame_config.phy.airtime(ACK_BITS)
        overlay.trace.emit(overlay.sim.now, "tdma.arq_ack", node=self.node,
                           link=fragment.link)
        overlay.sim.schedule(ARQ_SIFS_S, self.mac.broadcast, ack_payload,
                             ACK_BITS, FrameKind.ACK, duration)


class TdmaOverlay:
    """The whole emulated TDMA mesh: one :class:`TdmaNode` per node.

    Parameters
    ----------
    sim, topology, channel:
        Kernel, mesh and shared medium.
    frame_config:
        Frame geometry; ``frame_config.data_slots`` must equal the
        schedule's ``frame_slots``.
    control_plane:
        Control-subframe ownership and the scheduling tree.
    schedule:
        The conflict-free TDMA schedule to execute.
    clocks:
        Per-node software clocks (drift/offset set by the experiment).
    sync_config:
        Synchronization protocol parameters.
    on_packet:
        Callback ``(node, packet)`` when a data packet completes reassembly
        at a link receiver (the forwarder hooks in here).
    health:
        Optional :class:`~repro.resilience.health.HealthMonitor`.  When
        present, every transmission opportunity is gated through its
        degraded-mode state machine: stale nodes widen their effective
        guard (transmitting later and skipping fragments that no longer
        provably fit), and past the hard threshold they fail-safe-mute all
        transmissions -- data, beacons, announcements and micro-ACKs --
        until re-synced.
    """

    def __init__(self, sim: Simulator, topology: MeshTopology,
                 channel: BroadcastChannel, frame_config: MeshFrameConfig,
                 control_plane: ControlPlane, schedule: Schedule,
                 clocks: dict[int, DriftingClock],
                 sync_daemons: dict[int, SyncDaemon],
                 on_packet: Callable[[int, Packet], None],
                 trace: Optional[Trace] = None,
                 queue_capacity_fragments: int = 256,
                 arq: bool = False, arq_retry_limit: int = 3,
                 health: Optional[HealthMonitor] = None) -> None:
        if schedule.frame_slots != frame_config.data_slots:
            raise ConfigurationError(
                f"schedule has {schedule.frame_slots} slots but the frame "
                f"has {frame_config.data_slots} data slots")
        self.sim = sim
        self.topology = topology
        self.channel = channel
        self.frame_config = frame_config
        self.control_plane = control_plane
        self.schedule = schedule
        self.on_packet = on_packet
        self.trace = trace if trace is not None else Trace(enabled=False)
        self.queue_capacity_fragments = queue_capacity_fragments
        #: optional in-band schedule distributor (see attach_distributor)
        self.distributor = None
        #: optional per-node sync-health monitor (degraded modes)
        self.health = health
        #: slot-level ARQ (extension): receivers micro-ACK each fragment
        #: within its slot; unacked fragments are retransmitted in the
        #: link's next slot, up to ``arq_retry_limit`` extra attempts
        self.arq = arq
        self.arq_retry_limit = arq_retry_limit
        if arq:
            phy = frame_config.phy
            usable_s = (frame_config.data_slot_s - frame_config.guard_s
                        - ARQ_SIFS_S - phy.airtime(ACK_BITS))
            mac_bits = phy.bits_in(usable_s)
            self.fragment_capacity_bits = (mac_bits - DATA_HEADER_BITS
                                           - frame_config.shim_overhead_bits)
            if self.fragment_capacity_bits <= 0:
                raise ConfigurationError(
                    "data slots too short to fit a fragment plus the ARQ "
                    "micro-ACK; lengthen the slots or disable arq")
        else:
            self.fragment_capacity_bits = frame_config.data_slot_capacity_bits

        self.nodes: dict[int, TdmaNode] = {}
        for node in topology.nodes:
            if node not in clocks or node not in sync_daemons:
                raise ConfigurationError(
                    f"node {node} is missing a clock or sync daemon")
            self.nodes[node] = TdmaNode(self, node, clocks[node],
                                        sync_daemons[node])
        for link, block in schedule.items():
            tx_node = self.nodes.get(link[0])
            if tx_node is None:
                raise ConfigurationError(
                    f"scheduled link {link} has unknown transmitter")
            for slot in block.slots():
                tx_node.tx_slots.append((slot, link))
        for node in self.nodes.values():
            node.tx_slots.sort()

    def start(self) -> None:
        """Arm every node's frame loop (call once before ``sim.run``)."""
        for node in self.nodes.values():
            node.start()

    def attach_distributor(self, distributor) -> None:
        """Enable in-band schedule distribution (MSH-DSCH flooding).

        With a :class:`~repro.overlay.distribution.ScheduleDistributor`
        attached, nodes hand their control opportunities to pending
        announcements before sync beacons, receive announcements from
        neighbours, and apply new schedules at their activation frames.
        """
        if self.distributor is not None:
            raise ConfigurationError("a distributor is already attached")
        self.distributor = distributor

    # -- MacAdapter for the forwarder ------------------------------------------

    def transmit(self, node: int, packet: Packet) -> bool:
        return self.nodes[node].enqueue(packet)

    # -- instrumentation ---------------------------------------------------------

    def sync_error_s(self, node: int) -> float:
        """Absolute clock error of ``node`` vs the gateway, right now."""
        root = self.control_plane.gateway
        now = self.sim.now
        return abs(self.nodes[node].clock.local_time(now)
                   - self.nodes[root].clock.local_time(now))

    def max_sync_error_s(self) -> float:
        return max(self.sync_error_s(n) for n in self.nodes)
