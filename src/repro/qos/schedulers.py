"""Pluggable intra-node service-flow schedulers.

Each mesh node owns a set of TDMA grants (slots assigned to its outgoing
links by the global schedule).  The *discipline* decides which backlogged
service flow fills each grant -- the intra-node half of the QoS story the
global min-slots schedule cannot see.  Four classic disciplines are
provided (the set compared by arXiv:1111.2996):

- ``strict``: strict priority by service class (UGS > rtPS > nrtPS > BE).
  Meets real-time contracts whenever feasible; starves BE under overload.
- ``wrr``: weighted round robin, one grant per credit.  Fair in grants,
  blind to packet size and deadlines.
- ``drr``: deficit round robin with a per-flow quantum in bits
  (weight x grant size).  Fair in *bits*; the deficit counter bounds how
  far any backlogged flow can fall behind its weight share.
- ``edf``: earliest deadline first over head-of-line packets.  Optimal
  for deadline feasibility: if any work-conserving discipline meets all
  deadlines on a trace, EDF does too.

All disciplines are deterministic: ties break on enqueue time, then flow
name.  ``pick()`` must return one of the offered candidates whenever any
are offered -- the work-conservation contract the property tests enforce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from repro.errors import ConfigurationError
from repro.qos.model import ServiceClass


@dataclass(frozen=True)
class QueueView:
    """Read-only view of one backlogged service-flow queue offered to a
    scheduler for a single grant.

    ``head_deadline_s`` is the absolute deadline of the head-of-line
    packet (``inf`` for classes without a latency bound);
    ``head_created_s`` its creation time.
    """

    name: str
    service_class: ServiceClass
    weight: int
    backlog_bits: int
    backlog_packets: int
    head_created_s: float
    head_deadline_s: float


class ServiceFlowScheduler:
    """Interface: pick the service flow that fills the next grant."""

    #: Registry name; subclasses override.
    name = "abstract"

    def pick(self, candidates: Sequence[QueueView], now_s: float) -> str:
        """Return the name of the candidate that gets this grant.

        ``candidates`` is non-empty and deterministically ordered (flow
        registration order).  Must return one of their names.
        """
        raise NotImplementedError

    def reset(self) -> None:
        """Drop internal state (round pointers, credits, deficits)."""


class StrictPriorityScheduler(ServiceFlowScheduler):
    """UGS before rtPS before nrtPS before BE; FIFO within a class."""

    name = "strict"

    def pick(self, candidates: Sequence[QueueView], now_s: float) -> str:
        best = min(candidates, key=lambda q: (q.service_class.rank,
                                              q.head_created_s, q.name))
        return best.name


class EdfScheduler(ServiceFlowScheduler):
    """Earliest absolute head-of-line deadline first.

    Flows without a latency bound carry an infinite deadline and are
    served (FIFO by enqueue time) only when no bounded packet waits.
    """

    name = "edf"

    def pick(self, candidates: Sequence[QueueView], now_s: float) -> str:
        best = min(candidates, key=lambda q: (q.head_deadline_s,
                                              q.head_created_s, q.name))
        return best.name


class _RoundRobinBase(ServiceFlowScheduler):
    """Shared ring bookkeeping for WRR/DRR.

    Flows join the ring in first-seen order; the ring survives empty
    periods so the round position is deterministic across grants.
    """

    def __init__(self) -> None:
        self._ring: list[str] = []
        self._index = 0

    def reset(self) -> None:
        self._ring.clear()
        self._index = 0

    def _admit_new(self, candidates: Sequence[QueueView]) -> None:
        known = set(self._ring)
        for q in candidates:
            if q.name not in known:
                self._ring.append(q.name)
                known.add(q.name)

    def _advance(self) -> bool:
        """Move the pointer one position; True when the round wrapped."""
        self._index = (self._index + 1) % len(self._ring)
        return self._index == 0


class WrrScheduler(_RoundRobinBase):
    """Weighted round robin over grants.

    Each flow holds ``weight`` credits per round; a grant costs one
    credit.  When the pointer completes a round, credits refill.  Fair in
    grant counts proportional to weight, regardless of packet sizes.
    """

    name = "wrr"

    def __init__(self) -> None:
        super().__init__()
        self._credits: dict[str, int] = {}

    def reset(self) -> None:
        super().reset()
        self._credits.clear()

    def pick(self, candidates: Sequence[QueueView], now_s: float) -> str:
        if not candidates:
            raise ConfigurationError("pick() requires candidates")
        self._admit_new(candidates)
        views = {q.name: q for q in candidates}
        for name in views:
            self._credits.setdefault(name, views[name].weight)
        # Two full rounds suffice: after one wrap every backlogged flow's
        # credits refill, so the next visit to any candidate serves it.
        for _ in range(2 * len(self._ring) + 1):
            name = self._ring[self._index]
            view = views.get(name)
            if view is not None and self._credits.get(name, 0) > 0:
                self._credits[name] -= 1
                if self._credits[name] <= 0:
                    self._advance_and_maybe_refill(views)
                return name
            self._advance_and_maybe_refill(views)
        return candidates[0].name  # unreachable safety net

    def _advance_and_maybe_refill(self, views) -> None:
        if self._advance():
            for name in self._ring:
                if name in views:
                    weight = views[name].weight
                else:
                    weight = self._credits.get(name, 1)
                self._credits[name] = max(weight, 1)


class DrrScheduler(_RoundRobinBase):
    """Deficit round robin in bits.

    Visiting a flow adds ``quantum_bits x weight`` to its deficit; a
    grant costs ``min(grant_bits, backlog)`` bits.  A flow is served
    while its deficit covers the cost, so throughput converges to the
    weight share measured in *bits* -- and the deficit of any backlogged
    flow never exceeds one quantum plus one grant (the classic DRR
    fairness bound the property tests check).
    """

    name = "drr"

    def __init__(self, quantum_bits: int = 2000,
                 grant_bits: Optional[int] = None) -> None:
        super().__init__()
        if quantum_bits <= 0:
            raise ConfigurationError("DRR quantum must be positive")
        self.quantum_bits = quantum_bits
        self.grant_bits = grant_bits if grant_bits is not None else quantum_bits
        self._deficit: dict[str, float] = {}
        self._fresh_visit = True

    def reset(self) -> None:
        super().reset()
        self._deficit.clear()
        self._fresh_visit = True

    def pick(self, candidates: Sequence[QueueView], now_s: float) -> str:
        if not candidates:
            raise ConfigurationError("pick() requires candidates")
        self._admit_new(candidates)
        views = {q.name: q for q in candidates}
        max_weight = max(q.weight for q in candidates)
        # Bound: enough visits for the smallest-weight flow to accumulate
        # one grant worth of deficit across repeated rounds.
        rounds_needed = (self.grant_bits // self.quantum_bits) + 2
        for _ in range(len(self._ring) * rounds_needed * max_weight + 2):
            name = self._ring[self._index]
            view = views.get(name)
            if view is None:
                # Empty queue: classic DRR zeroes the deficit so idle
                # flows cannot hoard service.
                self._deficit[name] = 0.0
                self._advance()
                self._fresh_visit = True
                continue
            if self._fresh_visit:
                self._deficit[name] = (self._deficit.get(name, 0.0)
                                       + self.quantum_bits * view.weight)
                self._fresh_visit = False
            cost = min(self.grant_bits, view.backlog_bits)
            if self._deficit.get(name, 0.0) >= cost:
                self._deficit[name] -= cost
                return name
            self._advance()
            self._fresh_visit = True
        return candidates[0].name  # unreachable safety net

    def deficit_of(self, name: str) -> float:
        """Current deficit counter (for the fairness-bound tests)."""
        return self._deficit.get(name, 0.0)


#: Factory registry: discipline name -> zero/keyword-arg constructor.
SCHEDULER_REGISTRY: dict[str, Callable[..., ServiceFlowScheduler]] = {
    StrictPriorityScheduler.name: StrictPriorityScheduler,
    WrrScheduler.name: WrrScheduler,
    DrrScheduler.name: DrrScheduler,
    EdfScheduler.name: EdfScheduler,
}


def make_scheduler(name: str, **kwargs) -> ServiceFlowScheduler:
    """Instantiate a discipline by registry name.

    ``kwargs`` are forwarded to the constructor (e.g. ``quantum_bits``
    for DRR); disciplines that take no parameters reject extras.
    """
    try:
        factory = SCHEDULER_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(SCHEDULER_REGISTRY))
        raise ConfigurationError(
            f"unknown scheduling discipline {name!r} (known: {known})"
        ) from None
    return factory(**kwargs)


def available_disciplines() -> list[str]:
    return sorted(SCHEDULER_REGISTRY)
