"""802.16 service classes and per-flow traffic contracts.

IEEE 802.16 defines four scheduling services, each with its own contract
vocabulary (arXiv:1111.2996 evaluates competing disciplines over exactly
this mix):

- **UGS** (unsolicited grant service): fixed-size periodic real-time
  streams (VoIP without silence suppression).  Reserves a constant rate
  and a hard latency bound; the sustained rate equals the reservation.
- **rtPS** (real-time polling service): variable-rate real-time streams
  (video).  Reserves a minimum rate with a latency bound and may burst up
  to a maximum sustained rate; the excess above the reservation competes
  for leftover capacity.
- **nrtPS** (non-real-time polling service): delay-tolerant streams that
  still need a bandwidth floor (bulk transfers with a deadline "soon").
  Minimum reserved rate, no latency bound.
- **BE** (best effort): everything else.  No reservation, no bound --
  admitted always, guaranteed never.

A :class:`ServiceFlow` layers one of these classes and a
:class:`TrafficContract` onto the existing :class:`~repro.net.flows.Flow`
demand model: :meth:`ServiceFlow.to_flow` produces the plain flow the
scheduling core (conflict graphs, the min-slots search, admission) already
understands, with the reservation as the flow rate and the latency bound
as the delay budget.  :class:`ServiceFlowSet` is the class-aware sibling
of :class:`~repro.net.flows.FlowSet`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Optional

from repro.errors import ConfigurationError
from repro.net.flows import Flow, FlowSet
from repro.net.topology import Link, MeshTopology


class ServiceClass(enum.Enum):
    """The four 802.16 scheduling services, in strict priority order."""

    UGS = "UGS"
    RTPS = "rtPS"
    NRTPS = "nrtPS"
    BE = "BE"

    @property
    def rank(self) -> int:
        """Strict-priority rank: lower serves first."""
        return _CLASS_RANK[self]

    @property
    def default_weight(self) -> int:
        """Default WRR/DRR weight (overridable per flow)."""
        return _CLASS_WEIGHT[self]

    @property
    def is_guaranteed(self) -> bool:
        """True for classes with a reserved rate (everything but BE)."""
        return self is not ServiceClass.BE

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_CLASS_RANK = {ServiceClass.UGS: 0, ServiceClass.RTPS: 1,
               ServiceClass.NRTPS: 2, ServiceClass.BE: 3}
_CLASS_WEIGHT = {ServiceClass.UGS: 8, ServiceClass.RTPS: 4,
                 ServiceClass.NRTPS: 2, ServiceClass.BE: 1}


@dataclass(frozen=True)
class TrafficContract:
    """Per-service-flow traffic contract.

    Parameters
    ----------
    min_reserved_rate_bps:
        Bandwidth floor the schedule must carry (0 for BE).
    max_sustained_rate_bps:
        Cap on the offered rate.  For UGS it must equal the reservation
        (or be omitted); for rtPS/nrtPS it bounds the burst above the
        floor; for BE it is the elastic *ask* used to size leftover
        grants.
    max_latency_s:
        Hard end-to-end latency bound (UGS/rtPS only).
    tolerated_jitter_s:
        Jitter tolerance the instruments check deliveries against
        (UGS/rtPS only; optional).
    """

    min_reserved_rate_bps: float = 0.0
    max_sustained_rate_bps: Optional[float] = None
    max_latency_s: Optional[float] = None
    tolerated_jitter_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.min_reserved_rate_bps < 0:
            raise ConfigurationError("min reserved rate must be >= 0")
        if (self.max_sustained_rate_bps is not None
                and self.max_sustained_rate_bps < self.min_reserved_rate_bps):
            raise ConfigurationError(
                "max sustained rate cannot undercut the reservation")
        if self.max_latency_s is not None and self.max_latency_s <= 0:
            raise ConfigurationError("max latency must be positive")
        if self.tolerated_jitter_s is not None and self.tolerated_jitter_s <= 0:
            raise ConfigurationError("jitter tolerance must be positive")


def _validate_contract(name: str, service_class: ServiceClass,
                       contract: TrafficContract) -> None:
    cls = service_class
    if cls is ServiceClass.BE:
        if contract.min_reserved_rate_bps:
            raise ConfigurationError(
                f"service flow {name}: BE cannot reserve bandwidth")
        if contract.max_latency_s is not None:
            raise ConfigurationError(
                f"service flow {name}: BE has no latency guarantee")
        if not contract.max_sustained_rate_bps:
            raise ConfigurationError(
                f"service flow {name}: BE needs a max sustained rate "
                "(the elastic ask)")
        return
    if contract.min_reserved_rate_bps <= 0:
        raise ConfigurationError(
            f"service flow {name}: {cls} requires a positive reserved rate")
    if cls in (ServiceClass.UGS, ServiceClass.RTPS):
        if contract.max_latency_s is None:
            raise ConfigurationError(
                f"service flow {name}: {cls} requires a latency bound")
    else:  # nrtPS
        if contract.max_latency_s is not None:
            raise ConfigurationError(
                f"service flow {name}: nrtPS has no latency bound; "
                "use rtPS for delay-bounded traffic")
    if cls is ServiceClass.UGS:
        sustained = contract.max_sustained_rate_bps
        if sustained is not None and \
                sustained != contract.min_reserved_rate_bps:
            raise ConfigurationError(
                f"service flow {name}: UGS grants are unsolicited and "
                "constant; max sustained must equal the reservation")


@dataclass(frozen=True)
class ServiceFlow:
    """One unidirectional 802.16 service flow.

    Parameters
    ----------
    name, src, dst:
        As in :class:`~repro.net.flows.Flow`.
    service_class:
        One of the four :class:`ServiceClass` members.
    contract:
        The :class:`TrafficContract`; validated against the class rules.
    route:
        Ordered directed links (filled in by :func:`route_service_flows`).
    weight:
        WRR/DRR weight; defaults to the class weight.
    packet_bits:
        Packetization used by the grant-level simulator.
    """

    name: str
    src: int
    dst: int
    service_class: ServiceClass
    contract: TrafficContract
    route: tuple[Link, ...] = field(default=())
    weight: Optional[int] = None
    packet_bits: int = 1600

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ConfigurationError(
                f"service flow {self.name}: src == dst == {self.src}")
        if not isinstance(self.service_class, ServiceClass):
            raise ConfigurationError(
                f"service flow {self.name}: unknown service class "
                f"{self.service_class!r}")
        _validate_contract(self.name, self.service_class, self.contract)
        if self.weight is not None and self.weight <= 0:
            raise ConfigurationError(
                f"service flow {self.name}: weight must be positive")
        if self.packet_bits <= 0:
            raise ConfigurationError(
                f"service flow {self.name}: packet size must be positive")

    # -- derived quantities --------------------------------------------------

    @property
    def demand_rate_bps(self) -> float:
        """The rate the *schedule* must carry: the reservation, or for BE
        the elastic ask (used only to size leftover grants)."""
        if self.service_class is ServiceClass.BE:
            return float(self.contract.max_sustained_rate_bps)
        return self.contract.min_reserved_rate_bps

    @property
    def offered_rate_bps(self) -> float:
        """The rate the *source* offers: sustained cap, else the floor."""
        if self.contract.max_sustained_rate_bps is not None:
            return float(self.contract.max_sustained_rate_bps)
        return self.contract.min_reserved_rate_bps

    @property
    def effective_weight(self) -> int:
        return (self.weight if self.weight is not None
                else self.service_class.default_weight)

    @property
    def deadline_s(self) -> float:
        """Per-packet relative deadline (inf when the class has none)."""
        if self.contract.max_latency_s is None:
            return float("inf")
        return self.contract.max_latency_s

    @property
    def is_routed(self) -> bool:
        return bool(self.route)

    def with_route(self, route: Iterable[Link]) -> "ServiceFlow":
        return replace(self, route=tuple(route))

    # -- bridges to the plain-flow core --------------------------------------

    def to_flow(self) -> Flow:
        """The plain :class:`~repro.net.flows.Flow` the scheduling core
        sees: reservation as rate, latency bound as delay budget (absent
        for nrtPS/BE, exactly like the legacy two-class split)."""
        return Flow(name=self.name, src=self.src, dst=self.dst,
                    rate_bps=self.demand_rate_bps,
                    delay_budget_s=self.contract.max_latency_s,
                    route=self.route)

    @classmethod
    def from_flow(cls, flow: Flow, service_class: ServiceClass,
                  contract: Optional[TrafficContract] = None,
                  **kwargs) -> "ServiceFlow":
        """Wrap an existing flow into a service flow.

        Without an explicit contract, the flow's rate becomes the
        reservation (or the BE ask) and its delay budget the latency
        bound -- the mapping that makes the migrated two-class layer
        (E16) bit-identical to the legacy split.
        """
        if contract is None:
            if service_class is ServiceClass.BE:
                contract = TrafficContract(
                    max_sustained_rate_bps=flow.rate_bps)
            else:
                contract = TrafficContract(
                    min_reserved_rate_bps=flow.rate_bps,
                    max_latency_s=flow.delay_budget_s)
        return cls(name=flow.name, src=flow.src, dst=flow.dst,
                   service_class=service_class, contract=contract,
                   route=flow.route, **kwargs)


class ServiceFlowSet:
    """An ordered collection of service flows with unique names."""

    def __init__(self, flows: Iterable[ServiceFlow] = ()) -> None:
        self._flows: dict[str, ServiceFlow] = {}
        for flow in flows:
            self.add(flow)

    def add(self, flow: ServiceFlow) -> None:
        if flow.name in self._flows:
            raise ConfigurationError(
                f"duplicate service flow name {flow.name!r}")
        self._flows[flow.name] = flow

    def remove(self, name: str) -> ServiceFlow:
        try:
            return self._flows.pop(name)
        except KeyError:
            raise ConfigurationError(
                f"no service flow named {name!r}") from None

    def replace(self, flow: ServiceFlow) -> None:
        if flow.name not in self._flows:
            raise ConfigurationError(f"no service flow named {flow.name!r}")
        self._flows[flow.name] = flow

    def get(self, name: str) -> ServiceFlow:
        try:
            return self._flows[name]
        except KeyError:
            raise ConfigurationError(
                f"no service flow named {name!r}") from None

    def __contains__(self, name: object) -> bool:
        return name in self._flows

    def __iter__(self) -> Iterator[ServiceFlow]:
        return iter(self._flows.values())

    def __len__(self) -> int:
        return len(self._flows)

    def names(self) -> list[str]:
        return list(self._flows)

    def by_class(self, service_class: ServiceClass) -> list[ServiceFlow]:
        return [f for f in self if f.service_class is service_class]

    def guaranteed(self) -> list[ServiceFlow]:
        """Flows with a reservation (UGS, rtPS, nrtPS)."""
        return [f for f in self if f.service_class.is_guaranteed]

    def best_effort(self) -> list[ServiceFlow]:
        return self.by_class(ServiceClass.BE)

    # -- bridges --------------------------------------------------------------

    def to_flow_set(self) -> FlowSet:
        """Every service flow as a plain flow (order preserved)."""
        return FlowSet(f.to_flow() for f in self)

    def guaranteed_flow_set(self) -> FlowSet:
        """The UGS/rtPS/nrtPS flows as plain flows (order preserved)."""
        return FlowSet(f.to_flow() for f in self.guaranteed())

    def best_effort_flow_set(self) -> FlowSet:
        return FlowSet(f.to_flow() for f in self.best_effort())


def route_service_flows(topology: MeshTopology,
                        flows: ServiceFlowSet) -> ServiceFlowSet:
    """Route every unrouted service flow over shortest paths."""
    from repro.net.routing import shortest_path_route

    routed = ServiceFlowSet()
    for flow in flows:
        if not flow.is_routed:
            flow = flow.with_route(
                shortest_path_route(topology, flow.src, flow.dst))
        routed.add(flow)
    return routed
