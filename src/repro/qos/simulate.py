"""Deterministic grant-level simulation of service-class traffic.

The TDMA schedule says which *link* owns each data slot; the discipline
says which *service flow* rides each grant.  This simulator plays that
out packet by packet: deterministic CBR arrivals at each source (the
offered rate, which for rtPS/BE exceeds the reservation -- that surplus
is what saturates the mesh), per-flow FIFO queues at every hop, one
scheduler instance per node arbitrating its grants, store-and-forward
across hops (a packet forwarded in slot *i* is eligible from the end of
slot *i*).

Everything is derived from the flow set, the schedule and the frame
config -- no RNG, no wall clock -- so runs are bitwise reproducible and
shard cleanly across processes (E19 relies on this for its serial vs
``--jobs N`` identity).

Outputs: per-flow :class:`~repro.traffic.qos.FlowQoS`, per-class
:class:`ClassStats` (offered/delivered volume, contract-violation
counts, starvation ages), Jain fairness indices, and grant-utilization
counts.  The same numbers are published through
:class:`repro.obs.fairness.FairnessMeter` into the current metrics
registry.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Mapping, Optional

from repro.core.schedule import Schedule
from repro.errors import ConfigurationError
from repro.mesh16.frame import MeshFrameConfig
from repro.obs.fairness import FairnessMeter, jains_index
from repro.obs.metrics import counter
from repro.qos.model import ServiceClass, ServiceFlow, ServiceFlowSet
from repro.qos.schedulers import QueueView, make_scheduler
from repro.traffic.qos import FlowQoS


@dataclass(frozen=True)
class ClassStats:
    """Aggregate outcome for one service class over a run."""

    service_class: str
    offered_packets: int
    offered_bits: int
    delivered_packets: int
    delivered_bits: int
    #: delivered bits / run horizon
    throughput_bps: float
    #: this class's fraction of all delivered bits
    share: float
    #: deliveries past the latency bound plus packets still queued past
    #: their (in-horizon) deadline -- the contract-violation count
    latency_violations: int
    #: flows whose RFC3550 jitter exceeds the tolerated jitter
    jitter_violations: int
    #: worst head-of-line wait observed anywhere in the class
    max_queue_age_s: float
    #: True when the class's delivered rate covers its reservations
    min_rate_met: bool


@dataclass(frozen=True)
class QosRunResult:
    """Outcome of :func:`simulate_service_flows`."""

    discipline: str
    num_frames: int
    frame_duration_s: float
    per_flow: dict[str, FlowQoS]
    per_class: dict[str, ClassStats]
    #: Jain index over per-flow satisfaction (delivered/offered bits)
    flow_jain_index: float
    #: Jain index over per-class delivered bits
    class_jain_index: float
    grants_total: int
    grants_idle: int

    @property
    def horizon_s(self) -> float:
        return self.num_frames * self.frame_duration_s

    def stats_for(self, service_class: ServiceClass) -> ClassStats:
        return self.per_class[service_class.value]


class _Packet:
    __slots__ = ("bits", "created_s", "deadline_s", "avail_s", "hop")

    def __init__(self, bits: int, created_s: float, deadline_s: float,
                 avail_s: float, hop: int) -> None:
        self.bits = bits
        self.created_s = created_s
        self.deadline_s = deadline_s
        self.avail_s = avail_s
        self.hop = hop


def _scheduler_kwargs(discipline: str, frame: MeshFrameConfig,
                      scheduler_kwargs: Optional[Mapping]) -> dict:
    kwargs = dict(scheduler_kwargs or {})
    if discipline == "drr":
        kwargs.setdefault("quantum_bits", frame.data_slot_capacity_bits)
        kwargs.setdefault("grant_bits", frame.data_slot_capacity_bits)
    return kwargs


def simulate_service_flows(service_flows: ServiceFlowSet,
                           schedule: Schedule,
                           frame: MeshFrameConfig,
                           discipline: str,
                           num_frames: int = 200,
                           scheduler_kwargs: Optional[Mapping] = None,
                           ) -> QosRunResult:
    """Run ``num_frames`` frames of grant-by-grant service.

    ``service_flows`` must be routed; ``schedule`` carries the per-link
    grants (slot indices) the disciplines arbitrate.
    """
    if num_frames <= 0:
        raise ConfigurationError("num_frames must be positive")
    flows = list(service_flows)
    if not flows:
        raise ConfigurationError("no service flows to simulate")
    for flow in flows:
        if not flow.is_routed:
            raise ConfigurationError(
                f"service flow {flow.name} is unrouted; route first")
        if flow.packet_bits > frame.data_slot_capacity_bits:
            raise ConfigurationError(
                f"service flow {flow.name}: packet of {flow.packet_bits} "
                f"bits can never fit a "
                f"{frame.data_slot_capacity_bits}-bit grant")

    horizon_s = num_frames * frame.frame_duration_s
    slot_s = frame.data_slot_s
    capacity = frame.data_slot_capacity_bits

    # grants: slot index -> deterministically ordered owning links
    owners: list[list] = [[] for _ in range(frame.data_slots)]
    for link, block in sorted(schedule.items(), key=lambda kv: kv[0]):
        for slot in block.slots():
            if slot < frame.data_slots:
                owners[slot].append(link)

    # per-flow deterministic CBR arrival processes
    intervals = {f.name: f.packet_bits / f.offered_rate_bps for f in flows}
    next_arrival = {f.name: 0.0 for f in flows}
    offered_packets = {f.name: 0 for f in flows}
    offered_bits = {f.name: 0 for f in flows}

    # queues[(flow_name, node)] -> FIFO of packets waiting at that hop
    queues: dict[tuple[str, int], deque] = {
        (f.name, link[0]): deque() for f in flows for link in f.route}
    # flows whose route crosses each link, in registration order
    link_flows: dict[tuple, list[ServiceFlow]] = {}
    for f in flows:
        for link in f.route:
            link_flows.setdefault(link, []).append(f)

    nodes = sorted({link[0] for f in flows for link in f.route})
    kwargs = _scheduler_kwargs(discipline, frame, scheduler_kwargs)
    schedulers = {node: make_scheduler(discipline, **kwargs)
                  for node in nodes}

    delays: dict[str, list[float]] = {f.name: [] for f in flows}
    delivered_packets = {f.name: 0 for f in flows}
    delivered_bits = {f.name: 0 for f in flows}
    max_queue_age = {f.name: 0.0 for f in flows}
    grants_total = 0
    grants_idle = 0

    def admit_arrivals(flow: ServiceFlow, now: float) -> None:
        t = next_arrival[flow.name]
        interval = intervals[flow.name]
        queue = queues[(flow.name, flow.src)]
        while t <= now and t < horizon_s:
            queue.append(_Packet(flow.packet_bits, t,
                                 t + flow.deadline_s, t, 0))
            offered_packets[flow.name] += 1
            offered_bits[flow.name] += flow.packet_bits
            t += interval
        next_arrival[flow.name] = t

    for frame_idx in range(num_frames):
        frame_start = frame_idx * frame.frame_duration_s
        for slot in range(frame.data_slots):
            now = frame_start + frame.data_slot_offset(slot)
            slot_end = now + slot_s
            for flow in flows:
                admit_arrivals(flow, now)
            for link in owners[slot]:
                grants_total += 1
                node = link[0]
                candidates = []
                views = []
                for flow in link_flows[link]:
                    queue = queues[(flow.name, node)]
                    if not queue or queue[0].avail_s > now:
                        continue
                    head = queue[0]
                    age = now - head.created_s
                    if age > max_queue_age[flow.name]:
                        max_queue_age[flow.name] = age
                    candidates.append(flow)
                    views.append(QueueView(
                        name=flow.name,
                        service_class=flow.service_class,
                        weight=flow.effective_weight,
                        backlog_bits=sum(p.bits for p in queue),
                        backlog_packets=len(queue),
                        head_created_s=head.created_s,
                        head_deadline_s=head.deadline_s))
                if not views:
                    grants_idle += 1
                    continue
                picked = schedulers[node].pick(views, now)
                flow = next(f for f in candidates if f.name == picked)
                queue = queues[(flow.name, node)]
                budget = capacity
                while queue and queue[0].avail_s <= now \
                        and queue[0].bits <= budget:
                    pkt = queue.popleft()
                    budget -= pkt.bits
                    pkt.hop += 1
                    if pkt.hop >= len(flow.route):
                        delays[flow.name].append(slot_end - pkt.created_s)
                        delivered_packets[flow.name] += 1
                        delivered_bits[flow.name] += pkt.bits
                    else:
                        pkt.avail_s = slot_end
                        next_node = flow.route[pkt.hop][0]
                        queues[(flow.name, next_node)].append(pkt)

    # final starvation sweep: packets still queued at the horizon
    for (name, _node), queue in queues.items():
        if queue:
            age = horizon_s - queue[0].created_s
            if age > max_queue_age[name]:
                max_queue_age[name] = age

    per_flow = {
        f.name: FlowQoS.from_samples(f.name, offered_packets[f.name],
                                     delivered_packets[f.name],
                                     delays[f.name])
        for f in flows}

    per_class = _aggregate_classes(flows, queues, delays, offered_packets,
                                   offered_bits, delivered_packets,
                                   delivered_bits, per_flow, max_queue_age,
                                   horizon_s)

    satisfaction = {
        f.name: (delivered_bits[f.name] / offered_bits[f.name]
                 if offered_bits[f.name] else 0.0)
        for f in flows}
    flow_jain = jains_index(list(satisfaction.values()))
    class_delivered = {cls: stats.delivered_bits
                       for cls, stats in per_class.items()}
    class_jain = jains_index(list(class_delivered.values()))

    meter = FairnessMeter("qos")
    meter.record_shares({c: float(v) for c, v in class_delivered.items()})
    meter.record_flow_fairness(satisfaction)
    for cls, stats in per_class.items():
        meter.record_starvation(cls, stats.max_queue_age_s)
        if stats.latency_violations:
            meter.count_violation(cls, "latency", stats.latency_violations)
        if stats.jitter_violations:
            meter.count_violation(cls, "jitter", stats.jitter_violations)
        counter(f"qos.delivered_packets.{cls}").inc(stats.delivered_packets)
    counter("qos.grants.total").inc(grants_total)
    counter("qos.grants.idle").inc(grants_idle)

    return QosRunResult(
        discipline=discipline,
        num_frames=num_frames,
        frame_duration_s=frame.frame_duration_s,
        per_flow=per_flow,
        per_class=per_class,
        flow_jain_index=flow_jain,
        class_jain_index=class_jain,
        grants_total=grants_total,
        grants_idle=grants_idle)


def _aggregate_classes(flows, queues, delays, offered_packets, offered_bits,
                       delivered_packets, delivered_bits, per_flow,
                       max_queue_age, horizon_s) -> dict[str, ClassStats]:
    total_delivered = sum(delivered_bits.values())
    stats: dict[str, ClassStats] = {}
    for cls in ServiceClass:
        members = [f for f in flows if f.service_class is cls]
        if not members:
            continue
        late = 0
        jitter_bad = 0
        for f in members:
            bound = f.contract.max_latency_s
            if bound is not None:
                late += sum(1 for d in delays[f.name] if d > bound)
                # queued past an in-horizon deadline: also a violation
                for (name, _node), queue in queues.items():
                    if name != f.name:
                        continue
                    late += sum(1 for p in queue if p.deadline_s < horizon_s)
            tol = f.contract.tolerated_jitter_s
            qos = per_flow[f.name]
            if (tol is not None and qos.has_samples
                    and qos.jitter_s > tol):
                jitter_bad += 1
        cls_delivered = sum(delivered_bits[f.name] for f in members)
        reserved = sum(f.contract.min_reserved_rate_bps for f in members)
        throughput = cls_delivered / horizon_s
        stats[cls.value] = ClassStats(
            service_class=cls.value,
            offered_packets=sum(offered_packets[f.name] for f in members),
            offered_bits=sum(offered_bits[f.name] for f in members),
            delivered_packets=sum(
                delivered_packets[f.name] for f in members),
            delivered_bits=cls_delivered,
            throughput_bps=throughput,
            share=(cls_delivered / total_delivered
                   if total_delivered else 0.0),
            latency_violations=late,
            jitter_violations=jitter_bad,
            max_queue_age_s=max(max_queue_age[f.name] for f in members),
            min_rate_met=(throughput >= 0.9 * reserved),
        )
    return stats
