"""repro.qos -- 802.16 service classes, schedulers, and admission (S-QoS).

The guaranteed-QoS layer the source paper emulates: service flows carry
UGS/rtPS/nrtPS/BE contracts (:mod:`repro.qos.model`), pluggable
intra-node disciplines decide which flow rides each TDMA grant
(:mod:`repro.qos.schedulers`), planners turn contracts into grant maps
(:mod:`repro.qos.planner`), a deterministic grant-level simulator plays
the result out packet by packet (:mod:`repro.qos.simulate`), and a
class-aware admission controller enforces reject/park semantics over the
min-slots search (:mod:`repro.qos.admission`).  See ``docs/qos.md``.
"""

from repro.qos.admission import (
    QosAdmissionController,
    QosAdmissionDecision,
    class_shed_key,
)
from repro.qos.model import (
    ServiceClass,
    ServiceFlow,
    ServiceFlowSet,
    TrafficContract,
    route_service_flows,
)
from repro.qos.planner import (
    grant_schedule_for,
    schedule_service_classes,
    waterfill_grants,
)
from repro.qos.schedulers import (
    DrrScheduler,
    EdfScheduler,
    QueueView,
    ServiceFlowScheduler,
    StrictPriorityScheduler,
    WrrScheduler,
    available_disciplines,
    make_scheduler,
)
from repro.qos.simulate import ClassStats, QosRunResult, simulate_service_flows

__all__ = [
    "ClassStats",
    "DrrScheduler",
    "EdfScheduler",
    "QosAdmissionController",
    "QosAdmissionDecision",
    "QosRunResult",
    "QueueView",
    "ServiceClass",
    "ServiceFlow",
    "ServiceFlowScheduler",
    "ServiceFlowSet",
    "StrictPriorityScheduler",
    "TrafficContract",
    "WrrScheduler",
    "available_disciplines",
    "class_shed_key",
    "grant_schedule_for",
    "make_scheduler",
    "route_service_flows",
    "schedule_service_classes",
    "simulate_service_flows",
    "waterfill_grants",
]
