"""Grant planning for service-class workloads.

Two planners, for the two halves of the QoS story:

- :func:`schedule_service_classes` is the class-aware successor of the
  hand-rolled two-class split (E16): the guaranteed classes (UGS, rtPS,
  nrtPS) get the smallest region the min-slots search accepts under
  their latency bounds, best effort elastically fills the leftover.
  With two classes (rtPS + BE) it reproduces the legacy
  :func:`~repro.core.besteffort.schedule_two_classes` tables bit for bit.

- :func:`waterfill_grants` / :func:`grant_schedule_for` build the
  *saturating-load* grant map E19 needs: reservations first (these must
  fit, or the workload is inadmissible), then leftover slots are
  water-filled one at a time toward the largest unmet ask, so every link
  with elastic demand grows in proportion instead of first-fit-decreasing
  starving the short asks.  The result is a plain contiguous
  :class:`~repro.core.schedule.Schedule` whose grants the intra-node
  disciplines then arbitrate packet by packet.
"""

from __future__ import annotations

from typing import Mapping, Optional

import networkx as nx

from repro.core.besteffort import TwoClassSchedule, schedule_two_classes
from repro.core.greedy import greedy_schedule
from repro.core.schedule import Schedule
from repro.errors import ConfigurationError, InfeasibleScheduleError
from repro.mesh16.frame import MeshFrameConfig
from repro.net.topology import Link, MeshTopology
from repro.qos.model import ServiceFlowSet, route_service_flows


def schedule_service_classes(conflicts: nx.Graph,
                             service_flows: ServiceFlowSet,
                             frame: MeshFrameConfig,
                             search: str = "linear") -> TwoClassSchedule:
    """Two-region schedule from a class-aware flow set.

    Guaranteed-class reservations (with latency bounds where the class
    defines them) size the guaranteed region via the min-slots search;
    best-effort asks fill the leftover elastically.  Raises
    :class:`~repro.errors.InfeasibleScheduleError` only when the
    guaranteed classes cannot be carried.
    """
    from repro.analysis.scenarios import delay_constraints_for

    guaranteed = service_flows.guaranteed_flow_set()
    g_demands = guaranteed.link_demands(frame.frame_duration_s,
                                        frame.data_slot_capacity_bits)
    be_demands = service_flows.best_effort_flow_set().link_demands(
        frame.frame_duration_s, frame.data_slot_capacity_bits)
    constraints = delay_constraints_for(guaranteed, frame)
    return schedule_two_classes(conflicts, g_demands, be_demands,
                                frame.data_slots,
                                delay_constraints=constraints,
                                search=search)


def waterfill_grants(conflicts: nx.Graph,
                     min_demands: Mapping[Link, int],
                     asks: Mapping[Link, int],
                     frame_slots: int) -> dict[Link, int]:
    """Grow per-link grants from reservations toward asks, one slot at a
    time, while a conflict-free packing still exists.

    Starts at ``min_demands`` (which must be packable -- raises
    :class:`~repro.errors.InfeasibleScheduleError` otherwise) and
    repeatedly awards one slot to the link with the largest unmet ask
    (ties: canonical link order).  A link whose growth no longer packs is
    frozen.  Deterministic; terminates when every link is satisfied or
    frozen.
    """
    grants: dict[Link, int] = {}
    for link in asks:
        grants[link] = int(min_demands.get(link, 0))
    for link, demand in min_demands.items():
        grants.setdefault(link, int(demand))

    def packs(candidate: Mapping[Link, int]) -> bool:
        try:
            greedy_schedule(conflicts, dict(candidate), frame_slots)
        except InfeasibleScheduleError:
            return False
        return True

    if not packs(grants):
        raise InfeasibleScheduleError(
            f"reservations do not fit in {frame_slots} slots")

    frozen: set[Link] = set()
    while True:
        hungry = [(asks.get(link, 0) - grants[link], link)
                  for link in grants
                  if link not in frozen and asks.get(link, 0) > grants[link]]
        if not hungry:
            break
        hungry.sort(key=lambda item: (-item[0], item[1]))
        _, link = hungry[0]
        grants[link] += 1
        if not packs(grants):
            grants[link] -= 1
            frozen.add(link)
    return {link: count for link, count in grants.items() if count > 0}


def grant_schedule_for(topology: MeshTopology,
                       service_flows: ServiceFlowSet,
                       frame: MeshFrameConfig,
                       conflict_hops: Optional[int] = None,
                       engine=None,
                       interference=None) -> tuple[Schedule, ServiceFlowSet]:
    """A saturating-load grant schedule for a service-class workload.

    Routes the flows, reserves slots for the guaranteed minimums, then
    water-fills the leftover toward the *offered* rates (rtPS bursts and
    BE asks).  Returns the packed schedule and the routed flow set.
    The conflict graph comes from the engine's interference seam:
    ``conflict_hops=`` selects a protocol model (default 2), or pass
    ``interference=`` any :class:`~repro.phy.models.InterferenceModel`.
    """
    from repro.core.engine import SolverEngine

    routed = route_service_flows(topology, service_flows)
    if engine is None:
        engine = SolverEngine()

    duration = frame.frame_duration_s
    capacity = frame.data_slot_capacity_bits
    min_demands = routed.guaranteed_flow_set().link_demands(
        duration, capacity)

    asks: dict[Link, int] = {}
    for flow in routed:
        per_link = -(-int(flow.offered_rate_bps * duration) // int(capacity))
        per_link = max(per_link, 1)
        for link in flow.route:
            asks[link] = asks.get(link, 0) + per_link

    all_links = set(asks) | set(min_demands)
    if not all_links:
        raise ConfigurationError("no routed service flows to schedule")
    conflicts = engine.conflict_index(topology, hops=conflict_hops,
                                      interference=interference,
                                      links=all_links).graph
    grants = waterfill_grants(conflicts, min_demands, asks,
                              frame.data_slots)
    schedule = greedy_schedule(conflicts, grants, frame.data_slots)
    return schedule, routed
