"""Class-aware admission control over the min-slots search.

The 802.16 admission rule, layered on
:class:`repro.core.admission.AdmissionController`:

- **UGS / rtPS / nrtPS** requests reserve bandwidth, so they pass through
  the incremental min-slots check: the reservation (and, for the
  real-time classes, the latency bound) must fit the guaranteed region
  alongside everything already admitted, or the request is **rejected**.
- **BE** requests are **always admitted and never guaranteed**: they
  consume no reserved slots and simply register with the scheduler
  layer, competing for leftover grants.

Rejected or displaced guaranteed flows can be *parked* and re-tried
later (:meth:`QosAdmissionController.readmit_parked`), mirroring the
repair engine's park/readmit loop; :func:`class_shed_key` plugs the
class order into :class:`repro.core.repair.RepairEngine` so capacity
sheds take best effort first and UGS last.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.admission import AdmissionController
from repro.core.schedule import Schedule
from repro.errors import ConfigurationError
from repro.mesh16.frame import MeshFrameConfig
from repro.net.topology import MeshTopology
from repro.obs.metrics import counter
from repro.qos.model import ServiceClass, ServiceFlow, ServiceFlowSet

#: Shed order under capacity pressure: larger sheds first.
_SHED_RANK = {ServiceClass.UGS: 0, ServiceClass.RTPS: 1,
              ServiceClass.NRTPS: 2, ServiceClass.BE: 3}


@dataclass
class QosAdmissionDecision:
    """Outcome of a service-flow admission request."""

    admitted: bool
    flow: ServiceFlow
    reason: str
    #: guaranteed-region slots in use after the decision
    slots_used: int
    schedule: Optional[Schedule] = None
    #: True for BE: carried opportunistically, no reservation backs it
    guaranteed: bool = False


class QosAdmissionController:
    """Admit service flows according to their class contracts."""

    def __init__(self, topology: MeshTopology, frame: MeshFrameConfig,
                 conflict_hops: int = 2,
                 guaranteed_region_slots: Optional[int] = None,
                 search: str = "binary",
                 time_limit_per_probe_s: Optional[float] = 15.0) -> None:
        self.frame = frame
        self._core = AdmissionController(
            topology, frame.data_slots, frame.frame_duration_s,
            frame.data_slot_capacity_bits, conflict_hops=conflict_hops,
            guaranteed_region_slots=guaranteed_region_slots, search=search,
            time_limit_per_probe_s=time_limit_per_probe_s)
        #: every admitted service flow, insertion-ordered (incl. BE)
        self.service_flows = ServiceFlowSet()
        #: guaranteed flows rejected/released but kept for re-try
        self.parked = ServiceFlowSet()
        self._admit_seq = 0
        self._admit_index: dict[str, int] = {}

    # -- state views --------------------------------------------------------

    @property
    def schedule(self) -> Optional[Schedule]:
        return self._core.schedule

    @property
    def slots_used(self) -> int:
        return self._core.slots_used

    def admitted_count(self, service_class: Optional[ServiceClass] = None
                       ) -> int:
        if service_class is None:
            return len(self.service_flows)
        return len(self.service_flows.by_class(service_class))

    # -- admission ----------------------------------------------------------

    def request(self, flow: ServiceFlow, park_on_reject: bool = False
                ) -> QosAdmissionDecision:
        """Admit ``flow`` per its class contract.

        BE is always admitted (never guaranteed).  Guaranteed classes go
        through the min-slots search and are rejected -- optionally
        parked for later :meth:`readmit_parked` -- when the schedule
        cannot carry their reservation.
        """
        if flow.name in self.service_flows:
            raise ConfigurationError(
                f"service flow {flow.name!r} already admitted")
        if flow.name in self.parked:
            self.parked.remove(flow.name)

        cls = flow.service_class
        if cls is ServiceClass.BE:
            self._register(flow)
            counter("qos.admission.admitted.BE").inc()
            return QosAdmissionDecision(
                admitted=True, flow=flow,
                reason="best effort: admitted, not guaranteed",
                slots_used=self.slots_used, schedule=self.schedule,
                guaranteed=False)

        decision = self._core.try_admit(flow.to_flow())
        if not decision.admitted:
            counter(f"qos.admission.rejected.{cls.value}").inc()
            if park_on_reject:
                self.parked.add(flow)
            return QosAdmissionDecision(
                admitted=False, flow=flow, reason=decision.reason,
                slots_used=self.slots_used, schedule=self.schedule,
                guaranteed=False)
        self._register(flow.with_route(decision.flow.route))
        counter(f"qos.admission.admitted.{cls.value}").inc()
        return QosAdmissionDecision(
            admitted=True, flow=self.service_flows.get(flow.name),
            reason="admitted", slots_used=self.slots_used,
            schedule=self.schedule, guaranteed=True)

    def release(self, name: str, park: bool = False) -> None:
        """Release an admitted service flow (freeing its reservation).

        With ``park=True`` the flow definition is retained for a later
        :meth:`readmit_parked` pass.  Unknown names raise
        :class:`~repro.errors.ConfigurationError` (and count through the
        core ``release_unknown`` counter for guaranteed flows).
        """
        if name not in self.service_flows:
            counter("qos.admission.release_unknown").inc()
            raise ConfigurationError(
                f"cannot release {name!r}: no such service flow")
        flow = self.service_flows.remove(name)
        self._admit_index.pop(name, None)
        if flow.service_class.is_guaranteed:
            self._core.release(name)
        if park:
            self.parked.add(flow)

    def readmit_parked(self) -> list[QosAdmissionDecision]:
        """Re-try every parked flow, oldest first; admitted ones unpark.

        The repair-engine analogue: after capacity returns (a release, a
        recovered link), parked reservations get another admission pass.
        """
        decisions = []
        for flow in list(self.parked):
            self.parked.remove(flow.name)
            decision = self.request(flow, park_on_reject=True)
            decisions.append(decision)
        return decisions

    # -- repair-engine integration ------------------------------------------

    def shed_key(self):
        """Key for :class:`repro.core.repair.RepairEngine`'s shed order:
        BE sheds first, then nrtPS, rtPS, and UGS last; within one class,
        newest admission first.  Names this controller does not manage
        shed like BE (nothing is known to back them)."""
        return class_shed_key(self.service_flows, self._admit_index)

    def _register(self, flow: ServiceFlow) -> None:
        self.service_flows.add(flow)
        self._admit_index[flow.name] = self._admit_seq
        self._admit_seq += 1


def class_shed_key(service_flows: ServiceFlowSet,
                   admit_index: Optional[dict] = None):
    """Build a ``name -> (rank, age)`` shed key from a service-flow set.

    Pass the result as ``RepairEngine(shed_key=...)``: the repair loop
    stably sorts its shed candidates by this key and pops the largest
    first, so best effort is sacrificed before any reserved class.
    """
    index = admit_index or {}

    def key(name: str):
        if name in service_flows:
            rank = _SHED_RANK[service_flows.get(name).service_class]
        else:
            rank = _SHED_RANK[ServiceClass.BE]
        return (rank, index.get(name, 0))

    return key
