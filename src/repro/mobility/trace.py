"""Trace-driven mobility: replaying recorded node positions (S36).

A :class:`MobilityTrace` holds timestamped ``(t, node, x, y)`` samples
-- from a measurement campaign, an external simulator (ns-3, SUMO,
BonnMotion exports), or :meth:`MobilityTrace.from_model` sampling one of
the synthetic models -- and plays them back through the same duck-typed
motion interface the models expose (``nodes``, ``horizon_s``,
``position(node, t)``).

Between samples positions interpolate linearly.  Outside a node's
sampled span the node is *absent* (``position`` returns ``None``): a
node whose first sample is at t=30 joins the field at t=30, and one
whose last sample is at t=90 leaves then.  That is how traces express
node arrival and departure without a separate event vocabulary.

Two on-disk formats are supported, chosen by file suffix in
:meth:`load`:

- CSV with a ``t,node,x,y`` header (any column order);
- JSON Lines, one ``{"t": .., "node": .., "x": .., "y": ..}`` per line.
"""

from __future__ import annotations

import bisect
import csv
import io
import json
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.errors import ConfigurationError

#: One trace sample: (time_s, node, x_m, y_m).
Sample = tuple[float, int, float, float]


class MobilityTrace:
    """An immutable per-node position timeline with linear interpolation."""

    def __init__(self, samples: Iterable[Sample]) -> None:
        series: dict[int, list[tuple[float, float, float]]] = {}
        for t, node, x, y in samples:
            t, node = float(t), int(node)
            if t < 0:
                raise ConfigurationError(
                    f"trace sample for node {node} has negative time {t}")
            series.setdefault(node, []).append((t, float(x), float(y)))
        if not series:
            raise ConfigurationError("trace has no samples")
        for node, points in series.items():
            points.sort(key=lambda p: p[0])
            for prev, cur in zip(points, points[1:]):
                if cur[0] == prev[0]:
                    raise ConfigurationError(
                        f"trace has duplicate samples for node {node} "
                        f"at t={cur[0]}")
        self._times = {node: [p[0] for p in points]
                       for node, points in series.items()}
        self._points = series
        self.nodes: tuple[int, ...] = tuple(sorted(series))
        self.horizon_s: float = max(times[-1]
                                    for times in self._times.values())

    def span(self, node: int) -> tuple[float, float]:
        """The ``[first, last]`` sampled time span of ``node``."""
        times = self._times.get(node)
        if times is None:
            raise ConfigurationError(f"node {node} is not in the trace")
        return (times[0], times[-1])

    def position(self, node: int, t: float
                 ) -> Optional[tuple[float, float]]:
        """The node's (x, y) at time ``t``, or ``None`` outside its span."""
        times = self._times.get(node)
        if times is None or t < times[0] or t > times[-1]:
            return None
        points = self._points[node]
        index = bisect.bisect_right(times, t) - 1
        t0, x0, y0 = points[index]
        if t == t0 or index + 1 == len(points):
            return (x0, y0)
        t1, x1, y1 = points[index + 1]
        frac = (t - t0) / (t1 - t0)
        return (x0 + frac * (x1 - x0), y0 + frac * (y1 - y0))

    def samples(self) -> list[Sample]:
        """All samples, sorted by (time, node) -- the canonical dump order."""
        rows = [(t, node, x, y)
                for node, points in self._points.items()
                for t, x, y in points]
        rows.sort(key=lambda r: (r[0], r[1]))
        return rows

    # -- builders ----------------------------------------------------------

    @classmethod
    def from_model(cls, model, dt: float,
                   horizon_s: Optional[float] = None) -> "MobilityTrace":
        """Sample a motion model every ``dt`` seconds into a trace.

        Round-trips through :meth:`dumps`/:meth:`loads` byte-identically,
        which is how the property tests pin the serialisation format.
        """
        if dt <= 0:
            raise ConfigurationError("dt must be positive")
        horizon = model.horizon_s if horizon_s is None else float(horizon_s)
        rows: list[Sample] = []
        steps = int(horizon / dt + 1e-9)
        for k in range(steps + 1):
            t = min(k * dt, horizon)
            for node in model.nodes:
                xy = model.position(node, t)
                if xy is not None:
                    rows.append((t, node, xy[0], xy[1]))
        return cls(rows)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "MobilityTrace":
        """Load a trace file; the format follows the suffix.

        ``.csv`` parses as CSV, ``.jsonl``/``.ndjson`` as JSON Lines.
        """
        path = Path(path)
        suffix = path.suffix.lower()
        if suffix == ".csv":
            fmt = "csv"
        elif suffix in (".jsonl", ".ndjson"):
            fmt = "jsonl"
        else:
            raise ConfigurationError(
                f"unknown trace suffix {path.suffix!r} "
                "(expected .csv, .jsonl or .ndjson)")
        return cls.loads(path.read_text(), fmt)

    @classmethod
    def loads(cls, text: str, fmt: str) -> "MobilityTrace":
        """Parse trace ``text`` in the named format (``csv``/``jsonl``)."""
        if fmt == "csv":
            reader = csv.DictReader(io.StringIO(text))
            required = {"t", "node", "x", "y"}
            header = set(reader.fieldnames or ())
            if not required <= header:
                raise ConfigurationError(
                    f"CSV trace needs columns {sorted(required)}, "
                    f"got {sorted(header)}")
            try:
                rows = [(float(r["t"]), int(r["node"]),
                         float(r["x"]), float(r["y"])) for r in reader]
            except (TypeError, ValueError) as exc:
                raise ConfigurationError(
                    f"malformed CSV trace row: {exc}") from None
            return cls(rows)
        if fmt == "jsonl":
            rows = []
            for lineno, line in enumerate(text.splitlines(), start=1):
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                    rows.append((float(record["t"]), int(record["node"]),
                                 float(record["x"]), float(record["y"])))
                except (KeyError, TypeError, ValueError) as exc:
                    raise ConfigurationError(
                        f"malformed JSONL trace line {lineno}: {exc}"
                    ) from None
            return cls(rows)
        raise ConfigurationError(
            f"unknown trace format {fmt!r} (expected 'csv' or 'jsonl')")

    # -- serialisation -----------------------------------------------------

    def dumps(self, fmt: str = "csv") -> str:
        """Serialise to ``csv`` or ``jsonl`` text in canonical sample order."""
        if fmt == "csv":
            out = io.StringIO()
            writer = csv.writer(out, lineterminator="\n")
            writer.writerow(["t", "node", "x", "y"])
            for t, node, x, y in self.samples():
                writer.writerow([repr(t), node, repr(x), repr(y)])
            return out.getvalue()
        if fmt == "jsonl":
            lines = [json.dumps({"t": t, "node": node, "x": x, "y": y})
                     for t, node, x, y in self.samples()]
            return "\n".join(lines) + "\n"
        raise ConfigurationError(
            f"unknown trace format {fmt!r} (expected 'csv' or 'jsonl')")

    def dump(self, path: Union[str, Path]) -> None:
        """Write the trace to ``path``; the format follows the suffix."""
        path = Path(path)
        suffix = path.suffix.lower()
        fmt = {"csv": "csv", "jsonl": "jsonl", "ndjson": "jsonl"}.get(
            suffix.lstrip("."))
        if fmt is None:
            raise ConfigurationError(
                f"unknown trace suffix {path.suffix!r} "
                "(expected .csv, .jsonl or .ndjson)")
        path.write_text(self.dumps(fmt))
