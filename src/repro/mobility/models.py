"""Deterministic node-motion models (S36).

A motion model animates node positions over a bounded horizon.  All
models share one duck-typed interface, which :class:`MobilityTrace`
(:mod:`repro.mobility.trace`) also implements:

- ``nodes`` -- sorted tuple of node ids the model animates;
- ``horizon_s`` -- the time span covered, seconds;
- ``position(node, t)`` -- the node's ``(x, y)`` metres at time ``t``,
  or ``None`` when the node is absent from the field at ``t``.

Everything is a pure function of the constructor arguments: the
random-waypoint model pre-draws its whole itinerary from the supplied
RNG at construction, so two models built from the same seed walk
byte-identical paths -- the property that lets the runtime cache and
shard mobility experiments (E20) like any other sweep.
"""

from __future__ import annotations

import bisect
import math
from typing import Mapping, Optional, Sequence, Union

from repro.errors import ConfigurationError
from repro.net.topology import MeshTopology

#: A scalar speed or an inclusive (low, high) uniform speed range, m/s.
SpeedLike = Union[float, tuple[float, float]]

#: One straight-line leg: (t_start, t_end, (x0, y0), (x1, y1)).
Segment = tuple[float, float, tuple[float, float], tuple[float, float]]


def _speed_range(speed_mps: SpeedLike) -> tuple[float, float]:
    if isinstance(speed_mps, tuple):
        lo, hi = float(speed_mps[0]), float(speed_mps[1])
    else:
        lo = hi = float(speed_mps)
    if lo < 0 or hi < lo:
        raise ConfigurationError(
            f"speed range must satisfy 0 <= low <= high, got {speed_mps}")
    return lo, hi


def _interpolate(segment: Segment, t: float) -> tuple[float, float]:
    t0, t1, (x0, y0), (x1, y1) = segment
    if t1 <= t0:
        return (x0, y0)
    frac = (t - t0) / (t1 - t0)
    return (x0 + frac * (x1 - x0), y0 + frac * (y1 - y0))


class _SegmentModel:
    """Shared piecewise-linear playback over per-node segment lists."""

    def __init__(self, segments: Mapping[int, Sequence[Segment]],
                 horizon_s: float) -> None:
        if horizon_s <= 0:
            raise ConfigurationError("horizon_s must be positive")
        self.horizon_s = float(horizon_s)
        self._segments = {node: list(segs)
                          for node, segs in segments.items()}
        self._starts = {node: [s[0] for s in segs]
                        for node, segs in self._segments.items()}
        self.nodes: tuple[int, ...] = tuple(sorted(self._segments))

    def position(self, node: int, t: float
                 ) -> Optional[tuple[float, float]]:
        """The node's (x, y) at time ``t``, or ``None`` if absent."""
        segments = self._segments.get(node)
        if not segments or t < 0:
            return None
        index = bisect.bisect_right(self._starts[node], t) - 1
        if index < 0:
            return None
        segment = segments[index]
        if t > segment[1]:
            return None
        return _interpolate(segment, min(t, segment[1]))


class RandomWaypointModel(_SegmentModel):
    """The classic seeded random-waypoint model on a square field.

    Each node starts at a uniform position in the ``area x area`` field
    (every start is drawn before any leg, so the t=0 layout depends only
    on the seed and node count -- not on speed), then repeatedly picks a
    uniform waypoint, travels to it at a speed drawn uniformly from
    ``speed_mps`` (a scalar pins the speed), and pauses ``pause_s``
    before the next leg.  A zero speed degenerates to a static layout,
    which is the E20 baseline arm.

    Randomness follows the standard ``rng=``/``seed=`` pair.
    ``initial_positions`` (e.g. a generated topology's layout, see
    :meth:`from_topology`) overrides the uniform starts.
    """

    def __init__(self, num_nodes: int, area: float, speed_mps: SpeedLike,
                 horizon_s: float, pause_s: float = 0.0,
                 rng=None, seed: Optional[int] = None,
                 initial_positions: Optional[
                     Mapping[int, tuple[float, float]]] = None) -> None:
        from repro.sim.random import resolve_rng

        if num_nodes < 1:
            raise ConfigurationError("need at least one node")
        if area <= 0:
            raise ConfigurationError("area must be positive")
        if pause_s < 0:
            raise ConfigurationError("pause_s must be non-negative")
        low, high = _speed_range(speed_mps)
        moving = high > 0
        rng = (resolve_rng(rng, seed, what="RandomWaypointModel")
               if moving or initial_positions is None else None)
        self.area = float(area)
        starts: dict[int, tuple[float, float]] = {}
        for node in range(num_nodes):
            if initial_positions is not None:
                try:
                    x, y = initial_positions[node]
                except KeyError:
                    raise ConfigurationError(
                        f"initial_positions misses node {node}") from None
                starts[node] = (float(x), float(y))
            else:
                starts[node] = (float(rng.uniform(0.0, area)),
                                float(rng.uniform(0.0, area)))
        segments: dict[int, list[Segment]] = {}
        for node in range(num_nodes):
            position = starts[node]
            if not moving:
                segments[node] = [(0.0, float(horizon_s), position,
                                   position)]
                continue
            legs: list[Segment] = []
            t = 0.0
            while t < horizon_s:
                target = (float(rng.uniform(0.0, area)),
                          float(rng.uniform(0.0, area)))
                speed = float(rng.uniform(low, high)) if high > low else high
                distance = math.hypot(target[0] - position[0],
                                      target[1] - position[1])
                if speed <= 0 or distance == 0:
                    legs.append((t, float(horizon_s), position, position))
                    t = float(horizon_s)
                    break
                arrive = t + distance / speed
                legs.append((t, arrive, position, target))
                position = target
                t = arrive
                if pause_s > 0 and t < horizon_s:
                    legs.append((t, t + pause_s, position, position))
                    t += pause_s
            segments[node] = legs
        super().__init__(segments, horizon_s)

    @classmethod
    def from_topology(cls, topology: MeshTopology, speed_mps: SpeedLike,
                      horizon_s: float, area: Optional[float] = None,
                      pause_s: float = 0.0, rng=None,
                      seed: Optional[int] = None) -> "RandomWaypointModel":
        """Waypoint motion seeded from a generated topology's real layout.

        Node ids and t=0 positions come from ``topology.positions`` (see
        :meth:`~repro.net.topology.MeshTopology.position`); ``area``
        defaults to the layout's bounding square.
        """
        if not topology.has_positions:
            raise ConfigurationError(
                f"{topology.name} has no positions to seed motion from")
        nodes = topology.nodes
        if nodes != list(range(len(nodes))):
            raise ConfigurationError(
                "from_topology needs contiguous node ids 0..n-1")
        positions = {n: topology.position(n) for n in nodes}
        if area is None:
            area = max(coord for xy in positions.values()
                       for coord in xy) or 1.0
        return cls(len(nodes), area, speed_mps, horizon_s, pause_s=pause_s,
                   rng=rng, seed=seed, initial_positions=positions)


def _fold(value: float, span: float) -> float:
    """Reflect an unbounded coordinate into ``[0, span]`` (billiard walls)."""
    period = 2.0 * span
    value %= period
    return value if value <= span else period - value


class ConstantVelocityModel:
    """Straight-line motion, optionally reflecting off a square field.

    Every node moves from its initial position at a constant per-node
    velocity.  With ``area`` set, nodes bounce elastically off the walls
    of the ``[0, area] x [0, area]`` field (closed-form triangle-wave
    fold, no integration error); without it they drift unbounded.  This
    is the vehicular "constant-velocity path" model: good for convoys,
    drive-bys and worst-case link-lifetime analysis.
    """

    def __init__(self, positions: Mapping[int, tuple[float, float]],
                 velocities: Mapping[int, tuple[float, float]],
                 horizon_s: float,
                 area: Optional[float] = None) -> None:
        if horizon_s <= 0:
            raise ConfigurationError("horizon_s must be positive")
        if not positions:
            raise ConfigurationError("need at least one node")
        missing = sorted(set(positions) - set(velocities))
        if missing:
            raise ConfigurationError(
                f"velocities missing for nodes {missing}")
        if area is not None and area <= 0:
            raise ConfigurationError("area must be positive")
        self.horizon_s = float(horizon_s)
        self.area = area
        self._positions = {n: (float(x), float(y))
                           for n, (x, y) in positions.items()}
        self._velocities = {n: (float(vx), float(vy))
                            for n, (vx, vy) in velocities.items()}
        self.nodes: tuple[int, ...] = tuple(sorted(self._positions))

    def position(self, node: int, t: float
                 ) -> Optional[tuple[float, float]]:
        """The node's (x, y) at time ``t``, or ``None`` if absent."""
        start = self._positions.get(node)
        if start is None or t < 0 or t > self.horizon_s:
            return None
        vx, vy = self._velocities[node]
        x, y = start[0] + vx * t, start[1] + vy * t
        if self.area is not None:
            x, y = _fold(x, self.area), _fold(y, self.area)
        return (x, y)
