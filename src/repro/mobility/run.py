"""End-to-end mobility driver: stream -> injector -> repair (S36).

:func:`run_mobility` wires the pieces together the way experiment E20
uses them: lower a :class:`~repro.mobility.stream.TopologyStream` onto
the fault machinery (:meth:`~repro.mobility.stream.TopologyStream.fault_plan`),
install the flow set on the t=0 world, then replay the motion-derived
fault plan through a :class:`~repro.faults.injector.FaultInjector` with
the :class:`~repro.core.repair.RepairEngine` retargeting once per sample
batch.  Batching matters under sustained churn: motion flips several
links per sample tick, and repairing once per tick instead of once per
link is what keeps the convergence window bounded as speed grows.

After every repair pass the live schedule must still pass the S8
conflict validator and every carried guaranteed flow its slot budget --
the driver records both, and E20's headline claim is that they hold at
every sampled speed.  All accounting is in frames and packets (never
wall-clock), so results are bitwise reproducible across ``--jobs``.

The driver publishes ``mobility.*`` metrics through :mod:`repro.obs`:
event counters (``deltas_applied``, ``links_flapped``, ``node_churn``,
``repairs_local``, ``repairs_resolve``, ``reselections``) and the
``repair_frames`` convergence histogram, all deterministic under the
S33 snapshot contract.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro import obs
from repro.core.delay import path_delay_slots
from repro.core.engine import SolverEngine
from repro.core.repair import RepairEngine
from repro.errors import ConfigurationError
from repro.faults.events import FaultEvent
from repro.faults.injector import FaultInjector
from repro.mesh16.frame import MeshFrameConfig, default_frame_config
from repro.mobility.stream import TopologyStream, gateway_selection
from repro.net.flows import Flow


@dataclass(frozen=True)
class MobilityStepOutcome:
    """One sample batch's repair result."""

    at_s: float
    #: fault events applied in this batch
    events: int
    #: repair strategy used ("noop" when the batch changed nothing)
    strategy: str
    #: schedule version after the batch
    version: int
    #: convergence window of this batch's repair, frames (0 for noop)
    repair_frames: int
    #: live schedule passes the S8 conflict validator
    conflict_ok: bool
    #: every carried guaranteed flow meets its slot budget
    guarantee_ok: bool
    #: nodes whose nearest gateway changed this batch
    reselections: int
    rerouted: int
    parked: int
    readmitted: int


@dataclass(frozen=True)
class MobilityRunResult:
    """Aggregates of one mobility run (the E20 row material)."""

    steps: tuple[MobilityStepOutcome, ...]
    #: batches whose repair used each strategy
    local: int
    resolve: int
    noop: int
    #: flows parked across all batches (events, not distinct names)
    parked_events: int
    #: mean convergence window over changed batches, frames
    mean_repair_frames: float
    #: total gateway re-selections across the run
    reselections: int
    #: conjunction of per-batch validity bits
    conflict_ok: bool
    guarantee_ok: bool
    #: packets lost to convergence windows and parked time
    lost_packets: int
    #: packets every managed flow would offer over the horizon
    offered_packets: int
    #: engine cache statistics snapshot at run end
    engine_stats: dict
    #: flows still parked when the horizon ends
    parked_final: tuple[str, ...]

    @property
    def goodput_fraction(self) -> float:
        """Delivered fraction of offered packets (1.0 = no mobility loss)."""
        if self.offered_packets == 0:
            return 1.0
        return max(0.0, 1.0 - self.lost_packets / self.offered_packets)


def _flood_margin(alive, gateway: int, frame: MeshFrameConfig) -> int:
    # same dissemination model as E17: depth flood rounds, each moving
    # ceil(nodes / control_slots) hops of announcements, plus activation
    depth = max((alive.hop_distance(gateway, n) for n in alive.nodes
                 if n != gateway), default=1)
    return depth * math.ceil(alive.num_nodes() / frame.control_slots) + 1


def run_mobility(stream: TopologyStream, flows: Iterable[Flow],
                 frame: Optional[MeshFrameConfig] = None, *,
                 gateway: int = 0,
                 gateways: Optional[Sequence[int]] = None,
                 hops: Optional[int] = None,
                 engine: Optional[SolverEngine] = None,
                 packet_interval_s: float = 0.02,
                 search: str = "binary",
                 interference=None) -> MobilityRunResult:
    """Carry ``flows`` across the moving mesh described by ``stream``.

    ``gateway`` anchors repair (it must be present in every snapshot);
    ``gateways`` is the candidate set for nearest-gateway selection
    (default: just the anchor, under which re-selection is trivially 0).
    ``engine`` shares a :class:`SolverEngine` across runs -- E20 passes
    one per arm so the ``core.engine.delta_updates`` /
    ``index_builds`` counters isolate the incremental-index effect.
    ``packet_interval_s`` converts convergence windows and parked time
    into lost packets (default 20 ms, the G.729 VoIP cadence).
    ``hops=`` / ``interference=`` select the interference backend the
    repair engine schedules against (protocol hops or any
    :class:`~repro.phy.models.InterferenceModel`); at most one of them.
    """
    if frame is None:
        frame = default_frame_config()
    if packet_interval_s <= 0:
        raise ConfigurationError("packet_interval_s must be positive")
    world = stream.fault_plan(gateway)
    flows = list(flows)
    union_nodes = set(world.topology.graph.nodes)
    for flow in flows:
        bad = {flow.src, flow.dst} - union_nodes
        if bad:
            raise ConfigurationError(
                f"flow {flow.name} endpoint(s) {sorted(bad)} never join "
                "the gateway's component")
    solver = engine if engine is not None else SolverEngine()
    repair = RepairEngine(world.topology, frame, gateway=gateway,
                          hops=hops, interference=interference,
                          search=search, engine=solver,
                          dead_nodes=world.dead_nodes,
                          dead_edges=world.dead_edges)
    repair.install(flows)

    injector = FaultInjector(world.plan, world.topology)
    # seed the injector with the t=0 world so its dead sets stay the
    # single source of truth for the whole run
    for node in sorted(world.dead_nodes):
        injector.apply(FaultEvent(0.0, "node_down", node=node))
    for link in sorted(world.dead_edges):
        injector.apply(FaultEvent(0.0, "link_down", link=link))

    selection_gateways = tuple(gateways) if gateways else (gateway,)

    def present() -> tuple[set[int], set[tuple[int, int]]]:
        dead_n, dead_e = injector.dead_nodes, injector.dead_edges
        nodes = union_nodes - dead_n
        edges = {tuple(sorted(e)) for e in world.topology.graph.edges}
        edges = {e for e in edges - dead_e
                 if e[0] in nodes and e[1] in nodes}
        return nodes, edges

    selection = gateway_selection(*present(), selection_gateways)

    # group the plan into per-timestamp batches: one repair per sample tick
    batches: list[tuple[float, list[FaultEvent]]] = []
    for event in world.plan:
        if batches and batches[-1][0] == event.at_s:
            batches[-1][1].append(event)
        else:
            batches.append((event.at_s, [event]))

    steps: list[MobilityStepOutcome] = []
    local = resolve = noop = parked_events = reselections = 0
    lost = 0
    frames_seen: list[int] = []
    conflict_ok_all = guarantee_ok_all = True
    horizon = stream.horizon_s
    # parked-time loss: walk the timeline, charging each interval the
    # packets its currently-parked flows would have delivered
    timeline_prev = 0.0
    for at_s, events in batches:
        interval = max(0.0, min(at_s, horizon) - timeline_prev)
        lost += len(repair.parked_flows) * int(interval / packet_interval_s)
        timeline_prev = min(at_s, horizon)
        for event in events:
            injector.apply(event)
        obs.counter("mobility.deltas_applied").inc(len(events))
        obs.counter("mobility.links_flapped").inc(
            sum(1 for e in events if e.link is not None))
        obs.counter("mobility.node_churn").inc(
            sum(1 for e in events if e.node is not None))
        outcome = repair.retarget(injector.dead_nodes, injector.dead_edges)
        parked_events += len(outcome.parked)
        if outcome.changed:
            margin = _flood_margin(repair.alive, gateway, frame)
            if outcome.strategy == "local":
                local += 1
                frames = 1 + margin
            else:
                resolve += 1
                frames = 1 + max(1, outcome.ilp_probes) + margin
                obs.counter("mobility.repairs_resolve").inc()
            if outcome.strategy == "local":
                obs.counter("mobility.repairs_local").inc()
            frames_seen.append(frames)
            obs.histogram("mobility.repair_frames").observe(frames)
            affected = len(set(outcome.rerouted) | set(outcome.parked)
                           | set(outcome.readmitted))
            lost += affected * math.ceil(
                frames * frame.frame_duration_s / packet_interval_s)
        else:
            noop += 1
            frames = 0
        # S8 + guarantee validity of the live schedule, every batch.
        # Validation deliberately asks for the *whole* alive link set: a
        # schedule is only safe if no scheduled link conflicts with any
        # link the mesh could activate, and the full-topology index is
        # exactly the shape the engine's delta updates answer cheaply.
        conflicts = solver.conflict_index(
            repair.alive, interference=repair.interference).graph
        conflict_ok = not repair.schedule.violations(conflicts)
        guarantee_ok = True
        for flow in repair.carried_flows:
            if flow.delay_budget_s is None:
                continue
            delay = path_delay_slots(repair.schedule, flow.route)
            guarantee_ok &= delay <= repair.budget_slots(flow)
        conflict_ok_all &= conflict_ok
        guarantee_ok_all &= guarantee_ok
        new_selection = gateway_selection(*present(), selection_gateways)
        changed = sum(1 for n, g in new_selection.items()
                      if g is not None and selection.get(n) is not None
                      and selection[n] != g)
        reselections += changed
        obs.counter("mobility.reselections").inc(changed)
        selection = new_selection
        steps.append(MobilityStepOutcome(
            at_s=at_s, events=len(events), strategy=outcome.strategy,
            version=repair.version, repair_frames=frames,
            conflict_ok=conflict_ok, guarantee_ok=guarantee_ok,
            reselections=changed, rerouted=len(outcome.rerouted),
            parked=len(outcome.parked),
            readmitted=len(outcome.readmitted)))
    # tail interval: flows still parked keep losing packets to the horizon
    lost += len(repair.parked_flows) * int(
        max(0.0, horizon - timeline_prev) / packet_interval_s)
    offered = len(flows) * int(horizon / packet_interval_s)
    mean_frames = (round(sum(frames_seen) / len(frames_seen), 2)
                   if frames_seen else 0.0)
    return MobilityRunResult(
        steps=tuple(steps), local=local, resolve=resolve, noop=noop,
        parked_events=parked_events, mean_repair_frames=mean_frames,
        reselections=reselections, conflict_ok=conflict_ok_all,
        guarantee_ok=guarantee_ok_all, lost_packets=lost,
        offered_packets=offered, engine_stats=dict(solver.stats),
        parked_final=tuple(repair.parked_flows))
