"""Positions -> timestamped topology deltas (S36).

A :class:`TopologyStream` samples a motion model (or replayed trace)
every ``dt`` seconds, maps pairwise distances through a
:class:`RadioRangeModel`, and emits the *differences* between
consecutive connectivity snapshots as :class:`TopologyDelta` events:
links forming and breaking, nodes joining and leaving the field.

The stream is the bridge between geometry and the fault machinery.
:meth:`TopologyStream.fault_plan` lowers the delta stream onto the
existing :class:`~repro.faults.plan.FaultPlan` vocabulary against a
fixed *union* base topology (every node and link that ever exists,
restricted to the gateway's component), plus the initial dead sets that
describe the t=0 world.  A :class:`~repro.core.repair.RepairEngine`
seeded with that base and those dead sets then survives sustained
churn exactly as it survives scripted faults -- mobility needs no new
repair code, only this lowering.

Hysteresis matters: with ``hysteresis=0`` a node oscillating around the
range boundary flaps its links every step.  The radio model forms a
link only once the pair is *well* inside range and breaks it only once
*well* outside, which is also how real drivers debounce association.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

from repro.errors import ConfigurationError
from repro.faults.events import FaultEvent
from repro.faults.plan import FaultPlan
from repro.net.topology import MeshTopology, from_edges

#: Delta kinds a stream can emit.
DELTA_KINDS = frozenset({"link_up", "link_down", "node_join", "node_leave"})

#: How stream delta kinds lower onto the fault-event vocabulary.
_FAULT_KIND = {"link_up": "link_up", "link_down": "link_down",
               "node_join": "node_up", "node_leave": "node_down"}


class RadioRangeModel:
    """Disk connectivity with symmetric hysteresis debouncing.

    A link *forms* once the pair distance drops to ``range_m * (1 -
    hysteresis)`` and *breaks* once it exceeds ``range_m * (1 +
    hysteresis)``; in between, the previous state holds.  At t=0 (no
    previous state) the nominal ``d <= range_m`` disk rule applies, so a
    stream over a static layout reproduces exactly the graph
    :func:`~repro.net.topology.random_disk_topology` would build from
    the same positions and range.
    """

    def __init__(self, range_m: float, hysteresis: float = 0.1) -> None:
        if range_m <= 0:
            raise ConfigurationError("range_m must be positive")
        if not 0.0 <= hysteresis < 1.0:
            raise ConfigurationError(
                f"hysteresis must be in [0, 1), got {hysteresis}")
        self.range_m = float(range_m)
        self.hysteresis = float(hysteresis)

    @classmethod
    def from_path_loss(cls, path_loss, tx_power_dbm: float,
                       sensitivity_dbm: float,
                       hysteresis: float = 0.1) -> "RadioRangeModel":
        """The disk range implied by a link budget.

        ``path_loss`` is any object with a ``range_m(tx_power_dbm,
        rss_dbm)`` inverse (a :class:`~repro.phy.models.PathLossModel`):
        the disk radius is the distance at which the received power
        falls to ``sensitivity_dbm``.  This is how an
        :class:`~repro.phy.models.SinrModel` and a mobility stream share
        one set of radio physics instead of two hand-picked ranges --
        see :meth:`~repro.phy.models.SinrModel.radio_range_model`.
        """
        return cls(path_loss.range_m(tx_power_dbm, sensitivity_dbm),
                   hysteresis=hysteresis)

    def initial(self, distance: float) -> bool:
        """Nominal disk rule for the very first snapshot."""
        return distance <= self.range_m

    def next_state(self, was_up: bool, distance: float) -> bool:
        """Debounced link state given the previous state and new distance."""
        if was_up:
            return distance <= self.range_m * (1.0 + self.hysteresis)
        return distance <= self.range_m * (1.0 - self.hysteresis)


@dataclass(frozen=True)
class TopologyDelta:
    """One timestamped connectivity change emitted by a stream.

    ``link_up``/``link_down`` carry the undirected ``link`` (normalised
    to the sorted pair); ``node_join``/``node_leave`` carry the ``node``.
    A leaving node's incident links get their own ``link_down`` deltas at
    the same timestamp, so the link state is always the full edge-set
    diff -- consumers never need to infer implied link changes.
    """

    at_s: float
    kind: str
    node: Optional[int] = None
    link: Optional[tuple[int, int]] = None

    def __post_init__(self) -> None:
        if self.kind not in DELTA_KINDS:
            raise ConfigurationError(
                f"unknown delta kind {self.kind!r}; expected one of "
                f"{sorted(DELTA_KINDS)}")
        if self.at_s < 0:
            raise ConfigurationError(f"delta time {self.at_s} is negative")
        if self.kind.startswith("node"):
            if self.node is None or self.link is not None:
                raise ConfigurationError(f"{self.kind} delta needs a node")
        else:
            if self.link is None or self.node is not None:
                raise ConfigurationError(f"{self.kind} delta needs a link")
            u, v = self.link
            if u == v:
                raise ConfigurationError(f"degenerate link ({u}, {v})")
            object.__setattr__(self, "link", (min(u, v), max(u, v)))

    def sort_key(self) -> tuple:
        """Deterministic total order: time, kind, victim."""
        return (self.at_s, self.kind,
                self.node if self.node is not None else -1,
                self.link or (-1, -1))


@dataclass(frozen=True)
class StreamWorld:
    """A stream lowered onto the fault machinery's vocabulary.

    ``topology`` is the union base (the gateway's component of every
    node/link that ever exists); ``dead_nodes``/``dead_edges`` describe
    what is *missing at t=0* relative to that base; ``plan`` replays the
    remaining deltas as fault events.  ``dropped_nodes`` lists union
    nodes outside the gateway component -- they never matter to the
    scheduled mesh and are excised from the plan too.
    """

    topology: MeshTopology
    dead_nodes: frozenset[int]
    dead_edges: frozenset[tuple[int, int]]
    plan: FaultPlan
    dropped_nodes: frozenset[int] = field(default_factory=frozenset)


class TopologyStream:
    """Sampled motion + radio range -> snapshots and deltas.

    Parameters
    ----------
    motion:
        Any motion-interface object (:mod:`repro.mobility.models` model
        or :class:`~repro.mobility.trace.MobilityTrace`).
    radio:
        A :class:`RadioRangeModel`, a bare range in metres (default
        hysteresis applies), or an object with a ``radio_range_model()``
        method -- e.g. an :class:`~repro.phy.models.SinrModel`, whose
        link budget then drives connectivity, so the stream and the
        SINR conflict backend agree on the communication range.
    dt:
        Sampling period, seconds.  Also the delta timestamp grain.
    horizon_s:
        Stream end time; defaults to the motion's own horizon.
    """

    def __init__(self, motion, radio: Union[RadioRangeModel, float],
                 dt: float = 1.0,
                 horizon_s: Optional[float] = None) -> None:
        if dt <= 0:
            raise ConfigurationError("dt must be positive")
        if not isinstance(radio, RadioRangeModel):
            if hasattr(radio, "radio_range_model"):
                radio = radio.radio_range_model()
            else:
                radio = RadioRangeModel(float(radio))
        self.motion = motion
        self.radio = radio
        self.dt = float(dt)
        self.horizon_s = float(motion.horizon_s if horizon_s is None
                               else horizon_s)
        if self.horizon_s < 0:
            raise ConfigurationError("horizon_s must be non-negative")
        self._snapshots: Optional[list[tuple[float, frozenset[int],
                                    frozenset[tuple[int, int]]]]] = None
        self._first_seen: dict[int, tuple[float, float]] = {}

    def sample_times(self) -> list[float]:
        """The sampling grid ``0, dt, 2*dt, ...`` up to the horizon."""
        steps = int(self.horizon_s / self.dt + 1e-9)
        return [round(k * self.dt, 9) for k in range(steps + 1)]

    def snapshots(self) -> list[tuple[float, frozenset[int],
                                      frozenset[tuple[int, int]]]]:
        """``(t, present_nodes, present_edges)`` per sample time.

        Computed once with debounced per-edge state and cached; every
        other accessor derives from this list.
        """
        if self._snapshots is not None:
            return self._snapshots
        nodes = tuple(self.motion.nodes)
        up: set[tuple[int, int]] = set()
        result = []
        for step, t in enumerate(self.sample_times()):
            positions = {}
            for node in nodes:
                xy = self.motion.position(node, t)
                if xy is not None:
                    positions[node] = xy
                    self._first_seen.setdefault(node, xy)
            present = sorted(positions)
            edges = set()
            for i, u in enumerate(present):
                for v in present[i + 1:]:
                    (xu, yu), (xv, yv) = positions[u], positions[v]
                    d = math.hypot(xu - xv, yu - yv)
                    if step == 0:
                        alive = self.radio.initial(d)
                    else:
                        alive = self.radio.next_state((u, v) in up, d)
                    if alive:
                        edges.add((u, v))
            up = edges
            result.append((t, frozenset(present), frozenset(edges)))
        self._snapshots = result
        return result

    def deltas(self) -> list[TopologyDelta]:
        """The full diff between consecutive snapshots, time-sorted.

        The t=0 snapshot is the starting state, not a delta: the first
        deltas carry the second sample's timestamp.
        """
        out: list[TopologyDelta] = []
        snaps = self.snapshots()
        for (t0, nodes0, edges0), (t1, nodes1, edges1) in zip(snaps,
                                                              snaps[1:]):
            for node in nodes1 - nodes0:
                out.append(TopologyDelta(t1, "node_join", node=node))
            for node in nodes0 - nodes1:
                out.append(TopologyDelta(t1, "node_leave", node=node))
            for link in edges1 - edges0:
                out.append(TopologyDelta(t1, "link_up", link=link))
            for link in edges0 - edges1:
                out.append(TopologyDelta(t1, "link_down", link=link))
        out.sort(key=TopologyDelta.sort_key)
        return out

    def union(self) -> tuple[frozenset[int], frozenset[tuple[int, int]]]:
        """Every node and edge present in *any* snapshot."""
        nodes: set[int] = set()
        edges: set[tuple[int, int]] = set()
        for _, snap_nodes, snap_edges in self.snapshots():
            nodes |= snap_nodes
            edges |= snap_edges
        return frozenset(nodes), frozenset(edges)

    def union_topology(self, gateway: int = 0
                       ) -> tuple[MeshTopology, frozenset[int]]:
        """The gateway's component of the union graph, plus dropped nodes.

        Positions record each node's first-seen sample (for plotting and
        re-seeding).  Nodes that never connect to the gateway's
        component -- even transitively, even briefly -- are dropped: no
        schedule can ever carry their traffic.
        """
        nodes, edges = self.union()
        if gateway not in nodes:
            raise ConfigurationError(
                f"gateway {gateway} never appears in the stream")
        adjacency: dict[int, list[int]] = {n: [] for n in nodes}
        for u, v in edges:
            adjacency[u].append(v)
            adjacency[v].append(u)
        component = {gateway}
        queue = deque([gateway])
        while queue:
            node = queue.popleft()
            for peer in adjacency[node]:
                if peer not in component:
                    component.add(peer)
                    queue.append(peer)
        kept_edges = sorted(e for e in edges if e[0] in component)
        if not kept_edges and len(component) > 1:  # pragma: no cover
            raise ConfigurationError("union component has no edges")
        if len(component) == 1:
            raise ConfigurationError(
                f"gateway {gateway} never hears another node; "
                "no mesh to schedule")
        positions = {n: self._first_seen[n] for n in sorted(component)}
        topology = from_edges(kept_edges, name="mobility-union",
                              positions=positions)
        return topology, frozenset(nodes - component)

    def fault_plan(self, gateway: int = 0) -> StreamWorld:
        """Lower the stream onto the fault machinery (see module docs).

        The gateway anchors repair, so it must be present in *every*
        snapshot -- a mobile gateway that leaves the field mid-run is a
        configuration error, not a fault to survive.
        """
        for t, nodes, _ in self.snapshots():
            if gateway not in nodes:
                raise ConfigurationError(
                    f"gateway {gateway} is absent from the stream at "
                    f"t={t}; the repair anchor must always be present")
        topology, dropped = self.union_topology(gateway)
        kept_nodes = frozenset(topology.graph.nodes)
        kept_edges = frozenset(tuple(sorted(e))
                               for e in topology.graph.edges)
        t0, nodes0, edges0 = self.snapshots()[0]
        dead_nodes = kept_nodes - nodes0
        dead_edges = kept_edges - edges0
        events = []
        for delta in self.deltas():
            if delta.node is not None:
                if delta.node not in kept_nodes:
                    continue
                events.append(FaultEvent(delta.at_s,
                                         _FAULT_KIND[delta.kind],
                                         node=delta.node))
            else:
                if delta.link not in kept_edges:
                    continue
                events.append(FaultEvent(delta.at_s,
                                         _FAULT_KIND[delta.kind],
                                         link=delta.link))
        return StreamWorld(topology=topology,
                           dead_nodes=frozenset(dead_nodes),
                           dead_edges=frozenset(dead_edges),
                           plan=FaultPlan.scripted(events, topology),
                           dropped_nodes=dropped)


def gateway_selection(nodes: Iterable[int],
                      edges: Iterable[tuple[int, int]],
                      gateways: Iterable[int]) -> dict[int, Optional[int]]:
    """Nearest-gateway assignment by hop count over the given edge set.

    Every node maps to the gateway with the smallest hop distance
    (smallest gateway id breaks ties), or ``None`` when no gateway is
    reachable.  E20 tracks how often this assignment *changes* per node
    as the mesh morphs -- the gateway re-selection rate, a proxy for the
    route-stability cost of mobility.
    """
    node_set = set(nodes)
    adjacency: dict[int, list[int]] = {n: [] for n in node_set}
    for u, v in edges:
        if u in node_set and v in node_set:
            adjacency[u].append(v)
            adjacency[v].append(u)
    best: dict[int, tuple[int, int]] = {}
    for gateway in sorted(set(gateways) & node_set):
        dist = {gateway: 0}
        queue = deque([gateway])
        while queue:
            node = queue.popleft()
            for peer in adjacency[node]:
                if peer not in dist:
                    dist[peer] = dist[node] + 1
                    queue.append(peer)
        for node, hops in dist.items():
            candidate = (hops, gateway)
            if node not in best or candidate < best[node]:
                best[node] = candidate
    return {n: best[n][1] if n in best else None for n in sorted(node_set)}
