"""Time-varying topologies: motion, traces and topology streams (S36).

The paper schedules a *static* mesh; this subpackage makes the geometry
itself move.  Three layers, each usable alone:

- **Motion** (:mod:`repro.mobility.models`,
  :mod:`repro.mobility.trace`): deterministic seeded random-waypoint and
  constant-velocity models, plus :class:`MobilityTrace` replay of
  recorded ``(t, node, x, y)`` samples (CSV / JSON Lines).  All expose
  the same ``position(node, t)`` interface.
- **Streaming** (:mod:`repro.mobility.stream`): a
  :class:`TopologyStream` samples motion through a debounced
  :class:`RadioRangeModel` and emits timestamped
  :class:`TopologyDelta` events -- links forming/breaking, nodes
  joining/leaving -- then lowers them onto the existing fault
  vocabulary (:meth:`TopologyStream.fault_plan`), so the repair engine
  survives sustained churn with no mobility-specific code.
- **Driving** (:mod:`repro.mobility.run`): :func:`run_mobility` replays
  the lowered plan through a :class:`~repro.faults.FaultInjector` with
  batched :class:`~repro.core.repair.RepairEngine` retargets, checking
  S8 validity and delay guarantees after every batch.  Experiment E20
  sweeps node speed through this driver.

Quickstart::

    from repro.mobility import (RandomWaypointModel, TopologyStream,
                                run_mobility)

    motion = RandomWaypointModel(num_nodes=16, area=400.0,
                                 speed_mps=10.0, horizon_s=60.0, seed=7)
    stream = TopologyStream(motion, radio=170.0, dt=1.0)
    result = run_mobility(stream, flows)
    print(result.goodput_fraction, result.conflict_ok)
"""

from repro.mobility.models import ConstantVelocityModel, RandomWaypointModel
from repro.mobility.run import (
    MobilityRunResult,
    MobilityStepOutcome,
    run_mobility,
)
from repro.mobility.stream import (
    DELTA_KINDS,
    RadioRangeModel,
    StreamWorld,
    TopologyDelta,
    TopologyStream,
    gateway_selection,
)
from repro.mobility.trace import MobilityTrace

__all__ = [
    "DELTA_KINDS",
    "ConstantVelocityModel",
    "MobilityRunResult",
    "MobilityStepOutcome",
    "MobilityTrace",
    "RadioRangeModel",
    "RandomWaypointModel",
    "StreamWorld",
    "TopologyDelta",
    "TopologyStream",
    "gateway_selection",
    "run_mobility",
]
