"""repro.api -- the one-stop :class:`Scenario` facade.

The library's building blocks (topologies, flow sets, conflict graphs,
the minimum-slot search, the packet-level emulation) compose through six
imports and as many intermediate values.  :class:`Scenario` packages the
canonical composition -- the one every example and experiment starts
from -- behind a small fluent object::

    from repro import Scenario, Flow, chain_topology

    scenario = Scenario(
        topology=chain_topology(6),
        flows=[Flow("voip0", src=0, dst=5, rate_bps=80_000,
                    delay_budget_s=0.05)])
    result = scenario.route().schedule()
    print(result.slots, result.schedule)

Each step stays inspectable: ``scenario.demands``, ``scenario.conflicts``
and ``scenario.delay_constraints`` expose the intermediates the chain
used to make callers compute by hand, and :meth:`Scenario.simulate`
drives the full TDMA-over-WiFi emulation against the schedule the facade
just produced.  Nothing here adds behaviour -- every method delegates to
the same public functions the long-hand chain calls, so facade and
chain produce identical results.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from repro._deprecation import warn_once
from repro.core.engine import SolverEngine
from repro.core.minslots import MinSlotResult, minimum_slots
from repro.core.policy import SolverPolicy
from repro.errors import ConfigurationError
from repro.mesh16.frame import MeshFrameConfig, default_frame_config
from repro.net.flows import Flow, FlowSet
from repro.net.routing import route_all
from repro.net.topology import MeshTopology

FlowsLike = Union[FlowSet, Iterable[Flow]]


class Scenario:
    """One mesh + one flow set, with the canonical pipeline as methods.

    Parameters
    ----------
    topology:
        The mesh to schedule on.
    flows:
        A :class:`~repro.net.flows.FlowSet` or any iterable of
        :class:`~repro.net.flows.Flow`; routed or not (call
        :meth:`route` for the latter).
    frame:
        Frame geometry; defaults to
        :func:`~repro.mesh16.frame.default_frame_config`.
    gateway:
        Anchor node for tree orderings and the emulation's timebase.
    hops:
        Conflict distance of the protocol interference model
        (2 = the 802.16 mesh default).  Shorthand for
        ``interference=ProtocolModel(hops=...)``; mutually exclusive
        with ``interference=``.
    interference:
        The :class:`~repro.phy.models.InterferenceModel` backend the
        conflict graph is built with -- a
        :class:`~repro.phy.models.ProtocolModel` (the default, via
        ``hops=``) or an :class:`~repro.phy.models.SinrModel` for
        physical-model interference with adaptive MCS (needs node
        positions).  See ``docs/interference.md``.
    engine:
        Optional shared :class:`~repro.core.engine.SolverEngine`.  Each
        scenario gets its own engine by default, so repeated
        :meth:`schedule` calls reuse the cached conflict index and
        solved-problem table without leaking state between scenarios;
        pass one explicitly to share caches across scenarios.
    solver:
        The :class:`~repro.core.policy.SolverPolicy` (or mode string:
        ``"exact"``, ``"zoned"``, ``"greedy"``, ``"auto"``) governing
        how :meth:`schedule` solves.  Defaults to the engine's policy
        when ``engine=`` is given, else to the ``"auto"`` policy --
        exact at paper scale, zoned above the link threshold.  This
        replaces the old per-call ``schedule(search=, max_region=,
        time_limit_per_probe=)`` kwargs, which still work but warn once.
    mobility:
        Optional :class:`~repro.mobility.stream.TopologyStream`
        describing a *moving* mesh.  Mutually exclusive with
        ``topology`` -- the scenario's topology becomes the stream's
        union base (the gateway's component of every node and link that
        ever exists), and :meth:`simulate_mobility` carries the flows
        across the churn.
    """

    def __init__(self, topology: Optional[MeshTopology] = None,
                 flows: Optional[FlowsLike] = None,
                 frame: Optional[MeshFrameConfig] = None,
                 gateway: int = 0, hops: Optional[int] = None,
                 engine: Optional[SolverEngine] = None,
                 service_flows=None, mobility=None,
                 solver: Union[SolverPolicy, str, None] = None,
                 interference=None) -> None:
        from repro.phy.models import ProtocolModel, coerce_interference

        if (flows is None) == (service_flows is None):
            raise ConfigurationError(
                "pass exactly one of flows= or service_flows=")
        if hops is not None and interference is not None:
            raise ConfigurationError(
                "pass either hops= or interference=, not both")
        if isinstance(interference, int) and not isinstance(interference,
                                                            bool):
            warn_once(
                "Scenario.interference.int",
                "Scenario(interference=<int>) is deprecated; pass "
                "hops=<int> or interference=ProtocolModel(hops=<int>) "
                "instead")
        #: the interference-model backend conflict graphs come from
        self.interference = coerce_interference(
            interference, default_hops=2 if hops is None else hops)
        #: protocol-model conflict distance (None under a non-protocol
        #: backend such as SinrModel)
        self.hops = (self.interference.hops
                     if isinstance(self.interference, ProtocolModel)
                     else None)
        if mobility is not None:
            if topology is not None:
                raise ConfigurationError(
                    "pass either topology= or mobility=, not both: a "
                    "mobile scenario's topology is the stream's union "
                    "base")
            topology = mobility.union_topology(gateway)[0]
        elif topology is None:
            raise ConfigurationError(
                "a Scenario needs topology= or mobility=")
        #: the mobility stream, when constructed via ``mobility=``
        self.mobility = mobility
        if service_flows is not None:
            from repro.qos.model import ServiceFlowSet

            self.service_flows = (
                service_flows if isinstance(service_flows, ServiceFlowSet)
                else ServiceFlowSet(list(service_flows)))
            #: the plain-flow projection the scheduling pipeline runs on
            flows = self.service_flows.to_flow_set()
        else:
            #: class-aware flow set when constructed via ``service_flows=``
            self.service_flows = None
        self.topology = topology
        self.flows = (flows if isinstance(flows, FlowSet)
                      else FlowSet(list(flows)))
        self.frame = frame if frame is not None else default_frame_config()
        self.gateway = gateway
        #: solver engine owning this scenario's caches
        if engine is not None:
            self.engine = engine
            #: the policy :meth:`schedule` solves under
            self.solver = (engine.policy if solver is None
                           else SolverPolicy.coerce(solver))
        else:
            self.solver = SolverPolicy.coerce(solver)
            self.engine = SolverEngine(policy=self.solver)
        #: result of the last :meth:`schedule` call
        self.minslots: Optional[MinSlotResult] = None

    # -- pipeline steps -----------------------------------------------------

    def route(self) -> "Scenario":
        """Route every flow over shortest paths; returns ``self``."""
        if self.service_flows is not None:
            from repro.qos.model import route_service_flows

            self.service_flows = route_service_flows(self.topology,
                                                     self.service_flows)
            self.flows = self.service_flows.to_flow_set()
            return self
        self.flows = route_all(self.topology, self.flows)
        return self

    def schedule(self, search: Optional[str] = None,
                 enforce_delay: bool = True,
                 max_region: Optional[int] = None,
                 time_limit_per_probe: Optional[float] = None
                 ) -> MinSlotResult:
        """Run the minimum-slot search for the routed flows.

        *How* to solve -- exact, zoned, greedy or auto, plus the probe
        search and region/time knobs -- is the scenario's ``solver=``
        policy.  The pre-policy per-call ``search=`` / ``max_region=`` /
        ``time_limit_per_probe=`` arguments still apply as overrides but
        emit a once-per-process :class:`DeprecationWarning`; pass a
        :class:`~repro.core.policy.SolverPolicy` instead.

        Returns the :class:`~repro.core.minslots.MinSlotResult`; its
        ``.schedule`` / ``.order`` / ``.slots`` are the solution.  The
        result is also kept on ``self.minslots`` so :meth:`simulate`
        can pick it up.
        """
        if search is not None:
            warn_once(
                "Scenario.schedule.search",
                "Scenario.schedule(search=...) is deprecated; pass "
                "Scenario(solver=SolverPolicy(search=...)) instead")
        if max_region is not None:
            warn_once(
                "Scenario.schedule.max_region",
                "Scenario.schedule(max_region=...) is deprecated; pass "
                "Scenario(solver=SolverPolicy(max_region=...)) instead")
        if time_limit_per_probe is not None:
            warn_once(
                "Scenario.schedule.time_limit_per_probe",
                "Scenario.schedule(time_limit_per_probe=...) is "
                "deprecated; pass Scenario(solver=SolverPolicy("
                "time_limit_per_probe=...)) instead")
        policy = self.solver.with_overrides(search, max_region,
                                            time_limit_per_probe)
        self._require_routed("schedule")
        self.minslots = minimum_slots(
            self.conflicts, self.demands, self.frame.data_slots,
            delay_constraints=(self.delay_constraints
                               if enforce_delay else ()),
            engine=self.engine, policy=policy)
        return self.minslots

    def simulate(self, duration_s: float = 5.0, *,
                 rngs=None, seed: Optional[int] = None, **kwargs):
        """Run the TDMA-over-WiFi emulation against the last schedule.

        Requires a feasible :meth:`schedule` call first (or pass
        ``schedule=`` explicitly in ``kwargs``).  Randomness follows the
        standard ``rngs=``/``seed=`` pair; remaining keyword arguments
        go to :func:`repro.analysis.scenarios.run_tdma_scenario`
        (``drift_ppm``, ``sync_config``, ``arq``, ...).
        """
        from repro.analysis.scenarios import run_tdma_scenario

        self._require_routed("simulate")
        schedule = kwargs.pop("schedule", None)
        if schedule is None:
            if self.minslots is None or self.minslots.schedule is None:
                raise ConfigurationError(
                    "simulate() needs a schedule: call .schedule() first "
                    "(and check it was feasible), or pass schedule=")
            schedule = self.minslots.schedule
        return run_tdma_scenario(
            self.topology, self.flows, self.frame, schedule, duration_s,
            rngs=rngs, seed=seed, gateway=self.gateway, **kwargs)

    def simulate_qos(self, discipline: str = "strict",
                     num_frames: int = 200, **kwargs):
        """Grant-level service-class simulation over this scenario.

        Requires construction via ``service_flows=``.  Builds the
        saturating grant schedule (guaranteed reservations plus
        water-filled leftover, via
        :func:`repro.qos.planner.grant_schedule_for`) and plays
        ``num_frames`` frames under ``discipline``; returns the
        :class:`repro.qos.simulate.QosRunResult`.
        """
        from repro.qos.planner import grant_schedule_for
        from repro.qos.simulate import simulate_service_flows

        if self.service_flows is None:
            raise ConfigurationError(
                "simulate_qos() needs a scenario built with "
                "service_flows=")
        schedule, routed = grant_schedule_for(
            self.topology, self.service_flows, self.frame,
            interference=self.interference, engine=self.engine)
        self.service_flows = routed
        self.flows = routed.to_flow_set()
        return simulate_service_flows(routed, schedule, self.frame,
                                      discipline, num_frames=num_frames,
                                      **kwargs)

    def simulate_mobility(self, **kwargs):
        """Carry the flow set across the moving mesh described by
        ``mobility=``.

        Delegates to :func:`repro.mobility.run.run_mobility` with this
        scenario's frame, gateway, interference model and engine; remaining
        keyword arguments (``gateways``, ``packet_interval_s``, ...)
        pass through.  Flows need no prior :meth:`route` -- the repair
        engine routes and re-routes them as the mesh morphs.  Returns
        the :class:`repro.mobility.run.MobilityRunResult`.
        """
        if self.mobility is None:
            raise ConfigurationError(
                "simulate_mobility() needs a scenario built with "
                "mobility=")
        from repro.mobility.run import run_mobility

        return run_mobility(self.mobility, list(self.flows), self.frame,
                            gateway=self.gateway,
                            interference=self.interference,
                            engine=self.engine, **kwargs)

    # -- inspectable intermediates ------------------------------------------

    @property
    def demands(self) -> dict:
        """Per-link slot demands of the routed flows."""
        self._require_routed("demands")
        return self.flows.link_demands(self.frame.frame_duration_s,
                                       self.frame.data_slot_capacity_bits)

    @property
    def conflicts(self):
        """Conflict graph over the demanded links (engine-cached)."""
        return self.engine.conflict_index(
            self.topology, interference=self.interference,
            links=sorted(self.demands)).graph

    @property
    def delay_constraints(self) -> list:
        """Per-guaranteed-flow delay budgets, in data slots."""
        from repro.analysis.scenarios import delay_constraints_for

        self._require_routed("delay_constraints")
        return delay_constraints_for(self.flows, self.frame)

    # -- internals ----------------------------------------------------------

    def _require_routed(self, what: str) -> None:
        unrouted = [f.name for f in self.flows if not f.is_routed]
        if unrouted:
            raise ConfigurationError(
                f"{what} needs routed flows; call .route() first "
                f"(unrouted: {', '.join(unrouted)})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Scenario({self.topology.name}, {len(self.flows)} flows, "
                f"{self.frame.data_slots} data slots)")
