"""Named, independently seeded random streams.

Every source of randomness in a simulation (per-node backoff draws, per-flow
start jitter, topology generation, clock skews, ...) pulls from its own named
stream derived from a single root seed with :class:`numpy.random.SeedSequence`.
This gives two properties the experiment harness relies on:

1. **Reproducibility** -- the same root seed always yields the same run.
2. **Variance isolation** -- adding a new consumer of randomness does not
   shift the draws seen by existing consumers, so A/B comparisons between
   schedulers use identical workloads.
"""

from __future__ import annotations

import numpy as np


class RngRegistry:
    """Factory of named :class:`numpy.random.Generator` streams.

    >>> rngs = RngRegistry(seed=7)
    >>> a = rngs.stream("dcf/node3")
    >>> b = rngs.stream("voip/flow0")
    >>> a is rngs.stream("dcf/node3")
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this registry derives every stream from."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The stream's seed is derived from ``(root_seed, name)`` so two
        registries built from the same root seed agree stream-by-stream.
        """
        generator = self._streams.get(name)
        if generator is None:
            # SeedSequence accepts integer entropy; hash the name into a
            # stable integer (Python's hash() is salted per-process, so use
            # an explicit stable digest instead).
            name_entropy = int.from_bytes(name.encode("utf-8"), "big") % (2 ** 63)
            seq = np.random.SeedSequence(entropy=self._seed,
                                         spawn_key=(name_entropy,))
            generator = np.random.default_rng(seq)
            self._streams[name] = generator
        return generator

    def spawn(self, name: str) -> "RngRegistry":
        """Return a child registry with a seed derived from ``(seed, name)``.

        Useful for running replications: ``rngs.spawn(f"rep{i}")``.
        """
        name_entropy = int.from_bytes(name.encode("utf-8"), "big") % (2 ** 63)
        child_seed = np.random.SeedSequence(
            entropy=self._seed, spawn_key=(name_entropy,)
        ).generate_state(1)[0]
        return RngRegistry(seed=int(child_seed))


def resolve_rng(rng=None, seed=None, *,
                what: str = "this function") -> np.random.Generator:
    """Resolve the standard ``rng=``/``seed=`` kwarg pair to a generator.

    Every randomness-taking entry point accepts the same pair: pass an
    existing :class:`numpy.random.Generator` as ``rng`` for stream
    sharing, or an integer ``seed`` for a self-contained reproducible
    call.  Exactly one must be given; ``rng`` wins if both are (the
    explicit generator is the more deliberate choice).
    """
    from repro.errors import ConfigurationError

    if rng is not None:
        return rng
    if seed is None:
        raise ConfigurationError(f"{what} needs an rng or a seed")
    return np.random.default_rng(seed)


def resolve_rngs(rngs=None, seed=None, *,
                 what: str = "this function") -> "RngRegistry":
    """Like :func:`resolve_rng` but for :class:`RngRegistry` consumers."""
    from repro.errors import ConfigurationError

    if rngs is not None:
        return rngs
    if seed is None:
        raise ConfigurationError(f"{what} needs an rngs registry or a seed")
    return RngRegistry(seed=seed)
