"""Timer helpers built on the event kernel."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import ConfigurationError
from repro.sim.engine import Event, Simulator


class PeriodicTimer:
    """Fires a callback every ``period`` seconds until stopped.

    The timer self-reschedules from the scheduled fire time, not from the
    time the callback finished, so long-run phase does not drift even if the
    callback itself schedules other work.
    """

    def __init__(self, sim: Simulator, period: float,
                 callback: Callable[..., Any], *args: Any,
                 start_delay: Optional[float] = None) -> None:
        if period <= 0:
            raise ConfigurationError(f"timer period must be positive, got {period}")
        self._sim = sim
        self._period = period
        self._callback = callback
        self._args = args
        self._event: Optional[Event] = None
        self._running = False
        self._fired = 0
        first = period if start_delay is None else start_delay
        self._start(first)

    def _start(self, delay: float) -> None:
        self._running = True
        self._event = self._sim.schedule(delay, self._fire)

    def _fire(self) -> None:
        if not self._running:
            return
        self._fired += 1
        # Reschedule before running the callback so the callback may call
        # stop() and suppress future firings.
        self._event = self._sim.schedule(self._period, self._fire)
        self._callback(*self._args)

    @property
    def fired(self) -> int:
        """Number of times the callback has run."""
        return self._fired

    @property
    def running(self) -> bool:
        return self._running

    def stop(self) -> None:
        """Cancel the timer; pending firings are suppressed."""
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None
