"""Discrete-event simulation substrate (systems S1-S2 in DESIGN.md).

This subpackage provides the deterministic, seeded event kernel on which all
protocol simulation in :mod:`repro` runs:

- :class:`repro.sim.engine.Simulator` -- the event queue and virtual clock.
- :class:`repro.sim.clock.DriftingClock` -- per-node oscillators with skew,
  the root cause of the synchronization problem the paper's emulation layer
  has to solve.
- :class:`repro.sim.random.RngRegistry` -- named, independently seeded
  random streams so that adding a new source of randomness does not perturb
  existing ones.
- :class:`repro.sim.trace.Trace` -- structured event tracing.
"""

from repro.sim.clock import DriftingClock, PerfectClock
from repro.sim.engine import Event, Simulator
from repro.sim.process import PeriodicTimer
from repro.sim.random import RngRegistry, resolve_rng, resolve_rngs
from repro.sim.trace import Trace, TraceRecord

__all__ = [
    "DriftingClock",
    "Event",
    "PerfectClock",
    "PeriodicTimer",
    "RngRegistry",
    "Simulator",
    "Trace",
    "TraceRecord",
    "resolve_rng",
    "resolve_rngs",
]
