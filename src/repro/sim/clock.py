"""Per-node clocks with frequency skew and phase offset.

The WiMAX-over-WiFi emulation has to keep software TDMA slot boundaries
aligned across nodes whose oscillators drift relative to each other.  This
module models those oscillators.

A :class:`DriftingClock` maps *true* (simulator) time to *local* time as a
piecewise-affine function:

    ``local(t) = local_epoch + (1 + skew) * (t - true_epoch)``

where ``skew`` is the (dimensionless) frequency error, conventionally quoted
in parts per million.  The synchronization daemon (:mod:`repro.overlay.sync`)
steps the phase and, optionally, disciplines the rate; both operations
re-anchor the affine segment so the mapping stays continuous in true time
and monotone in both directions.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class DriftingClock:
    """A local oscillator with constant frequency skew and steppable phase.

    Parameters
    ----------
    skew:
        Dimensionless frequency error.  Positive skew means the local clock
        runs *fast* (local seconds accumulate faster than true seconds).
        Use :func:`repro.units.ppm` for conventional units.
    offset:
        Initial phase error: local time minus true time at ``epoch``.
    epoch:
        True time at which this clock is anchored (usually 0.0).
    """

    def __init__(self, skew: float = 0.0, offset: float = 0.0,
                 epoch: float = 0.0) -> None:
        if not -0.5 < skew < 0.5:
            raise ConfigurationError(
                f"skew {skew} is implausibly large; expected |skew| << 1 "
                "(did you forget repro.units.ppm()?)")
        self._rate = 1.0 + skew
        self._true_epoch = float(epoch)
        self._local_epoch = float(epoch) + float(offset)
        #: rate correction applied by clock discipline (1.0 = none)
        self._discipline = 1.0
        #: number of fault-injected phase jumps; see :meth:`glitch`
        self._glitches = 0

    @property
    def skew(self) -> float:
        """The oscillator's intrinsic frequency error (undisciplined)."""
        return self._rate - 1.0

    @property
    def effective_rate(self) -> float:
        """Local seconds per true second after discipline is applied."""
        return self._rate * self._discipline

    def local_time(self, true_time: float) -> float:
        """Local clock reading at true time ``true_time``."""
        return self._local_epoch + self.effective_rate * (true_time - self._true_epoch)

    def true_time(self, local_time: float) -> float:
        """Inverse mapping: the true time at which the clock reads ``local_time``.

        Only meaningful for local times on the current affine segment
        (i.e. at or after the most recent step/discipline operation).
        """
        return self._true_epoch + (local_time - self._local_epoch) / self.effective_rate

    def offset_at(self, true_time: float) -> float:
        """Phase error (local minus true) at ``true_time``."""
        return self.local_time(true_time) - true_time

    def step(self, true_time: float, correction: float) -> None:
        """Step the phase by ``correction`` local seconds at ``true_time``.

        A positive correction advances the local clock.  The affine segment
        is re-anchored at ``true_time`` so past readings are unaffected.
        """
        self._re_anchor(true_time)
        self._local_epoch += correction

    def glitch(self, true_time: float, jump: float) -> None:
        """Fault-injection hook: an uncommanded phase jump of ``jump`` local
        seconds at ``true_time``.

        Mechanically identical to :meth:`step` (continuity-preserving
        re-anchor, then shift the local epoch) but semantically a *fault*:
        it models oscillator upsets, counter wraps, or bad sync packets, and
        is counted separately (:attr:`glitches`) so experiments can report
        how many upsets the sync daemon had to recover from.
        """
        self._re_anchor(true_time)
        self._local_epoch += jump
        self._glitches += 1

    @property
    def glitches(self) -> int:
        """How many fault-injected phase jumps this clock has suffered."""
        return self._glitches

    def set_local(self, true_time: float, new_local: float) -> None:
        """Set the clock to read ``new_local`` at true time ``true_time``."""
        self._re_anchor(true_time)
        self._local_epoch = new_local

    def discipline_rate(self, true_time: float, rate_correction: float) -> None:
        """Apply a multiplicative rate correction (skew compensation).

        ``rate_correction`` is the factor the local rate should be multiplied
        by; a sync daemon that estimates the clock runs ``1 + e`` times too
        fast passes ``1 / (1 + e)``.
        """
        if rate_correction <= 0:
            raise ConfigurationError(
                f"rate correction must be positive, got {rate_correction}")
        self._re_anchor(true_time)
        self._discipline = rate_correction

    def _re_anchor(self, true_time: float) -> None:
        """Re-anchor the affine segment at ``true_time`` (continuity-preserving)."""
        self._local_epoch = self.local_time(true_time)
        self._true_epoch = true_time


class PerfectClock(DriftingClock):
    """A clock with no skew and no offset; local time equals true time."""

    def __init__(self) -> None:
        super().__init__(skew=0.0, offset=0.0, epoch=0.0)
