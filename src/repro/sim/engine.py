"""Discrete-event simulation kernel.

The kernel is intentionally minimal: a priority queue of timestamped
callbacks and a virtual clock.  Protocol entities (MACs, traffic sources,
synchronization daemons) are plain Python objects that schedule callbacks on
a shared :class:`Simulator`.

Determinism
-----------
Events with equal timestamps are executed in scheduling order (a
monotonically increasing sequence number breaks ties), so a simulation with
the same seed always produces the same trace.  This matters for the
reproducibility claims in EXPERIMENTS.md.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, Optional

from repro import obs
from repro.errors import SimulationError


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Simulator.schedule` and can be cancelled
    with :meth:`cancel`.  Cancellation is lazy: the event stays in the heap
    but is skipped when popped, which keeps cancellation O(1).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_owner",
                 "_popped")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., Any], args: tuple,
                 owner: Optional["Simulator"] = None) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._owner = owner
        self._popped = False

    def cancel(self) -> None:
        """Prevent this event from firing; safe to call more than once."""
        if not self.cancelled and not self._popped and self._owner is not None:
            self._owner._note_cancelled()
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"Event(t={self.time:.9f}, {name}, {state})"


class Simulator:
    """Event queue plus virtual clock.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "hello")
    >>> sim.run()
    >>> (sim.now, fired)
    (1.5, ['hello'])
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._now = 0.0
        self._seq = 0
        self._running = False
        self._executed = 0
        self._live = 0

    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._executed

    @property
    def pending(self) -> int:
        """Number of events still queued and able to fire.

        Cancellation is lazy (cancelled events stay in the heap until
        popped), but the live count is maintained eagerly, so this never
        over-reports by counting corpses.
        """
        return self._live

    def _note_cancelled(self) -> None:
        """First effective cancel of a still-queued event."""
        self._live -= 1

    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> Event:
        """Schedule *callback(*args)* to run ``delay`` seconds from now.

        ``delay`` must be non-negative and finite; a zero delay runs the
        callback after all events already scheduled for the current instant.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any],
                    *args: Any) -> Event:
        """Schedule *callback(*args)* at absolute simulated ``time``."""
        if not math.isfinite(time):
            raise SimulationError(f"event time must be finite, got {time}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time {self._now}")
        event = Event(time, self._seq, callback, args, owner=self)
        self._seq += 1
        heapq.heappush(self._queue, event)
        self._live += 1
        return event

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Execute events in timestamp order.

        Parameters
        ----------
        until:
            If given, stop once the next event would fire strictly after
            ``until`` and advance the clock to ``until``.  Events scheduled
            exactly at ``until`` are executed.
        max_events:
            Safety valve against runaway event loops; raises
            :class:`SimulationError` when exceeded.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        executed_this_run = 0
        # Per-event registry calls would dominate the dispatch loop, so the
        # run is accounted for once, after the loop, from local counters.
        started_at = self._now
        try:
            with obs.span("sim.engine.run"):
                while self._queue:
                    event = self._queue[0]
                    if until is not None and event.time > until:
                        break
                    heapq.heappop(self._queue)
                    event._popped = True
                    if event.cancelled:
                        continue
                    self._live -= 1
                    if max_events is not None and executed_this_run >= max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events}; "
                            "likely a runaway event loop")
                    self._now = event.time
                    event.callback(*event.args)
                    self._executed += 1
                    executed_this_run += 1
        finally:
            self._running = False
            obs.counter("sim.engine.runs").inc()
            obs.counter("sim.engine.events").inc(executed_this_run)
            obs.histogram("sim.engine.events_per_run").observe(
                executed_this_run)
            ended_at = self._now if until is None else max(self._now, until)
            obs.gauge("sim.engine.virtual_time_s").set(ended_at - started_at)
        if until is not None and until > self._now:
            self._now = until

    def step(self) -> bool:
        """Execute exactly one (non-cancelled) event.

        Returns ``True`` if an event ran, ``False`` if the queue was empty.
        Executed events feed the same ``sim.engine.events`` counter as
        :meth:`run`, so event accounting does not depend on how the
        simulation is driven; ``sim.engine.steps`` counts the step calls
        themselves.
        """
        obs.counter("sim.engine.steps").inc()
        while self._queue:
            event = heapq.heappop(self._queue)
            event._popped = True
            if event.cancelled:
                continue
            self._live -= 1
            self._now = event.time
            event.callback(*event.args)
            self._executed += 1
            obs.counter("sim.engine.events").inc()
            return True
        return False

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next pending event, or ``None`` if idle."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)._popped = True
        return self._queue[0].time if self._queue else None
