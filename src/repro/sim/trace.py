"""Structured event tracing.

Protocol entities emit :class:`TraceRecord` entries ("mac.tx", "sync.beacon",
"voip.rx", ...) into a shared :class:`Trace`.  Tests and the experiment
harness assert on traces rather than scraping logs; the trace can be capped
to avoid unbounded memory in long runs.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One traced event: a timestamp, a dotted category, and free-form fields."""

    time: float
    category: str
    fields: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]


class Trace:
    """Bounded in-memory trace with per-category counters.

    Counters are kept even for records evicted by the bound, so aggregate
    statistics (e.g. number of collisions) remain exact in long runs.
    """

    def __init__(self, capacity: Optional[int] = None,
                 enabled: bool = True) -> None:
        self._records: deque[TraceRecord] = deque(maxlen=capacity)
        self._counts: Counter[str] = Counter()
        self.enabled = enabled

    def emit(self, time: float, category: str, **fields: Any) -> None:
        """Record an event (no-op if tracing is disabled)."""
        if not self.enabled:
            return
        self._counts[category] += 1
        self._records.append(TraceRecord(time, category, fields))

    def count(self, category: str) -> int:
        """Total number of events emitted under ``category``."""
        return self._counts[category]

    def categories(self) -> list[str]:
        """All categories seen so far, sorted."""
        return sorted(self._counts)

    def records(self, category: Optional[str] = None) -> Iterator[TraceRecord]:
        """Iterate retained records, optionally filtered by exact category."""
        for record in self._records:
            if category is None or record.category == category:
                yield record

    def last(self, category: Optional[str] = None) -> Optional[TraceRecord]:
        """Most recent retained record (matching ``category`` if given)."""
        for record in reversed(self._records):
            if category is None or record.category == category:
                return record
        return None

    def times(self, category: str) -> list[float]:
        """Timestamps of retained records in ``category``."""
        return [r.time for r in self.records(category)]

    def extend_counts(self, other_counts: Iterable[tuple[str, int]]) -> None:
        """Merge externally accumulated counters (used when joining traces)."""
        for category, count in other_counts:
            self._counts[category] += count

    def __len__(self) -> int:
        return len(self._records)
