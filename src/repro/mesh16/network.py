"""Mesh control plane: who owns which control opportunity.

802.16 mesh nodes win periodic, collision-free access to the control
subframe through mesh election.  The emulation reproduces the *outcome* of
election -- a deterministic, conflict-free round-robin of control
opportunities -- rather than the election handshake itself: each frame has
``control_slots`` opportunities, and nodes take turns ordered by their
depth on the scheduling tree (gateway first), so a sync beacon injected by
the gateway can ripple one tier outward within a frame or two.

Conflict-freeness: an opportunity is exclusive network-wide (one
transmitter per control slot), which is stricter than 802.16 requires but
matches what a small emulated mesh does and keeps control collisions out of
the sync-error measurements (E8 isolates drift, not control contention).
"""

from __future__ import annotations

from typing import Optional

import networkx as nx

from repro.errors import ConfigurationError
from repro.mesh16.frame import MeshFrameConfig
from repro.net.routing import gateway_tree
from repro.net.topology import MeshTopology


class ControlPlane:
    """Deterministic control-subframe ownership and the scheduling tree."""

    def __init__(self, topology: MeshTopology, gateway: int,
                 frame_config: MeshFrameConfig) -> None:
        if frame_config.control_slots < 1:
            raise ConfigurationError(
                "control plane needs at least one control slot per frame")
        self.topology = topology
        self.gateway = gateway
        self.frame_config = frame_config
        self.tree: nx.DiGraph = gateway_tree(topology, gateway)
        # Depth-ordered node list: gateway, then tier 1, tier 2, ...
        depths = nx.single_source_shortest_path_length(
            topology.graph, gateway)
        self.roster: list[int] = sorted(
            topology.nodes, key=lambda n: (depths[n], n))
        self._position = {node: i for i, node in enumerate(self.roster)}
        self.depths = depths

    def owner(self, frame_index: int, control_slot: int) -> int:
        """The node owning control opportunity ``control_slot`` of a frame."""
        if not 0 <= control_slot < self.frame_config.control_slots:
            raise ConfigurationError(
                f"control slot {control_slot} out of range")
        opportunity = (frame_index * self.frame_config.control_slots
                       + control_slot)
        return self.roster[opportunity % len(self.roster)]

    def owns(self, node: int, frame_index: int, control_slot: int) -> bool:
        """Whether ``node`` may transmit in this control opportunity.

        The roster grants exactly one owner per opportunity; the
        election-based subclass (:class:`repro.mesh16.election.
        ElectionControlPlane`) may grant several spatially separated
        winners.
        """
        return self.owner(frame_index, control_slot) == node

    def next_opportunity(self, node: int,
                         from_frame: int) -> tuple[int, int]:
        """First (frame, control slot) owned by ``node`` at/after a frame.

        The roster cycles with period ``ceil(N / control_slots)`` frames, so
        every node speaks at least once per cycle.
        """
        if node not in self._position:
            raise ConfigurationError(f"unknown node {node}")
        slots_per_frame = self.frame_config.control_slots
        position = self._position[node]
        start = from_frame * slots_per_frame
        # Smallest opportunity >= start congruent to position mod roster size.
        roster_size = len(self.roster)
        delta = (position - start) % roster_size
        opportunity = start + delta
        return opportunity // slots_per_frame, opportunity % slots_per_frame

    def parent(self, node: int) -> Optional[int]:
        """The node's parent on the scheduling tree (None for the gateway)."""
        if node == self.gateway:
            return None
        predecessors = list(self.tree.predecessors(node))
        return predecessors[0] if predecessors else None

    def depth(self, node: int) -> int:
        return self.depths[node]
