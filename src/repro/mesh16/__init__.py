"""802.16 (WiMAX) mesh-mode frame structure and control plane (system S6).

Also hosts the *distributed* scheduling mode of the standard
(:mod:`repro.mesh16.distributed`), the extension compared against the
centralized ILP in experiment E14.
"""

from repro.mesh16.distributed import DistributedOutcome, DistributedScheduler
from repro.mesh16.election import ElectionControlPlane, election_hash
from repro.mesh16.frame import MeshFrameConfig, default_frame_config
from repro.mesh16.messages import ScheduleAnnouncement, SyncBeacon
from repro.mesh16.network import ControlPlane

__all__ = [
    "ControlPlane",
    "DistributedOutcome",
    "DistributedScheduler",
    "ElectionControlPlane",
    "election_hash",
    "MeshFrameConfig",
    "ScheduleAnnouncement",
    "SyncBeacon",
    "default_frame_config",
]
