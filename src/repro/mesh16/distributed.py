"""Coordinated distributed scheduling (802.16 mesh DSCH handshake).

The centralized scheduler (:mod:`repro.core`) is what the paper line
optimizes, but 802.16 mesh also defines a *distributed* mode in which
neighbours negotiate slots pairwise with a three-way handshake, each node
knowing only what it overhears:

1. **Request** -- the transmitter of a link asks its receiver for ``d``
   slots, attaching its own availability;
2. **Grant** -- the receiver picks a slot range free in *both* views and
   broadcasts the grant; the receiver's neighbours overhear it and mark
   those slots unusable for transmission (they would collide at the
   receiver);
3. **Confirm** -- the transmitter broadcasts confirmation; its neighbours
   overhear and mark the slots unusable for reception (the transmitter's
   signal will interfere there).

The overhearing rules reproduce the protocol interference model exactly, so
a completed negotiation can never corrupt a previously committed one -- the
test suite checks every outcome against
:func:`repro.phy.interference.interference_graph`.

Faithfulness note: negotiation is simulated at the *control-opportunity*
level (one protocol action per node per opportunity, opportunities in the
mesh-election roster order, control messages reliable as in
:mod:`repro.mesh16.network`), not packet-by-packet.  What the abstraction
keeps is exactly what experiment E14 measures: how efficient and how fast a
local, no-backtracking negotiation is compared to the centralized ILP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.core.schedule import Schedule, SlotBlock
from repro.errors import ConfigurationError
from repro.net.topology import Link, MeshTopology


@dataclass
class _Negotiation:
    """One link's pending handshake state at its transmitter."""

    link: Link
    demand: int
    granted: Optional[SlotBlock] = None
    confirmed: bool = False
    #: how many times the receiver failed to find a common range
    rejections: int = 0


@dataclass
class DistributedOutcome:
    """Result of a :class:`DistributedScheduler` run."""

    schedule: Schedule
    #: links whose demand could not be (fully) granted
    unserved: dict[Link, int] = field(default_factory=dict)
    #: control opportunities consumed until convergence
    opportunities_used: int = 0
    #: handshake messages exchanged (requests + grants + confirms)
    messages: int = 0

    @property
    def fully_served(self) -> bool:
        return not self.unserved


class _NodeAgent:
    """Per-node protocol state: what this node believes about the frame."""

    def __init__(self, node: int, frame_slots: int) -> None:
        self.node = node
        #: slots where this node must not transmit
        self.no_tx = [False] * frame_slots
        #: slots where this node cannot successfully receive
        self.no_rx = [False] * frame_slots
        #: requests received, waiting for this node to grant
        self.pending_grants: list[_Negotiation] = []

    def mark(self, block: SlotBlock, tx: bool = False,
             rx: bool = False) -> None:
        for slot in block.slots():
            if tx:
                self.no_tx[slot] = True
            if rx:
                self.no_rx[slot] = True


class DistributedScheduler:
    """Round-based simulation of the distributed slot negotiation.

    Parameters
    ----------
    topology:
        The mesh; negotiation and overhearing follow its radio links.
    frame_slots:
        Data slots per frame.
    max_cycles:
        Give up on still-unserved demands after this many full roster
        cycles (a no-backtracking protocol can deadlock on tight frames).
    """

    def __init__(self, topology: MeshTopology, frame_slots: int,
                 max_cycles: int = 8) -> None:
        if frame_slots <= 0:
            raise ConfigurationError("frame_slots must be positive")
        if max_cycles < 1:
            raise ConfigurationError("need at least one cycle")
        self.topology = topology
        self.frame_slots = frame_slots
        self.max_cycles = max_cycles

    def run(self, demands: Mapping[Link, int]) -> DistributedOutcome:
        """Negotiate all link demands; returns the committed schedule."""
        for link, demand in demands.items():
            if not self.topology.has_link(link):
                raise ConfigurationError(f"{link} is not a topology link")
            if demand < 0:
                raise ConfigurationError(f"negative demand on {link}")

        agents = {node: _NodeAgent(node, self.frame_slots)
                  for node in self.topology.nodes}
        negotiations: dict[Link, _Negotiation] = {
            link: _Negotiation(link, demand)
            for link, demand in sorted(demands.items()) if demand > 0}
        schedule = Schedule(self.frame_slots)
        messages = 0
        opportunities = 0

        # Mesh-election outcome: deterministic node roster (see
        # mesh16.network); one protocol action per opportunity.
        roster = self.topology.nodes
        for ____ in range(self.max_cycles):
            progressed = False
            for node in roster:
                opportunities += 1
                agent = agents[node]

                # 1st priority: answer a pending request (Grant).
                if agent.pending_grants:
                    negotiation = agent.pending_grants.pop(0)
                    messages += 1
                    block = self._pick_range(agents, negotiation)
                    if block is None:
                        negotiation.rejections += 1
                    else:
                        negotiation.granted = block
                        # Both neighbourhood effects commit atomically at
                        # grant time.  Our roster serializes all control
                        # actions network-wide (the mesh-election holdoff
                        # in 802.16 plays the same role), so no competing
                        # negotiation can slip between grant and confirm;
                        # the confirm below is then pure acknowledgement.
                        self._apply_grant(agents, negotiation.link, block)
                        self._apply_confirm(agents, negotiation.link, block)
                    progressed = True
                    continue

                # 2nd: confirm a grant this node received for its link.
                mine = [n for n in negotiations.values()
                        if n.link[0] == node and n.granted is not None
                        and not n.confirmed]
                if mine:
                    negotiation = mine[0]
                    negotiation.confirmed = True
                    messages += 1
                    schedule.assign(negotiation.link, negotiation.granted)
                    progressed = True
                    continue

                # 3rd: issue a new request for an unserved outgoing link.
                waiting = [n for n in negotiations.values()
                           if n.link[0] == node and n.granted is None
                           and not self._request_in_flight(agents, n)]
                if waiting:
                    negotiation = waiting[0]
                    messages += 1
                    agents[negotiation.link[1]].pending_grants.append(
                        negotiation)
                    progressed = True

            if all(n.confirmed for n in negotiations.values()):
                break
            if not progressed:
                break  # deadlock: every remaining ask was rejected

        unserved = {n.link: n.demand for n in negotiations.values()
                    if not n.confirmed}
        return DistributedOutcome(schedule=schedule, unserved=unserved,
                                  opportunities_used=opportunities,
                                  messages=messages)

    # -- protocol steps -------------------------------------------------------

    @staticmethod
    def _request_in_flight(agents: dict[int, _NodeAgent],
                           negotiation: _Negotiation) -> bool:
        return negotiation in agents[negotiation.link[1]].pending_grants

    def _pick_range(self, agents: dict[int, _NodeAgent],
                    negotiation: _Negotiation) -> Optional[SlotBlock]:
        """The receiver's grant decision: earliest range free in both views.

        A slot works iff the transmitter may transmit and the receiver may
        receive in it.
        """
        tx, rx = negotiation.link
        usable = [not agents[tx].no_tx[s] and not agents[rx].no_rx[s]
                  # a node cannot receive while it transmits elsewhere or
                  # transmit while it receives elsewhere:
                  and not agents[tx].no_rx[s] and not agents[rx].no_tx[s]
                  for s in range(self.frame_slots)]
        run_start, run_length = None, 0
        for slot, free in enumerate(usable):
            if free:
                if run_start is None:
                    run_start, run_length = slot, 1
                else:
                    run_length += 1
                if run_length == negotiation.demand:
                    return SlotBlock(run_start, negotiation.demand)
            else:
                run_start, run_length = None, 0
        return None

    def _apply_grant(self, agents: dict[int, _NodeAgent], link: Link,
                     block: SlotBlock) -> None:
        """The receiver broadcasts the grant; its neighbourhood reacts."""
        tx, rx = link
        agents[rx].mark(block, tx=True, rx=True)   # busy receiving
        for neighbor in self.topology.neighbors(rx):
            if neighbor != tx:
                # transmitting here would collide at the receiver
                agents[neighbor].mark(block, tx=True)

    def _apply_confirm(self, agents: dict[int, _NodeAgent], link: Link,
                       block: SlotBlock) -> None:
        """The transmitter broadcasts confirmation; its neighbourhood reacts."""
        tx, rx = link
        agents[tx].mark(block, tx=True, rx=True)   # busy transmitting
        for neighbor in self.topology.neighbors(tx):
            if neighbor != rx:
                # the transmitter's signal will interfere at this node
                agents[neighbor].mark(block, rx=True)
