"""Coordinated distributed scheduling (802.16 mesh DSCH handshake).

The centralized scheduler (:mod:`repro.core`) is what the paper line
optimizes, but 802.16 mesh also defines a *distributed* mode in which
neighbours negotiate slots pairwise with a three-way handshake, each node
knowing only what it overhears:

1. **Request** -- the transmitter of a link asks its receiver for ``d``
   slots, attaching its own availability;
2. **Grant** -- the receiver picks a slot range free in *both* views and
   broadcasts the grant; the receiver's neighbours overhear it and mark
   those slots unusable for transmission (they would collide at the
   receiver);
3. **Confirm** -- the transmitter broadcasts confirmation; its neighbours
   overhear and mark the slots unusable for reception (the transmitter's
   signal will interfere there).

The overhearing rules reproduce the protocol interference model exactly, so
a completed negotiation can never corrupt a previously committed one -- the
test suite checks every outcome against
:func:`repro.phy.interference.interference_graph`.

**Lossy control plane.**  On WiFi hardware handshake legs get lost like any
other frame.  With ``loss_rate > 0`` each leg's delivery *to its peer* is
an independent seeded Bernoulli draw, and the protocol survives through
timeout/retry with idempotent re-negotiation: a transmitter whose request
or grant went unanswered re-requests after ``timeout_opportunities`` (up
to ``retry_limit`` timeout-retries), a receiver re-granting an
already-granted link always re-issues the *same* block, and duplicate
grants are answered with duplicate confirms -- so repeats never move a
reservation.  Slot marks still commit atomically at grant time: the grant
broadcast is the binding step (802.16's no-backtracking rule), and what a
lost leg delays is only the handshake bookkeeping, never slot safety.
Neighbourhood *overhearing* of a delivered broadcast is kept reliable --
the protocol-model abstraction this module is built on; packet-level
control loss, including lost overhearing, is exercised end-to-end by the
overlay dissemination path in experiment E18.

Faithfulness note: negotiation is simulated at the *control-opportunity*
level (one protocol action per node per opportunity, opportunities in the
mesh-election roster order), not packet-by-packet.  What the abstraction
keeps is exactly what experiments E14 (efficiency/convergence vs the
centralized ILP) and E18 (control-frame loss) measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

import numpy as np

from repro import obs
from repro.core.schedule import Schedule, SlotBlock
from repro.errors import ConfigurationError
from repro.net.topology import Link, MeshTopology


@dataclass
class _Negotiation:
    """One link's pending handshake state at its transmitter."""

    link: Link
    demand: int
    granted: Optional[SlotBlock] = None
    confirmed: bool = False
    #: how many times the receiver failed to find a common range
    rejections: int = 0
    #: opportunity index before which the transmitter must not re-request
    retry_at: Optional[int] = None
    #: opportunity index of the receiver's last (re-)grant
    grant_sent_at: Optional[int] = None
    #: the receiver heard the confirm (handshake fully closed)
    confirm_heard: bool = False
    #: a duplicate grant arrived after confirming; re-confirm is owed
    reconfirm_owed: bool = False
    #: timeout-triggered retries spent (rejection re-requests are free)
    timeout_retries: int = 0
    #: gave up after ``retry_limit`` timeout-retries
    abandoned: bool = False


@dataclass
class DistributedOutcome:
    """Result of a :class:`DistributedScheduler` run."""

    schedule: Schedule
    #: links whose demand could not be (fully) granted
    unserved: dict[Link, int] = field(default_factory=dict)
    #: control opportunities consumed until convergence
    opportunities_used: int = 0
    #: handshake messages exchanged (requests + grants + confirms,
    #: including retries)
    messages: int = 0
    #: messages whose peer delivery was lost to channel error
    lost_messages: int = 0
    #: timeout-triggered re-sends (re-requests, re-grants, re-confirms)
    retries: int = 0

    @property
    def fully_served(self) -> bool:
        return not self.unserved


class _NodeAgent:
    """Per-node protocol state: what this node believes about the frame."""

    def __init__(self, node: int, frame_slots: int) -> None:
        self.node = node
        #: slots where this node must not transmit
        self.no_tx = [False] * frame_slots
        #: slots where this node cannot successfully receive
        self.no_rx = [False] * frame_slots
        #: requests received, waiting for this node to grant
        self.pending_grants: list[_Negotiation] = []
        #: blocks this node has granted, for idempotent re-grants
        self.granted_blocks: dict[Link, SlotBlock] = {}

    def mark(self, block: SlotBlock, tx: bool = False,
             rx: bool = False) -> None:
        for slot in block.slots():
            if tx:
                self.no_tx[slot] = True
            if rx:
                self.no_rx[slot] = True


class DistributedScheduler:
    """Round-based simulation of the distributed slot negotiation.

    Parameters
    ----------
    topology:
        The mesh; negotiation and overhearing follow its radio links.
    frame_slots:
        Data slots per frame.
    max_cycles:
        Give up on still-unserved demands after this many full roster
        cycles (a no-backtracking protocol can deadlock on tight frames).
    loss_rate:
        Per-leg probability that a handshake message misses its peer
        (seeded Bernoulli; 0.0 restores the reliable control plane).
    rng, seed:
        Loss randomness, standard ``rng=``/``seed=`` pair; required iff
        ``loss_rate > 0``.  A shared generator is consumed across
        :meth:`run` calls; pass ``seed`` for self-contained runs.
    timeout_opportunities:
        How many opportunities a sender waits for the counterpart action
        before re-sending.  Defaults to one full roster cycle.
    retry_limit:
        Timeout-retries per negotiation before the transmitter abandons
        it (rejection re-requests are not counted -- they carry fresh
        information and were always unbounded in this protocol).
    engine:
        Optional shared :class:`~repro.core.engine.SolverEngine`.  When
        set, every committed schedule is validated against the engine's
        cached *exact* interference index (the relation the overhearing
        handshake enforces -- tighter than the 2-hop protocol model), so
        repeated :meth:`run` calls on one topology reuse a single
        interference-graph build.  A violation raises
        :class:`~repro.errors.SchedulingError`: the negotiated views
        disagreeing with the radio model is a protocol-invariant breach,
        never a legitimate outcome.
    """

    def __init__(self, topology: MeshTopology, frame_slots: int,
                 max_cycles: int = 8, loss_rate: float = 0.0,
                 rng: Optional[np.random.Generator] = None,
                 seed: Optional[int] = None,
                 timeout_opportunities: Optional[int] = None,
                 retry_limit: int = 6,
                 engine=None) -> None:
        if frame_slots <= 0:
            raise ConfigurationError("frame_slots must be positive")
        if max_cycles < 1:
            raise ConfigurationError("need at least one cycle")
        if not 0.0 <= loss_rate < 1.0:
            raise ConfigurationError(
                f"loss rate must be in [0, 1), got {loss_rate}")
        if timeout_opportunities is not None and timeout_opportunities < 1:
            raise ConfigurationError("timeout must be >= 1 opportunity")
        if retry_limit < 0:
            raise ConfigurationError("retry limit must be non-negative")
        self.topology = topology
        self.frame_slots = frame_slots
        self.max_cycles = max_cycles
        self.loss_rate = loss_rate
        self.timeout_opportunities = timeout_opportunities
        self.retry_limit = retry_limit
        self.engine = engine
        if loss_rate > 0.0:
            from repro.sim.random import resolve_rng
            self._rng = resolve_rng(rng, seed, what="DistributedScheduler")
        else:
            self._rng = None

    def _lost(self) -> bool:
        """One Bernoulli delivery draw for the current leg's peer."""
        return (self._rng is not None
                and float(self._rng.random()) < self.loss_rate)

    def run(self, demands: Mapping[Link, int]) -> DistributedOutcome:
        """Negotiate all link demands; returns the committed schedule."""
        for link, demand in demands.items():
            if not self.topology.has_link(link):
                raise ConfigurationError(f"{link} is not a topology link")
            if demand < 0:
                raise ConfigurationError(f"negative demand on {link}")

        agents = {node: _NodeAgent(node, self.frame_slots)
                  for node in self.topology.nodes}
        negotiations: dict[Link, _Negotiation] = {
            link: _Negotiation(link, demand)
            for link, demand in sorted(demands.items()) if demand > 0}
        schedule = Schedule(self.frame_slots)
        messages = 0
        lost_messages = 0
        retries = 0
        opportunities = 0

        # Mesh-election outcome: deterministic node roster (see
        # mesh16.network); one protocol action per opportunity.
        roster = self.topology.nodes
        timeout = (self.timeout_opportunities
                   if self.timeout_opportunities is not None
                   else len(roster))
        for ____ in range(self.max_cycles):
            progressed = False
            for node in roster:
                opportunities += 1
                agent = agents[node]

                # 1st priority: answer a pending request (Grant).
                if agent.pending_grants:
                    negotiation = agent.pending_grants.pop(0)
                    messages += 1
                    block = agent.granted_blocks.get(negotiation.link)
                    if block is not None:
                        # Idempotent re-grant: a retried request for a link
                        # this node already granted gets the same block --
                        # no new marks, nothing moves.
                        retries += 1
                        obs.counter("mesh16.dsch.regrants").inc()
                    else:
                        block = self._pick_range(agents, negotiation)
                    if block is None:
                        negotiation.rejections += 1
                        # A rejection is an answer: the transmitter may
                        # re-request immediately, as it always could.
                        negotiation.retry_at = None
                    else:
                        negotiation.grant_sent_at = opportunities
                        if negotiation.link not in agent.granted_blocks:
                            agent.granted_blocks[negotiation.link] = block
                            # Both neighbourhood effects commit atomically
                            # at grant time.  Our roster serializes all
                            # control actions network-wide (the
                            # mesh-election holdoff in 802.16 plays the
                            # same role), so no competing negotiation can
                            # slip between grant and confirm; the confirm
                            # below is then pure acknowledgement.
                            self._apply_grant(agents, negotiation.link,
                                              block)
                            self._apply_confirm(agents, negotiation.link,
                                                block)
                        if self._lost():
                            lost_messages += 1
                            obs.counter("mesh16.dsch.lost_messages").inc()
                        else:
                            already = negotiation.granted is not None
                            negotiation.granted = block
                            if negotiation.confirmed and already:
                                negotiation.reconfirm_owed = True
                    progressed = True
                    continue

                # 2nd: re-grant a granted-but-unconfirmed link whose
                # confirm never arrived (lost grant or lost confirm).  Only
                # with loss enabled -- the receiver cannot distinguish a
                # lost confirm from a merely busy transmitter, so on a
                # reliable control plane this path must never fire.
                stale = [] if self._rng is None else [
                    n for n in negotiations.values()
                    if n.link[1] == node and not n.confirm_heard
                    and n.link in agent.granted_blocks
                    and not n.abandoned
                    and opportunities - n.grant_sent_at >= timeout]
                if stale:
                    negotiation = stale[0]
                    messages += 1
                    retries += 1
                    obs.counter("mesh16.dsch.regrants").inc()
                    negotiation.grant_sent_at = opportunities
                    if self._lost():
                        lost_messages += 1
                        obs.counter("mesh16.dsch.lost_messages").inc()
                    else:
                        already = negotiation.granted is not None
                        negotiation.granted = agent.granted_blocks[
                            negotiation.link]
                        if negotiation.confirmed and already:
                            negotiation.reconfirm_owed = True
                    progressed = True
                    continue

                # 3rd: confirm a grant this node received for its link
                # (or re-confirm in answer to a duplicate grant).
                mine = [n for n in negotiations.values()
                        if n.link[0] == node and n.granted is not None
                        and (not n.confirmed or n.reconfirm_owed)]
                if mine:
                    negotiation = mine[0]
                    messages += 1
                    if negotiation.confirmed:
                        retries += 1
                        obs.counter("mesh16.dsch.reconfirms").inc()
                    else:
                        negotiation.confirmed = True
                        schedule.assign(negotiation.link,
                                        negotiation.granted)
                    negotiation.reconfirm_owed = False
                    if self._lost():
                        lost_messages += 1
                        obs.counter("mesh16.dsch.lost_messages").inc()
                    else:
                        negotiation.confirm_heard = True
                    progressed = True
                    continue

                # 4th: issue a new request for an unserved outgoing link.
                waiting = [n for n in negotiations.values()
                           if n.link[0] == node and n.granted is None
                           and not n.abandoned
                           and (n.retry_at is None
                                or opportunities >= n.retry_at)
                           and not self._request_in_flight(agents, n)]
                if waiting:
                    negotiation = waiting[0]
                    if negotiation.retry_at is not None:
                        # Timeout expired with no answer: this is a retry.
                        if negotiation.timeout_retries >= self.retry_limit:
                            negotiation.abandoned = True
                            obs.counter("mesh16.dsch.abandoned").inc()
                            progressed = True
                            continue
                        negotiation.timeout_retries += 1
                        retries += 1
                        obs.counter("mesh16.dsch.rerequests").inc()
                    messages += 1
                    if self._rng is not None:
                        negotiation.retry_at = opportunities + timeout
                    if self._lost():
                        lost_messages += 1
                        obs.counter("mesh16.dsch.lost_messages").inc()
                    else:
                        agents[negotiation.link[1]].pending_grants.append(
                            negotiation)
                    progressed = True

            if all(n.confirmed and n.confirm_heard
                   for n in negotiations.values()):
                break
            if not progressed and (self._rng is None or not
                                   self._timers_pending(negotiations,
                                                        opportunities,
                                                        timeout)):
                break  # deadlock: every remaining ask was rejected

        unserved = {n.link: n.demand for n in negotiations.values()
                    if not n.confirmed}
        if self.engine is not None:
            interference = self.engine.interference_index(self.topology)
            clashes = schedule.violations(interference.graph)
            obs.counter("mesh16.dsch.validated").inc()
            if clashes:  # pragma: no cover - protocol invariant breach
                from repro.errors import SchedulingError

                raise SchedulingError(
                    f"distributed schedule violates the interference "
                    f"relation on {clashes[:3]}")
        return DistributedOutcome(schedule=schedule, unserved=unserved,
                                  opportunities_used=opportunities,
                                  messages=messages,
                                  lost_messages=lost_messages,
                                  retries=retries)

    # -- protocol steps -------------------------------------------------------

    @staticmethod
    def _request_in_flight(agents: dict[int, _NodeAgent],
                           negotiation: _Negotiation) -> bool:
        return negotiation in agents[negotiation.link[1]].pending_grants

    @staticmethod
    def _timers_pending(negotiations: dict[Link, _Negotiation],
                        opportunities: int, timeout: int) -> bool:
        """Is anyone silently waiting out a retry timeout?

        A cycle with no protocol action is a deadlock only when nothing is
        pending: a lost leg leaves its sender idle until the timeout
        expires, which must not be mistaken for convergence failure.
        """
        for n in negotiations.values():
            if n.abandoned or (n.confirmed and n.confirm_heard):
                continue
            if (n.granted is None and n.retry_at is not None
                    and opportunities < n.retry_at):
                return True
            if (n.grant_sent_at is not None and not n.confirm_heard
                    and opportunities - n.grant_sent_at < timeout):
                return True
        return False

    def _pick_range(self, agents: dict[int, _NodeAgent],
                    negotiation: _Negotiation) -> Optional[SlotBlock]:
        """The receiver's grant decision: earliest range free in both views.

        A slot works iff the transmitter may transmit and the receiver may
        receive in it.
        """
        tx, rx = negotiation.link
        usable = [not agents[tx].no_tx[s] and not agents[rx].no_rx[s]
                  # a node cannot receive while it transmits elsewhere or
                  # transmit while it receives elsewhere:
                  and not agents[tx].no_rx[s] and not agents[rx].no_tx[s]
                  for s in range(self.frame_slots)]
        run_start, run_length = None, 0
        for slot, free in enumerate(usable):
            if free:
                if run_start is None:
                    run_start, run_length = slot, 1
                else:
                    run_length += 1
                if run_length == negotiation.demand:
                    return SlotBlock(run_start, negotiation.demand)
            else:
                run_start, run_length = None, 0
        return None

    def _apply_grant(self, agents: dict[int, _NodeAgent], link: Link,
                     block: SlotBlock) -> None:
        """The receiver broadcasts the grant; its neighbourhood reacts."""
        tx, rx = link
        agents[rx].mark(block, tx=True, rx=True)   # busy receiving
        for neighbor in self.topology.neighbors(rx):
            if neighbor != tx:
                # transmitting here would collide at the receiver
                agents[neighbor].mark(block, tx=True)

    def _apply_confirm(self, agents: dict[int, _NodeAgent], link: Link,
                       block: SlotBlock) -> None:
        """The transmitter broadcasts confirmation; its neighbourhood reacts."""
        tx, rx = link
        agents[tx].mark(block, tx=True, rx=True)   # busy transmitting
        for neighbor in self.topology.neighbors(tx):
            if neighbor != rx:
                # the transmitter's signal will interfere at this node
                agents[neighbor].mark(block, rx=True)
