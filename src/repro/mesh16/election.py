"""Distributed mesh election for control-subframe access.

The roster in :mod:`repro.mesh16.network` models the *outcome* of 802.16
mesh election as a global round-robin.  This module implements the
election itself, in the standard's spirit:

- every node holds off for a fixed number of opportunities after each win
  (the standard's ``XmtHoldoffTime = 2^(XmtHoldoffExponent+4)``);
- at an opportunity it is eligible for, a node competes against every
  *eligible* node within two hops by evaluating a pseudo-random mixing
  hash of (node id, opportunity index); the largest hash wins;
- a node transmits iff it beats all eligible competitors in its own 2-hop
  neighbourhood, so far-apart winners share the opportunity -- control
  slots get the same spatial reuse as data slots.

Safety: two winners of one opportunity are always more than two hops
apart, so (by the containment theorem checked in
``tests/test_phy_interference.py``) their control transmissions cannot
collide at any receiver.  Every eligible node wins within a bounded number
of opportunities because hashes reshuffle per opportunity (fairness is
asserted statistically in the tests).

The mixing function is a deterministic 64-bit integer hash (splitmix64
finalizer) rather than the standard's exact smearing polynomial; what the
protocol needs from it -- determinism, symmetry of knowledge, per-
opportunity reshuffling -- is preserved.
"""

from __future__ import annotations

import networkx as nx

from repro.errors import ConfigurationError
from repro.mesh16.frame import MeshFrameConfig
from repro.mesh16.network import ControlPlane
from repro.net.topology import MeshTopology


def election_hash(node: int, opportunity: int) -> int:
    """Deterministic per-(node, opportunity) competition value.

    splitmix64's finalizer: full-period avalanche on a 64-bit lane, so
    rankings between nodes are effectively independent across
    opportunities.
    """
    x = ((node & 0xFFFFFFFF) << 32) ^ (opportunity & 0xFFFFFFFF)
    x = (x + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    z = x
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return z ^ (z >> 31)


class ElectionControlPlane(ControlPlane):
    """Control-subframe ownership decided by distributed election.

    Drop-in replacement for :class:`~repro.mesh16.network.ControlPlane`:
    the overlay only asks :meth:`owns`.  Winners are computed lazily and
    cached per opportunity; the computation is deterministic, so every
    node's local view agrees (as it would on air, where eligibility is
    known from neighbours' advertised next-transmit times).

    Parameters
    ----------
    holdoff_opportunities:
        Opportunities a node sits out after each win (the standard's
        ``2^(exp+4)``; 16 corresponds to exponent 0).
    """

    def __init__(self, topology: MeshTopology, gateway: int,
                 frame_config: MeshFrameConfig,
                 holdoff_opportunities: int = 16) -> None:
        super().__init__(topology, gateway, frame_config)
        if holdoff_opportunities < 1:
            raise ConfigurationError("holdoff must be at least 1")
        self.holdoff = holdoff_opportunities
        #: nodes within two hops (the competition neighbourhood), per node
        self._neighborhood: dict[int, frozenset[int]] = {}
        for node in topology.nodes:
            reach = nx.single_source_shortest_path_length(
                topology.graph, node, cutoff=2)
            self._neighborhood[node] = frozenset(reach) - {node}
        self._winners: list[frozenset[int]] = []
        self._next_eligible: dict[int, int] = {n: 0 for n in topology.nodes}

    # -- election ------------------------------------------------------------

    def _advance_to(self, opportunity: int) -> None:
        while len(self._winners) <= opportunity:
            index = len(self._winners)
            eligible = {node for node, at in self._next_eligible.items()
                        if at <= index}
            winners = set()
            for node in eligible:
                mine = election_hash(node, index)
                rivals = self._neighborhood[node] & eligible
                if all(mine > election_hash(rival, index)
                       for rival in rivals):
                    winners.add(node)
            for node in winners:
                self._next_eligible[node] = index + self.holdoff
            self._winners.append(frozenset(winners))

    def winners(self, opportunity: int) -> frozenset[int]:
        """All nodes transmitting in global opportunity ``opportunity``."""
        if opportunity < 0:
            raise ConfigurationError("opportunity must be >= 0")
        self._advance_to(opportunity)
        return self._winners[opportunity]

    def _opportunity_index(self, frame_index: int, control_slot: int) -> int:
        return (frame_index * self.frame_config.control_slots
                + control_slot)

    # -- ControlPlane interface --------------------------------------------------

    def owns(self, node: int, frame_index: int, control_slot: int) -> bool:
        return node in self.winners(
            self._opportunity_index(frame_index, control_slot))

    def owner(self, frame_index: int, control_slot: int) -> int:
        """Not meaningful under election (an opportunity may have several
        winners); kept for interface compatibility and returns the lowest
        winner or -1 for an idle opportunity."""
        winners = self.winners(
            self._opportunity_index(frame_index, control_slot))
        return min(winners) if winners else -1

    def next_opportunity(self, node: int,
                         from_frame: int) -> tuple[int, int]:
        """First (frame, slot) this node wins at or after ``from_frame``."""
        slots = self.frame_config.control_slots
        index = from_frame * slots
        # a node must win within ~holdoff * neighbourhood-size
        # opportunities; scan with a generous cap
        for candidate in range(index, index + 64 * self.holdoff):
            if node in self.winners(candidate):
                return candidate // slots, candidate % slots
        raise ConfigurationError(  # pragma: no cover - starvation guard
            f"node {node} won no opportunity in a long scan; "
            "election misconfigured")
