"""802.16 mesh frame geometry, emulated on WiFi slot timing.

The 802.16 mesh frame is split into a *control subframe* (network
configuration and scheduling messages: MSH-NCFG / MSH-DSCH) followed by a
*data subframe* of minislots.  The emulation reproduces this structure in
software on top of WiFi airtime: every slot carries a guard prefix that
absorbs residual clock error between neighbours, then one broadcast-mode
WiFi frame.

All offsets returned by this module are in *local clock* seconds relative
to the local start of a frame; the overlay MAC converts local deadlines to
simulator time through each node's :class:`~repro.sim.clock.DriftingClock`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dot11.params import DATA_HEADER_BITS
from repro.errors import ConfigurationError
from repro.phy.radio import DOT11B_11M, PhyParams
from repro.units import MS, US


@dataclass(frozen=True)
class MeshFrameConfig:
    """Geometry of the emulated 802.16 mesh frame.

    Parameters
    ----------
    frame_duration_s:
        Total frame length (802.16 allows 2.5-20 ms; default profile 10 ms).
    control_slots:
        Number of control subframe transmission opportunities per frame.
    control_slot_s:
        Duration of one control opportunity.
    data_slots:
        Number of data minislots per frame.
    guard_s:
        Guard prefix per slot (control and data), dimensioned by
        :mod:`repro.overlay.guard` from the sync error budget.
    phy:
        WiFi PHY the frame is emulated over.
    shim_overhead_bits:
        Per-fragment TDMA shim header (link id, frame index, slot,
        fragmentation fields).
    """

    frame_duration_s: float
    control_slots: int
    control_slot_s: float
    data_slots: int
    guard_s: float
    phy: PhyParams
    shim_overhead_bits: int = 64

    def __post_init__(self) -> None:
        if self.frame_duration_s <= 0:
            raise ConfigurationError("frame duration must be positive")
        if self.control_slots < 0 or self.data_slots <= 0:
            raise ConfigurationError("need >= 0 control and >= 1 data slots")
        if self.control_slot_s < 0 or self.guard_s < 0:
            raise ConfigurationError("durations must be non-negative")
        if self.control_subframe_s >= self.frame_duration_s:
            raise ConfigurationError(
                "control subframe consumes the whole frame")
        if self.guard_s >= self.data_slot_s:
            raise ConfigurationError(
                f"guard {self.guard_s}s leaves no room in a "
                f"{self.data_slot_s}s data slot")
        if self.data_slot_capacity_bits <= 0:
            raise ConfigurationError(
                "data slot too short for PHY overhead + headers; "
                "lengthen the frame or reduce slots/guard")

    # -- geometry -------------------------------------------------------------

    @property
    def control_subframe_s(self) -> float:
        return self.control_slots * self.control_slot_s

    @property
    def data_subframe_s(self) -> float:
        return self.frame_duration_s - self.control_subframe_s

    @property
    def data_slot_s(self) -> float:
        return self.data_subframe_s / self.data_slots

    @property
    def data_slot_capacity_bits(self) -> int:
        """Application payload bits one data slot can move one hop.

        The slot must fit: guard prefix, PLCP overhead, 802.11 MAC header
        and the TDMA shim -- the rest is payload.
        """
        on_air = self.data_slot_s - self.guard_s
        mac_bits = self.phy.bits_in(on_air)
        return mac_bits - DATA_HEADER_BITS - self.shim_overhead_bits

    @property
    def slot_efficiency(self) -> float:
        """Payload bits per slot over raw channel bits per slot (E4/E9)."""
        raw = self.data_slot_s * self.phy.data_rate_bps
        return self.data_slot_capacity_bits / raw

    def control_slot_offset(self, index: int) -> float:
        """Local start of control opportunity ``index`` within a frame."""
        if not 0 <= index < self.control_slots:
            raise ConfigurationError(
                f"control slot {index} out of range 0..{self.control_slots - 1}")
        return index * self.control_slot_s

    def data_slot_offset(self, index: int) -> float:
        """Local start of data minislot ``index`` within a frame."""
        if not 0 <= index < self.data_slots:
            raise ConfigurationError(
                f"data slot {index} out of range 0..{self.data_slots - 1}")
        return self.control_subframe_s + index * self.data_slot_s

    def frame_start_local(self, frame_index: int) -> float:
        """Local time of the start of frame number ``frame_index``."""
        if frame_index < 0:
            raise ConfigurationError("frame index must be >= 0")
        return frame_index * self.frame_duration_s

    def frame_index_at_local(self, local_time: float) -> int:
        """Frame number containing local time ``local_time``."""
        return max(0, int(local_time / self.frame_duration_s))


def default_frame_config(phy: PhyParams = DOT11B_11M,
                         frame_duration_s: float = 10 * MS,
                         data_slots: int = 16,
                         control_slots: int = 4,
                         guard_s: float = 60 * US) -> MeshFrameConfig:
    """The profile used throughout the experiments unless stated otherwise.

    10 ms frame over 802.11b/11 Mb/s: 4 control opportunities of 400 us
    followed by 16 data slots of 525 us each.  With a 60 us guard and the
    192 us 802.11b preamble a data slot moves ~2900 payload bits -- two
    G.711 VoIP packets or a dozen G.729 packets per slot.
    """
    return MeshFrameConfig(
        frame_duration_s=frame_duration_s,
        control_slots=control_slots,
        control_slot_s=400 * US,
        data_slots=data_slots,
        guard_s=guard_s,
        phy=phy,
    )
