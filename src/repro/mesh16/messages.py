"""Control-plane message models (MSH-NCFG / MSH-DSCH analogues).

The emulation carries two control message families in the control subframe:

- :class:`SyncBeacon` -- the MSH-NCFG analogue: a timestamped beacon that
  floods the scheduling tree and disciplines every node's clock.
- :class:`ScheduleAnnouncement` -- the MSH-DSCH (centralized scheduling)
  analogue: the gateway's slot assignments, rebroadcast down the tree.

Message sizes follow 802.16's compact encodings, scaled to the fields we
actually carry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.schedule import SlotBlock
from repro.net.topology import Link
from repro.units import bytes_to_bits


@dataclass(frozen=True)
class SyncBeacon:
    """A timestamped synchronization beacon (MSH-NCFG analogue).

    Parameters
    ----------
    origin:
        Node that anchors the timebase (the gateway / mesh BS).
    sender:
        Node that put this copy on air.
    root_time_at_tx:
        The sender's estimate of the *origin's* clock at the instant this
        beacon's transmission started.  A receiver adds the known airtime
        and propagation delay to recover the origin clock "now".
    round_id:
        The origin's beacon sequence number; receivers only adopt estimates
        from the freshest round they have seen.
    hops:
        How many relays this estimate has passed through (error grows with
        each timestamping step).
    """

    origin: int
    sender: int
    root_time_at_tx: float
    round_id: int
    hops: int

    #: timestamp (8 B) + round (2 B) + origin/sender/hops (5 B) + MAC-mgmt
    #: framing (8 B)
    SIZE_BITS = bytes_to_bits(23)

    def relayed_by(self, sender: int, root_time_at_tx: float) -> "SyncBeacon":
        """The copy ``sender`` re-broadcasts one tier further out."""
        return SyncBeacon(origin=self.origin, sender=sender,
                          root_time_at_tx=root_time_at_tx,
                          round_id=self.round_id, hops=self.hops + 1)


@dataclass(frozen=True)
class ScheduleAnnouncement:
    """Centralized schedule distribution message (MSH-DSCH analogue).

    ``assignments`` is a tuple of (link, block) entries; a link may appear
    more than once (e.g. one block per traffic class), mirroring 802.16's
    per-reservation minislot ranges.

    The two trailing fields exist for the loss-tolerant dissemination mode
    (:class:`repro.overlay.distribution.ScheduleDistributor` with a
    :class:`repro.resilience.ResilienceConfig`): ``epoch`` distinguishes
    re-floods of the same version (receivers refresh their rebroadcast
    budget only for a strictly newer epoch), and ``acked`` piggybacks the
    sender's implicit-ack view -- the set of nodes it knows to hold this
    version -- so coverage gossips back to the gateway on the rebroadcasts
    themselves.  Legacy announcements leave both at their zero defaults
    and pay no extra bytes.
    """

    #: monotonically increasing schedule version
    version: int
    #: frame index at which the schedule takes effect
    activation_frame: int
    #: (directed link, slot block) reservations
    assignments: tuple[tuple[Link, SlotBlock], ...]
    #: re-flood generation within a version (resilient mode)
    epoch: int = 0
    #: node ids the sender knows to hold this version (resilient mode)
    acked: tuple[int, ...] = ()

    @classmethod
    def build(cls, version: int, activation_frame: int,
              assignments, epoch: int = 0,
              acked: tuple[int, ...] = ()) -> "ScheduleAnnouncement":
        """Normalize a mapping or an iterable of pairs into a message."""
        if isinstance(assignments, Mapping):
            pairs = tuple(sorted(assignments.items()))
        else:
            pairs = tuple(assignments)
        return cls(version=version, activation_frame=activation_frame,
                   assignments=pairs, epoch=epoch,
                   acked=tuple(sorted(acked)))

    def size_bits(self) -> int:
        """4 B header + 6 B per reservation (link id, start, length).

        Resilient-mode floods add 1 B for the epoch plus 1 B per
        piggybacked ack; a legacy announcement (epoch 0, no acks) keeps
        the original encoding.
        """
        extra = (1 + len(self.acked)) if (self.epoch or self.acked) else 0
        return bytes_to_bits(4 + 6 * len(self.assignments) + extra)
