"""repro -- Guaranteed QoS in mesh networks: WiMAX mesh emulated over WiFi.

A from-scratch reproduction of Djukic & Valaee, *"Towards Guaranteed QoS in
Mesh Networks: Emulating WiMAX Mesh over WiFi Hardware"* (ICDCS 2007) and
its companion scheduling papers (NET-COOP 2007, ToN 2009).

The library has two halves:

**Scheduling** (:mod:`repro.core`): conflict graphs over directed mesh
links, the delay-aware joint slot/order ILP, the linear search for the
minimum number of guaranteed slots, transmission-order -> schedule recovery
via Bellman-Ford, the wrap-free ordering on scheduling trees, and greedy
baselines.

**Emulation** (:mod:`repro.overlay` + substrates): a discrete-event
simulation of the 802.16 mesh frame run in software over raw-broadcast
802.11, with drifting per-node clocks, beacon synchronization, guard-time
dimensioning -- compared packet-by-packet against native 802.11 DCF.

**Dynamics** (:mod:`repro.faults` + :mod:`repro.core.repair`): seeded
fault injection (node crashes, link cuts, loss steps, clock glitches)
driven through first-class hooks, and an incremental schedule-repair
engine that reroutes around failures and patches the TDMA schedule
locally, falling back to a full re-solve only when it must.

Quickstart::

    from repro import Scenario, Flow, chain_topology

    scenario = Scenario(
        topology=chain_topology(6),
        flows=[Flow("voip0", src=0, dst=5, rate_bps=80_000,
                    delay_budget_s=0.1)])
    result = scenario.route().schedule()
    print(result.slots, result.schedule)

:class:`~repro.api.Scenario` wraps the canonical pipeline (route ->
demands -> conflict graph -> minimum-slot search -> emulation); every
intermediate stays reachable (``scenario.demands``,
``scenario.conflicts``) and the underlying functions remain public for
piecewise use.  See ``examples/`` for full scenarios, ``benchmarks/``
for the experiment suite (EXPERIMENTS.md maps each to the paper), and
``docs/observability.md`` for the :mod:`repro.obs` metrics/tracing
layer.
"""

from repro.api import Scenario
from repro.core import (
    AdmissionController,
    AdmissionDecision,
    ConflictIndex,
    RepairEngine,
    RepairOutcome,
    Schedule,
    SchedulingProblem,
    SlotBlock,
    SolverEngine,
    SolverPolicy,
    TransmissionOrder,
    ZonePartition,
    conflict_graph,
    greedy_minimum_slots,
    greedy_schedule,
    min_delay_tree_order,
    minimum_slots,
    partition_zones,
    path_delay_slots,
    path_wraps,
    schedule_from_order,
    solve_schedule_ilp,
    zoned_minimum_slots,
)
from repro.core.ilp import DelayConstraint
from repro.errors import (
    AdmissionError,
    ConfigurationError,
    InfeasibleScheduleError,
    ReproError,
    RoutingError,
    SchedulingError,
    SimulationError,
    SolverError,
)
from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.mesh16 import MeshFrameConfig, default_frame_config
from repro.mobility import (
    MobilityTrace,
    RadioRangeModel,
    RandomWaypointModel,
    TopologyStream,
    run_mobility,
)
from repro.net import (
    Flow,
    FlowSet,
    MeshTopology,
    chain_topology,
    gateway_tree,
    grid_topology,
    random_disk_topology,
    route_all,
    star_topology,
)
from repro.overlay import required_guard_s
from repro.phy import (
    InterferenceModel,
    McsTable,
    PathLossModel,
    ProtocolModel,
    SinrModel,
)
from repro.qos import (
    QosAdmissionController,
    QosRunResult,
    ServiceClass,
    ServiceFlow,
    ServiceFlowSet,
    TrafficContract,
    make_scheduler,
    simulate_service_flows,
)
from repro.resilience import HealthMonitor, ResilienceConfig
from repro.sim import DriftingClock, RngRegistry, Simulator
from repro.traffic import G711, G723, G729, FlowQoS, VoipCodec

__version__ = "1.0.0"

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionError",
    "ConfigurationError",
    "ConflictIndex",
    "DelayConstraint",
    "DriftingClock",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "Flow",
    "FlowQoS",
    "FlowSet",
    "G711",
    "G723",
    "G729",
    "HealthMonitor",
    "InfeasibleScheduleError",
    "InterferenceModel",
    "McsTable",
    "MeshFrameConfig",
    "MeshTopology",
    "MobilityTrace",
    "PathLossModel",
    "ProtocolModel",
    "QosAdmissionController",
    "RadioRangeModel",
    "RandomWaypointModel",
    "QosRunResult",
    "RepairEngine",
    "RepairOutcome",
    "ReproError",
    "ResilienceConfig",
    "RngRegistry",
    "RoutingError",
    "Scenario",
    "Schedule",
    "SchedulingError",
    "SchedulingProblem",
    "ServiceClass",
    "ServiceFlow",
    "ServiceFlowSet",
    "SimulationError",
    "SinrModel",
    "Simulator",
    "SlotBlock",
    "SolverEngine",
    "SolverError",
    "SolverPolicy",
    "TopologyStream",
    "TrafficContract",
    "TransmissionOrder",
    "VoipCodec",
    "ZonePartition",
    "chain_topology",
    "conflict_graph",
    "default_frame_config",
    "gateway_tree",
    "greedy_minimum_slots",
    "greedy_schedule",
    "grid_topology",
    "make_scheduler",
    "min_delay_tree_order",
    "minimum_slots",
    "partition_zones",
    "path_delay_slots",
    "path_wraps",
    "random_disk_topology",
    "required_guard_s",
    "route_all",
    "run_mobility",
    "schedule_from_order",
    "simulate_service_flows",
    "solve_schedule_ilp",
    "star_topology",
]
