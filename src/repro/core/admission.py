"""Incremental admission control for guaranteed-QoS flows.

A thin stateful layer over the minimum-slots search: flows arrive one at a
time; each candidate is tentatively routed and the full guaranteed set is
re-scheduled.  The flow is admitted iff the schedule still fits in the
guaranteed region and meets every admitted flow's delay budget -- admitting
a new call must never break an existing one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.conflict import conflict_graph
from repro.core.ilp import DelayConstraint
from repro.core.minslots import MinSlotResult, minimum_slots
from repro.core.schedule import Schedule
from repro.errors import ConfigurationError
from repro.net.flows import Flow, FlowSet
from repro.net.routing import shortest_path_route
from repro.net.topology import MeshTopology
from repro.obs.metrics import counter as obs_counter


@dataclass
class AdmissionDecision:
    """Outcome of an admission attempt."""

    admitted: bool
    flow: Flow
    reason: str
    #: Guaranteed-region size after the decision (admitted flows only).
    slots_used: int
    schedule: Optional[Schedule] = None


class AdmissionController:
    """Admits guaranteed flows while a feasible schedule exists.

    Parameters
    ----------
    topology:
        The mesh.
    frame_slots:
        Data slots per frame (fixed frame length).
    frame_duration_s:
        Frame duration in seconds; slot duration is
        ``frame_duration_s / frame_slots``.
    slot_capacity_bits:
        Application bits moved one hop per slot.
    conflict_hops:
        Interference model parameter (802.16 mesh default: 2).
    guaranteed_region_slots:
        Cap on the slots available to guaranteed traffic (the rest is
        reserved for best effort); default: the whole frame.
    """

    def __init__(self, topology: MeshTopology, frame_slots: int,
                 frame_duration_s: float, slot_capacity_bits: float,
                 conflict_hops: int = 2,
                 guaranteed_region_slots: Optional[int] = None,
                 search: str = "binary",
                 time_limit_per_probe_s: Optional[float] = 15.0) -> None:
        if frame_duration_s <= 0 or slot_capacity_bits <= 0:
            raise ConfigurationError(
                "frame duration and slot capacity must be positive")
        self.topology = topology
        self.frame_slots = frame_slots
        self.frame_duration_s = frame_duration_s
        self.slot_capacity_bits = slot_capacity_bits
        self.conflict_hops = conflict_hops
        self.region_cap = (frame_slots if guaranteed_region_slots is None
                           else guaranteed_region_slots)
        if not 0 < self.region_cap <= frame_slots:
            raise ConfigurationError(
                f"guaranteed region {self.region_cap} must be in 1..frame_slots")
        #: min-slot search mode; "binary" is valid (feasibility is monotone
        #: in the region size for a fixed frame) and probes far fewer
        #: infeasible instances -- the expensive ones -- than "linear"
        self.search = search
        self.time_limit_per_probe_s = time_limit_per_probe_s
        self.conflicts = conflict_graph(topology, hops=conflict_hops)
        self.admitted = FlowSet()
        self.schedule: Optional[Schedule] = None
        self.slots_used = 0

    @property
    def slot_duration_s(self) -> float:
        return self.frame_duration_s / self.frame_slots

    def _delay_constraints(self, flows: FlowSet) -> list[DelayConstraint]:
        constraints = []
        for flow in flows.guaranteed():
            budget_slots = int(flow.delay_budget_s / self.slot_duration_s)
            if budget_slots < 1:
                raise ConfigurationError(
                    f"flow {flow.name}: delay budget {flow.delay_budget_s}s "
                    "is below one slot")
            constraints.append(DelayConstraint(
                name=flow.name, route=flow.route, budget_slots=budget_slots))
        return constraints

    def _schedule_flows(self, flows: FlowSet) -> MinSlotResult:
        demands = flows.link_demands(self.frame_duration_s,
                                     self.slot_capacity_bits)
        return minimum_slots(
            self.conflicts, demands, self.frame_slots,
            delay_constraints=self._delay_constraints(flows),
            max_region=self.region_cap, search=self.search,
            time_limit_per_probe=self.time_limit_per_probe_s)

    def try_admit(self, flow: Flow) -> AdmissionDecision:
        """Attempt to admit ``flow``; commits state only on success."""
        if flow.name in self.admitted:
            raise ConfigurationError(f"flow {flow.name!r} already admitted")
        if not flow.is_routed:
            flow = flow.with_route(
                shortest_path_route(self.topology, flow.src, flow.dst))

        candidate = FlowSet(list(self.admitted) + [flow])
        result = self._schedule_flows(candidate)
        if not result.feasible:
            return AdmissionDecision(
                admitted=False, flow=flow,
                reason=(f"no feasible schedule within "
                        f"{self.region_cap} guaranteed slots"),
                slots_used=self.slots_used, schedule=self.schedule)

        self.admitted = candidate
        self.schedule = result.schedule
        self.slots_used = result.slots
        return AdmissionDecision(
            admitted=True, flow=flow, reason="admitted",
            slots_used=self.slots_used, schedule=self.schedule)

    def release(self, name: str) -> None:
        """Remove an admitted flow and re-schedule the remainder.

        Releasing a name that was never admitted is a caller bug:
        it raises :class:`~repro.errors.ConfigurationError` and bumps the
        ``core.admission.release_unknown`` counter so fleets running with
        error recovery still see the miscount in their metrics.
        """
        if name not in self.admitted:
            obs_counter("core.admission.release_unknown").inc()
            raise ConfigurationError(
                f"cannot release {name!r}: no such admitted flow")
        self.admitted.remove(name)
        if len(self.admitted) == 0:
            self.schedule = None
            self.slots_used = 0
            return
        result = self._schedule_flows(self.admitted)
        if not result.feasible:  # pragma: no cover - removing cannot hurt
            raise ConfigurationError(
                "internal error: schedule infeasible after release")
        self.schedule = result.schedule
        self.slots_used = result.slots

    def admitted_count(self) -> int:
        return len(self.admitted)
