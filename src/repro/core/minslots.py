"""Linear search for the minimum number of guaranteed-traffic slots.

The NET-COOP optimization: find the smallest number ``K`` of TDMA slots that
can carry all guaranteed-QoS flows with their bandwidth and delay
requirements, so that the remaining ``frame_slots - K`` slots are free for
best-effort traffic.  Each candidate ``K`` is checked by solving the
delay-aware feasibility ILP with the guaranteed region restricted to the
first ``K`` slots of the frame.

The paper performs a plain linear search upward from a lower bound.  With a
*fixed* frame length the feasibility of the region-restricted problem is
monotone in ``K`` (enlarging the region only relaxes bounds), so a binary
search is also valid; it is provided as an extension (``search="binary"``)
and ablated in experiment E10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Optional, Sequence

import networkx as nx

from repro import obs
from repro._deprecation import warn_once
from repro.core.conflict import max_conflict_clique_demand
from repro.core.ilp import DelayConstraint, ILPResult
from repro.core.ordering import TransmissionOrder
from repro.core.schedule import Schedule
from repro.errors import ConfigurationError
from repro.net.topology import Link

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.engine import SolverEngine


@dataclass
class MinSlotResult:
    """Outcome of :func:`minimum_slots`.

    The schedule and transmission order of the winning probe are exposed
    directly as :attr:`schedule` and :attr:`order`; the full
    :class:`~repro.core.ilp.ILPResult` (solver status, delays, sizes) is
    :attr:`ilp`.  The pre-redesign ``.result`` attribute still resolves to
    :attr:`ilp` but emits a :class:`DeprecationWarning` on first use.
    """

    #: Smallest feasible guaranteed region, or None if even the full frame
    #: cannot carry the demands.
    slots: Optional[int]
    #: The ILP result at the returned region (schedule, order, delays).
    ilp: Optional[ILPResult]
    #: Lower bound the search started from.
    lower_bound: int
    #: (candidate K, feasible?) pairs in the order they were probed.
    probes: list[tuple[int, bool]] = field(default_factory=list)
    #: Solver-arm diagnostics (zone count/sizes, measured optimality gap,
    #: greedy strategy, ...).  ``None`` on the exact arm, whose result is
    #: fully described by the fields above.
    meta: Optional[dict] = None

    @property
    def feasible(self) -> bool:
        return self.slots is not None

    @property
    def iterations(self) -> int:
        return len(self.probes)

    @property
    def schedule(self) -> Optional[Schedule]:
        """The winning probe's schedule (None when infeasible)."""
        return None if self.ilp is None else self.ilp.schedule

    @property
    def order(self) -> Optional[TransmissionOrder]:
        """The winning probe's transmission order (None when infeasible)."""
        return None if self.ilp is None else self.ilp.order

    @property
    def result(self) -> Optional[ILPResult]:
        """Deprecated alias of :attr:`ilp` (kept for pre-facade callers)."""
        warn_once(
            "MinSlotResult.result",
            "MinSlotResult.result is deprecated; use .schedule / .order "
            "for the solution or .ilp for the full ILPResult")
        return self.ilp


def demand_lower_bound(conflicts: nx.Graph, demands: Mapping[Link, int]) -> int:
    """A cheap valid lower bound on the guaranteed region size.

    The max of (a) the largest single-link demand and (b) the heaviest
    node-induced conflict clique (all links touching one node mutually
    conflict).
    """
    largest = max((d for d in demands.values() if d > 0), default=0)
    return max(largest, max_conflict_clique_demand(conflicts, demands))


def minimum_slots(conflicts: Optional[nx.Graph], demands: Mapping[Link, int],
                  frame_slots: int,
                  delay_constraints: Sequence[DelayConstraint] = (),
                  search: Optional[str] = None,
                  max_region: Optional[int] = None,
                  time_limit_per_probe: Optional[float] = None,
                  engine: Optional["SolverEngine"] = None,
                  warm_order: Optional[TransmissionOrder] = None,
                  policy: "SolverPolicy | str | None" = None,
                  topology=None, hops: Optional[int] = None,
                  interference=None) -> MinSlotResult:
    """Find the minimum guaranteed region ``K`` supporting the demands.

    Parameters
    ----------
    conflicts, demands, frame_slots, delay_constraints:
        As in :class:`~repro.core.ilp.SchedulingProblem`; ``frame_slots`` is
        the *fixed* frame length (wrap cost).  ``conflicts`` may be
        ``None`` when ``topology=`` is given -- the conflict graph over
        the demanded links is then built through the engine's
        interference seam (``hops=`` or ``interference=``, the same pair
        :meth:`~repro.core.engine.SolverEngine.conflict_index` takes).
    search:
        ``"linear"`` (the paper's search, upward from the lower bound) or
        ``"binary"`` (extension; exploits monotonicity in ``K``).
        ``None`` (the default) defers to the policy's ``search`` knob,
        which itself defaults to ``"linear"``.
    max_region:
        Largest region to consider (default: the whole frame).
    engine:
        The :class:`~repro.core.engine.SolverEngine` running the probes
        (default: the stateless module-level engine).  Probe verdicts,
        the probe log and the returned schedule are identical for any
        engine configuration; a warm engine merely skips ILP solves whose
        verdict a Bellman-Ford pass over the carried order already
        certifies.
    warm_order:
        Optional transmission order to seed the warm start with (e.g. a
        pre-fault schedule's order during repair); ignored by cold
        engines.
    policy:
        The :class:`~repro.core.policy.SolverPolicy` (or mode string)
        governing *how* to solve: the exact probe search, the zoned
        large-topology arm, the greedy arm, or ``"auto"``.  Default: the
        engine's own policy (itself defaulting to ``"auto"``, which is
        exact at paper scale).  The explicit ``search`` /
        ``max_region`` / ``time_limit_per_probe`` arguments override the
        matching policy knobs.
    """
    if engine is None:
        from repro.core.engine import default_engine

        engine = default_engine()
    if conflicts is None:
        if topology is None:
            raise ConfigurationError(
                "minimum_slots needs conflicts= (a prebuilt graph) or "
                "topology= (to build one through the interference seam)")
        conflicts = engine.conflict_index(
            topology, hops=hops, interference=interference,
            links=sorted(demands)).graph
    elif topology is not None or hops is not None or interference is not None:
        raise ConfigurationError(
            "pass either a prebuilt conflicts= graph or the "
            "topology=/hops=/interference= triple, not both")
    from repro.core.policy import SolverPolicy

    base_policy = (engine.policy if policy is None
                   else SolverPolicy.coerce(policy))
    eff = base_policy.with_overrides(search, max_region,
                                     time_limit_per_probe)
    ceiling = frame_slots if eff.max_region is None else eff.max_region
    if ceiling > frame_slots:
        raise ConfigurationError("max_region cannot exceed frame_slots")
    demanded = sum(1 for d in demands.values() if d > 0)
    mode = eff.resolve_mode(demanded)
    if mode == "exact":
        with obs.span("core.minslots.search", search=eff.search,
                      frame_slots=frame_slots):
            obs.counter("core.minslots.searches").inc()
            outcome = engine.run_search(
                conflicts, demands, frame_slots, delay_constraints,
                eff.search, ceiling, eff.time_limit_per_probe,
                warm_order=warm_order,
                node_limit_per_probe=eff.node_limit_per_probe)
    else:
        from repro.core.zones import (
            greedy_minimum_slots,
            zoned_minimum_slots,
        )

        arm = zoned_minimum_slots if mode == "zoned" else greedy_minimum_slots
        obs.counter("core.minslots.searches").inc()
        outcome = arm(conflicts, demands, frame_slots,
                      delay_constraints=delay_constraints, engine=engine,
                      policy=eff)
    obs.histogram("core.minslots.probes_per_search").observe(
        outcome.iterations)
    if not outcome.feasible:
        obs.counter("core.minslots.infeasible").inc()
    return outcome
