"""Guaranteed-QoS TDMA scheduling (systems S7-S16 in DESIGN.md).

This package implements the paper line's algorithmic contribution:

- conflict graphs over directed links (:mod:`repro.core.conflict`);
- the schedule data model with conflict-freeness validation
  (:mod:`repro.core.schedule`);
- a difference-constraint / Bellman-Ford solver used to recover concrete
  slot assignments from transmission *orders* (:mod:`repro.core.bellman_ford`
  and :mod:`repro.core.ordering`);
- the delay-aware joint ILP over slots and orders (:mod:`repro.core.ilp`);
- the NET-COOP linear search for the minimum number of data slots
  (:mod:`repro.core.minslots`);
- the polynomial min-delay ordering on scheduling trees
  (:mod:`repro.core.tree_order`);
- greedy baselines (:mod:`repro.core.greedy`);
- end-to-end delay analysis (:mod:`repro.core.delay`);
- incremental admission control (:mod:`repro.core.admission`);
- online schedule repair under fault churn (:mod:`repro.core.repair`);
- the incremental solver engine front end -- shared conflict indexes,
  warm-started probe searches, problem caching
  (:mod:`repro.core.engine`);
- the solver-policy seam selecting between the exact search and the
  large-topology arms (:mod:`repro.core.policy`), and the zoned /
  greedy arms themselves (:mod:`repro.core.zones`).
"""

from repro.core.admission import AdmissionController, AdmissionDecision
from repro.core.bellman_ford import DifferenceConstraints, NegativeCycle
from repro.core.besteffort import (
    TwoClassSchedule,
    pack_best_effort,
    schedule_two_classes,
)
from repro.core.conflict import conflict_graph, conflicting_pairs
from repro.core.delay import path_delay_slots, path_wraps, worst_case_delay_slots
from repro.core.engine import ConflictIndex, SolverEngine, default_engine
from repro.core.greedy import greedy_schedule
from repro.core.guarantees import GuaranteeReport, check_guarantees
from repro.core.ilp import ILPResult, SchedulingProblem, solve_schedule_ilp
from repro.core.minslots import MinSlotResult, minimum_slots
from repro.core.ordering import TransmissionOrder, schedule_from_order
from repro.core.policy import SolverPolicy
from repro.core.repair import RepairEngine, RepairOutcome
from repro.core.schedule import Schedule, SlotBlock
from repro.core.tree_order import min_delay_tree_order
from repro.core.zones import (
    ZonePartition,
    greedy_minimum_slots,
    partition_zones,
    zoned_minimum_slots,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "ConflictIndex",
    "DifferenceConstraints",
    "ILPResult",
    "MinSlotResult",
    "NegativeCycle",
    "RepairEngine",
    "RepairOutcome",
    "Schedule",
    "SchedulingProblem",
    "SlotBlock",
    "SolverEngine",
    "SolverPolicy",
    "TransmissionOrder",
    "ZonePartition",
    "GuaranteeReport",
    "TwoClassSchedule",
    "check_guarantees",
    "pack_best_effort",
    "schedule_two_classes",
    "conflict_graph",
    "conflicting_pairs",
    "default_engine",
    "greedy_minimum_slots",
    "greedy_schedule",
    "min_delay_tree_order",
    "minimum_slots",
    "partition_zones",
    "path_delay_slots",
    "path_wraps",
    "schedule_from_order",
    "solve_schedule_ilp",
    "worst_case_delay_slots",
    "zoned_minimum_slots",
]
