"""Joint slot/order ILP with end-to-end delay constraints.

This is the optimization at the heart of the NET-COOP companion paper: given
per-link slot demands, a conflict graph and a frame of ``S`` data slots,
decide whether a conflict-free schedule exists that also meets every
guaranteed flow's end-to-end delay budget -- and optionally find the one
minimizing the maximum path delay.

Formulation
-----------
Integer start variables ``s_l`` in ``[0, S - d_l]`` per demanded link and a
binary order variable ``o_ab`` per conflicting pair (``o_ab = 1`` iff ``a``
transmits before ``b``), coupled by the classic disjunctive big-M pair

    ``s_a + d_a <= s_b + S (1 - o_ab)``
    ``s_b + d_b <= s_a + S o_ab``

with big-M equal to ``S`` (tight, since starts live in ``[0, S)``).

For a route ``(l1, ..., lk)`` the end-to-end relaying delay telescopes to

    ``D = s_k + d_k - s_1 + S * sum_i w_i``

where the wrap indicator ``w_i`` of consecutive hops equals ``1 - o`` (or
``o``) of the corresponding conflicting pair -- consecutive route links
always share a router, hence always conflict, hence always carry an order
variable.  ``D <= budget`` is then linear.

Solved with :func:`scipy.optimize.milp` (HiGHS branch-and-cut).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

import networkx as nx
import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from repro import obs
from repro.core.ordering import TransmissionOrder
from repro.core.schedule import Schedule, SlotBlock
from repro.errors import ConfigurationError, SolverError
from repro.net.topology import Link


@dataclass(frozen=True)
class DelayConstraint:
    """One guaranteed flow's routed path and its delay budget in slots."""

    name: str
    route: tuple[Link, ...]
    budget_slots: int

    def __post_init__(self) -> None:
        if not self.route:
            raise ConfigurationError(f"{self.name}: empty route")
        if self.budget_slots <= 0:
            raise ConfigurationError(f"{self.name}: budget must be positive")
        for (____, mid), (nxt, ____) in zip(self.route, self.route[1:]):
            if mid != nxt:
                raise ConfigurationError(f"{self.name}: route not contiguous")


@dataclass
class SchedulingProblem:
    """Inputs to the delay-aware scheduling ILP."""

    conflicts: nx.Graph
    demands: Mapping[Link, int]
    frame_slots: int
    delay_constraints: Sequence[DelayConstraint] = field(default_factory=tuple)
    #: If true, minimize the maximum path delay over all delay constraints
    #: (subject to their budgets); otherwise solve pure feasibility.
    minimize_max_delay: bool = False
    #: Restrict all blocks to the first ``region_slots`` slots of the frame
    #: (the guaranteed-traffic region); the frame length -- and hence the
    #: cost of a wrap -- stays ``frame_slots``.  ``None`` means the whole
    #: frame.  This is the quantity the NET-COOP minimum-slot search shrinks.
    region_slots: Optional[int] = None

    @property
    def effective_region(self) -> int:
        region = self.frame_slots if self.region_slots is None else self.region_slots
        if region <= 0 or region > self.frame_slots:
            raise ConfigurationError(
                f"region_slots {region} must be in 1..frame_slots")
        return region

    def demanded_links(self) -> list[Link]:
        """Links with positive demand, in canonical order."""
        return [l for l in sorted(self.demands) if self.demands[l] > 0]


@dataclass
class ILPResult:
    """Outcome of :func:`solve_schedule_ilp`."""

    feasible: bool
    schedule: Optional[Schedule]
    order: Optional[TransmissionOrder]
    #: Maximum path delay over the delay constraints, in slots (None when no
    #: delay constraints were given or the problem was infeasible).
    max_delay_slots: Optional[int]
    solve_seconds: float
    solver_status: str
    num_variables: int = 0
    num_constraints: int = 0


#: Default wall-clock budget per MILP solve.  Branch-and-cut on disjunctive
#: big-M formulations has a heavy tail: the occasional instance runs
#: minutes where its neighbours take milliseconds, and the HiGHS C core
#: does not respond to signals mid-solve.  A bounded default converts that
#: tail into an explicit SolverError the caller can handle (admission
#: controllers treat it as "reject"), instead of an unbounded stall.
DEFAULT_TIME_LIMIT_S = 120.0


def solve_schedule_ilp(problem: SchedulingProblem,
                       time_limit: Optional[float] = None,
                       node_limit: Optional[int] = None) -> ILPResult:
    """Solve the joint slot/order scheduling ILP.

    Returns an :class:`ILPResult`; infeasibility is reported in the result
    (``feasible=False``), while unexpected solver failures -- including
    exceeding ``time_limit`` (default :data:`DEFAULT_TIME_LIMIT_S`) without
    an answer -- raise :class:`~repro.errors.SolverError`.

    ``node_limit`` caps the branch-and-cut tree instead of the wall
    clock.  Unlike a time limit it is *deterministic*: the same problem
    under the same node limit reaches the same verdict on any machine at
    any load, which is what lets budgeted probes (the zoned arm's zone
    sub-searches) stay bitwise-reproducible.
    """
    obs.counter("core.ilp.solves").inc()
    with obs.span("core.ilp.solve", frame_slots=problem.frame_slots):
        result = _solve(problem, time_limit, node_limit)
    obs.histogram("core.ilp.variables").observe(result.num_variables)
    obs.histogram("core.ilp.constraints").observe(result.num_constraints)
    if not result.feasible:
        obs.counter("core.ilp.infeasible").inc()
    return result


def _solve(problem: SchedulingProblem,
           time_limit: Optional[float],
           node_limit: Optional[int] = None) -> ILPResult:
    frame = problem.frame_slots
    if frame <= 0:
        raise ConfigurationError("frame_slots must be positive")
    region = problem.effective_region
    links = problem.demanded_links()

    # Quick exits that do not need a solver.
    if not links:
        return ILPResult(True, Schedule(frame), TransmissionOrder({}), None,
                         0.0, "trivial", 0, 0)
    for link in links:
        if problem.demands[link] > region:
            return ILPResult(False, None, None, None, 0.0,
                             f"demand of {link} exceeds region", 0, 0)

    route_links = {l for c in problem.delay_constraints for l in c.route}
    missing = route_links - set(links)
    if missing:
        raise ConfigurationError(
            f"delay-constrained routes use undemanded links: {sorted(missing)}")

    # -- variable layout ---------------------------------------------------
    s_index = {link: i for i, link in enumerate(links)}
    demanded = set(links)
    pairs = sorted(
        tuple(sorted(edge)) for edge in problem.conflicts.edges
        if edge[0] in demanded and edge[1] in demanded)
    o_index = {pair: len(links) + j for j, pair in enumerate(pairs)}
    pair_set = set(pairs)
    num_vars = len(links) + len(pairs)
    dmax_index = None
    if problem.minimize_max_delay and problem.delay_constraints:
        dmax_index = num_vars
        num_vars += 1

    def order_var(a: Link, b: Link) -> tuple[int, bool]:
        """(variable index, polarity): value == polarity means a before b."""
        if (a, b) in pair_set:
            return o_index[(a, b)], True
        if (b, a) in pair_set:
            return o_index[(b, a)], False
        raise ConfigurationError(
            f"consecutive route links {a}, {b} do not conflict; "
            "is the conflict graph built with hops >= 1 over these links?")

    rows: list[dict[int, float]] = []
    lower: list[float] = []
    upper: list[float] = []

    def add_row(coeffs: dict[int, float], lb: float, ub: float) -> None:
        rows.append(coeffs)
        lower.append(lb)
        upper.append(ub)

    # -- disjunctive conflict constraints -----------------------------------
    for a, b in pairs:
        sa, sb = s_index[a], s_index[b]
        o = o_index[(a, b)]
        da, db = problem.demands[a], problem.demands[b]
        # s_a - s_b + S*o <= S - d_a   (active when o = 1: a before b)
        add_row({sa: 1.0, sb: -1.0, o: float(frame)}, -np.inf, frame - da)
        # s_b - s_a - S*o <= -d_b      (active when o = 0: b before a)
        add_row({sb: 1.0, sa: -1.0, o: -float(frame)}, -np.inf, -db)

    # -- delay constraints ---------------------------------------------------
    for constraint in problem.delay_constraints:
        route = constraint.route
        first, last = route[0], route[-1]
        coeffs: dict[int, float] = {}

        def accumulate(index: int, value: float) -> None:
            coeffs[index] = coeffs.get(index, 0.0) + value

        accumulate(s_index[last], 1.0)
        accumulate(s_index[first], -1.0)
        constant = float(problem.demands[last])
        # Each consecutive pair contributes S * w, with w expressed through
        # the pair's order variable.
        for prev, nxt in zip(route, route[1:]):
            var, polarity = order_var(prev, nxt)
            if polarity:
                # w = 1 - o  =>  S*w = S - S*o
                constant += frame
                accumulate(var, -float(frame))
            else:
                # w = o  =>  S*w = S*o
                accumulate(var, float(frame))
        # D = coeffs . x + constant
        if dmax_index is not None:
            # D - Dmax <= -constant  (i.e. D <= Dmax)
            with_dmax = dict(coeffs)
            with_dmax[dmax_index] = with_dmax.get(dmax_index, 0.0) - 1.0
            add_row(with_dmax, -np.inf, -constant)
        add_row(dict(coeffs), -np.inf, constraint.budget_slots - constant)

    # -- bounds, integrality, objective --------------------------------------
    var_lower = np.zeros(num_vars)
    var_upper = np.empty(num_vars)
    integrality = np.ones(num_vars)
    for link, i in s_index.items():
        var_upper[i] = region - problem.demands[link]
    for pair, j in o_index.items():
        var_upper[j] = 1.0
    objective = np.zeros(num_vars)
    if dmax_index is not None:
        var_upper[dmax_index] = max(c.budget_slots
                                    for c in problem.delay_constraints)
        integrality[dmax_index] = 0.0
        objective[dmax_index] = 1.0

    # -- assemble and solve ---------------------------------------------------
    matrix = sparse.lil_matrix((len(rows), num_vars))
    for r, coeffs in enumerate(rows):
        for c, value in coeffs.items():
            matrix[r, c] = value
    constraints = []
    if rows:
        constraints.append(LinearConstraint(
            matrix.tocsr(), np.array(lower), np.array(upper)))

    options: dict[str, object] = {"presolve": True}
    options["time_limit"] = float(DEFAULT_TIME_LIMIT_S if time_limit is None
                                  else time_limit)
    if node_limit is not None:
        options["node_limit"] = int(node_limit)

    started = time.perf_counter()
    result = milp(c=objective, constraints=constraints,
                  integrality=integrality,
                  bounds=Bounds(var_lower, var_upper),
                  options=options)
    elapsed = time.perf_counter() - started

    if result.status == 2:  # infeasible
        return ILPResult(False, None, None, None, elapsed, result.message,
                         num_vars, len(rows))
    # status 1 = iteration/time limit; if HiGHS found an incumbent, use it
    # (it is a valid conflict-free schedule, merely unproven-optimal for
    # minimizing objectives).  No incumbent -> explicit failure.
    if result.status not in (0, 1) or result.x is None:
        raise SolverError(
            f"MILP solver failed (status {result.status}): {result.message}")

    values = np.asarray(result.x)
    schedule = Schedule(frame)
    for link, i in s_index.items():
        start = int(round(values[i]))
        schedule.assign(link, SlotBlock(start, problem.demands[link]))
    schedule.validate(problem.conflicts)

    pair_decisions = {
        pair: bool(round(values[j])) for pair, j in o_index.items()}
    order = TransmissionOrder.from_pairs(pair_decisions)

    max_delay = None
    if problem.delay_constraints:
        from repro.core.delay import path_delay_slots
        max_delay = max(path_delay_slots(schedule, c.route)
                        for c in problem.delay_constraints)

    return ILPResult(True, schedule, order, max_delay, elapsed,
                     result.message, num_vars, len(rows))
