"""The solver-policy seam: one object deciding *how* a schedule is solved.

The minimum-slots search grew knobs one call site at a time -- ``search=``
here, ``max_region=`` there, ``time_limit_per_probe=`` on a third -- and
the large-topology work (:mod:`repro.core.zones`) would have added three
more.  :class:`SolverPolicy` replaces that drift with a first-class value:
a frozen, validated description of the solving strategy that travels
through :class:`~repro.api.Scenario` (``solver=``),
:class:`~repro.core.engine.SolverEngine` (``policy=``) and
:func:`~repro.core.minslots.minimum_slots` (``policy=``) unchanged.

Four modes:

``"exact"``
    The paper's path: the delay-aware feasibility ILP probed by the
    minimum-slots search.  Bitwise-identical to the pre-policy solver at
    any engine configuration -- this is the reference arm every other
    mode's optimality gap is measured against.
``"zoned"``
    The large-topology path (:func:`repro.core.zones.zoned_minimum_slots`):
    partition the conflict graph into interference zones of at most
    ``max_zone_links`` links, solve each zone exactly with boundary-slot
    reservation, stitch via one Bellman-Ford recovery pass.
``"greedy"``
    The cheapest arm (:func:`repro.core.zones.greedy_minimum_slots`):
    a deterministic first-fit portfolio compacted by Bellman-Ford.  No
    ILP at all; solve time is near-linear in conflicts.
``"auto"``
    Pick per instance: ``"exact"`` up to ``auto_threshold`` demanded
    links, ``"zoned"`` above it.  The default everywhere, so small
    meshes keep the paper's exact solver and city-scale meshes stop
    hitting the ILP wall without the caller doing anything.

The heuristic arms are *sound, never complete*: every schedule they emit
is conflict-free (S8) and meets every delay budget they were given --
when they cannot, they report infeasibility rather than degrade a
guarantee.  What they give up is minimality, bounded in practice by
``gap_tolerance`` and measured against the exact arm in experiment E21.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Union

from repro.errors import ConfigurationError

#: The accepted ``mode`` spellings, in documentation order.
SOLVER_MODES = ("exact", "zoned", "greedy", "auto")

#: Demanded-link count above which ``"auto"`` switches from the exact ILP
#: to the zoned solver.  At the default the switch sits far beyond every
#: paper-scale workload (16-50 node meshes demand well under 100 links)
#: and comfortably below where the monolithic ILP becomes intractable.
DEFAULT_AUTO_THRESHOLD = 256


@dataclass(frozen=True)
class SolverPolicy:
    """How :func:`~repro.core.minslots.minimum_slots` should solve.

    Parameters
    ----------
    mode:
        ``"exact"``, ``"zoned"``, ``"greedy"`` or ``"auto"`` (see the
        module docstring).
    search:
        Probe-search strategy of the exact arm (and of each zone's exact
        subsolve): ``"linear"`` (the paper's search) or ``"binary"``.
        A per-call ``search=`` argument still wins where one is given.
    max_zone_links:
        Zone-size knob of the zoned arm: zones stop growing at this many
        demanded links.  Smaller zones solve faster and parallelize the
        conflict structure harder; larger zones close more of the
        optimality gap.
    gap_tolerance:
        Advertised relative optimality-gap budget of the heuristic arms
        (0.10 = ten percent more slots than optimal).  Heuristic results
        whose gap against the clique lower bound exceeds it increment
        ``core.zones.gap_exceeded`` -- observable, never fatal, and
        asserted against the *measured* gap in experiment E21.
    auto_threshold:
        Demanded-link count at which ``"auto"`` switches from exact to
        zoned.
    max_region:
        Largest guaranteed region to consider (``None``: the whole
        frame).  Subsumes the old per-call ``max_region=`` kwarg.
    time_limit_per_probe:
        Wall-clock budget per ILP probe, in seconds.  Subsumes the old
        per-call ``time_limit_per_probe=`` kwarg.
    node_limit_per_probe:
        Branch-and-cut node budget per ILP probe.  Unlike the wall
        clock it is *deterministic* -- the same probe reaches the same
        verdict on any machine at any load -- so it is the budget of
        choice wherever bitwise reproducibility matters.  ``None`` means
        unbounded for the exact arm and
        :data:`repro.core.zones.DEFAULT_ZONE_PROBE_NODE_LIMIT` for zone
        sub-searches.
    """

    mode: str = "auto"
    search: str = "linear"
    max_zone_links: int = 64
    gap_tolerance: float = 0.10
    auto_threshold: int = DEFAULT_AUTO_THRESHOLD
    max_region: Optional[int] = None
    time_limit_per_probe: Optional[float] = None
    node_limit_per_probe: Optional[int] = None

    def __post_init__(self) -> None:
        if self.mode not in SOLVER_MODES:
            raise ConfigurationError(
                f"unknown solver mode {self.mode!r}; "
                f"expected one of {SOLVER_MODES}")
        if self.search not in ("linear", "binary"):
            raise ConfigurationError(
                f"unknown search mode {self.search!r}")
        if self.max_zone_links < 2:
            raise ConfigurationError(
                f"max_zone_links must be >= 2, got {self.max_zone_links}")
        if self.gap_tolerance < 0:
            raise ConfigurationError(
                f"gap_tolerance must be >= 0, got {self.gap_tolerance}")
        if self.auto_threshold < 1:
            raise ConfigurationError(
                f"auto_threshold must be >= 1, got {self.auto_threshold}")
        if self.max_region is not None and self.max_region < 1:
            raise ConfigurationError(
                f"max_region must be >= 1, got {self.max_region}")
        if (self.time_limit_per_probe is not None
                and self.time_limit_per_probe <= 0):
            raise ConfigurationError("time_limit_per_probe must be positive")
        if (self.node_limit_per_probe is not None
                and self.node_limit_per_probe < 1):
            raise ConfigurationError("node_limit_per_probe must be >= 1")

    @classmethod
    def coerce(cls, value: Union["SolverPolicy", str, None]
               ) -> "SolverPolicy":
        """Normalize the accepted ``solver=`` spellings to a policy.

        ``None`` means the default policy, a string names a mode with
        default knobs, and a :class:`SolverPolicy` passes through.
        """
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls(mode=value)
        raise ConfigurationError(
            f"solver policy must be a SolverPolicy, a mode string or "
            f"None, got {type(value).__name__}")

    def resolve_mode(self, num_demanded_links: int) -> str:
        """The concrete arm for an instance of this size.

        ``"auto"`` resolves to ``"exact"`` at or below
        :attr:`auto_threshold` demanded links and ``"zoned"`` above it;
        explicit modes resolve to themselves.
        """
        if self.mode != "auto":
            return self.mode
        if num_demanded_links <= self.auto_threshold:
            return "exact"
        return "zoned"

    def with_overrides(self, search: Optional[str] = None,
                       max_region: Optional[int] = None,
                       time_limit_per_probe: Optional[float] = None
                       ) -> "SolverPolicy":
        """This policy with any explicitly-given per-call knobs applied."""
        updates: dict = {}
        if search is not None:
            updates["search"] = search
        if max_region is not None:
            updates["max_region"] = max_region
        if time_limit_per_probe is not None:
            updates["time_limit_per_probe"] = time_limit_per_probe
        return replace(self, **updates) if updates else self
