"""Formal QoS guarantees implied by a schedule -- and their checker.

The paper's headline word is *guaranteed*: once a conflict-free schedule
reserves enough capacity for a CBR flow, its end-to-end delay has a hard
deterministic bound.  This module states that bound as code so callers
(and the test suite, against packet-level simulation) can check it.

**Throughput condition.**  A flow offering ``rate_bps`` needs every link of
its route to move at least ``rate_bps * frame`` bits per frame:

    reserved_slots(link) * fragment_capacity >= rate * frame

If this holds, each frame clears the frame's arrivals on every hop, so no
queue grows without bound (stability) and no packet waits more than one
frame for *capacity* (as opposed to for its slot position).

**Delay bound.**  For a packet of a stable CBR flow:

- it waits at most one frame at the source for its first block to come
  around (arrival phase is arbitrary);
- within the frame that serves it, relaying takes exactly the schedule's
  cyclic path delay (``path_delay_slots``);
- with multiple packets per frame sharing the block, a packet may be
  served up to ``ceil(arrivals/frame_capacity_in_packets) - 1`` frames
  late within its burst -- zero for the common VoIP case of one packet
  per frame per flow, and bounded by the throughput condition otherwise.

Together:  ``D <= frame + path_delay + (backlog_frames) * frame``.

These are *scheduling* guarantees: they assume slot adherence (the
emulation's guard-time contract, E8) and no channel loss (or ARQ); the
integration tests exercise exactly this combination.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.delay import path_delay_slots
from repro.core.schedule import Schedule
from repro.errors import ConfigurationError
from repro.mesh16.frame import MeshFrameConfig
from repro.net.flows import Flow


@dataclass(frozen=True)
class GuaranteeReport:
    """The checked guarantees for one flow under one schedule."""

    flow_name: str
    #: throughput condition holds on every route link
    stable: bool
    #: link with the least reserved headroom (bits/frame margin)
    tightest_link: tuple
    tightest_margin_bits: float
    #: deterministic end-to-end delay bound (None if unstable)
    delay_bound_s: float | None

    def meets_budget(self, budget_s: float) -> bool:
        return (self.stable and self.delay_bound_s is not None
                and self.delay_bound_s <= budget_s)


def check_guarantees(schedule: Schedule, flow: Flow,
                     frame_config: MeshFrameConfig,
                     packet_bits: int,
                     fragment_capacity_bits: int | None = None
                     ) -> GuaranteeReport:
    """Evaluate the throughput condition and the delay bound for ``flow``.

    Parameters
    ----------
    schedule:
        The conflict-free schedule the mesh executes; every route link of
        the flow must hold a block.
    packet_bits:
        The flow's packet size (a fragment must fit a whole packet for the
        one-packet-per-slot accounting used here).
    fragment_capacity_bits:
        Payload bits one slot moves; defaults to the frame's capacity.
    """
    if not flow.is_routed:
        raise ConfigurationError(f"flow {flow.name} must be routed")
    capacity = (frame_config.data_slot_capacity_bits
                if fragment_capacity_bits is None
                else fragment_capacity_bits)
    if packet_bits > capacity:
        raise ConfigurationError(
            f"packet of {packet_bits} bits exceeds slot capacity "
            f"{capacity}; the single-fragment delay bound does not apply")

    frame_s = frame_config.frame_duration_s
    bits_per_frame = flow.rate_bps * frame_s
    packets_per_frame = bits_per_frame / packet_bits

    stable = True
    tightest_link = flow.route[0]
    tightest_margin = math.inf
    for link in flow.route:
        if link not in schedule:
            return GuaranteeReport(flow.name, False, link, -bits_per_frame,
                                   None)
        slots = schedule.block(link).length
        # whole packets per slot: fragmentation across slots would break
        # the per-frame clearing argument
        packets_per_slot = capacity // packet_bits
        served_bits = slots * packets_per_slot * packet_bits
        margin = served_bits - bits_per_frame
        if margin < tightest_margin:
            tightest_margin = margin
            tightest_link = link
        if margin < 0:
            stable = False

    if not stable:
        return GuaranteeReport(flow.name, False, tightest_link,
                               tightest_margin, None)

    slot_s = frame_s / frame_config.data_slots
    relay_s = path_delay_slots(schedule, flow.route) * slot_s
    # packets sharing a frame: how many frames a burst can push a packet
    first_link_slots = schedule.block(flow.route[0]).length
    packets_per_slot = capacity // packet_bits
    frame_packet_capacity = first_link_slots * packets_per_slot
    backlog_frames = max(0, math.ceil(packets_per_frame
                                      / frame_packet_capacity) - 1)
    bound = frame_s + relay_s + backlog_frames * frame_s
    return GuaranteeReport(flow.name, True, tightest_link,
                           tightest_margin, bound)
