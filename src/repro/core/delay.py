"""End-to-end scheduling delay of routed flows under a TDMA schedule.

A packet relayed along ``route = (l1, ..., lk)`` is transmitted in ``l1``'s
block, waits at each intermediate router for the next link's block, and is
delivered at the end of ``lk``'s block.  Because the schedule repeats every
frame, the wait at a router is the *cyclic* gap between the previous block's
end and the next block's start: zero extra frames when the outbound link is
scheduled after the inbound one within the frame, one extra frame (a
"wrap") otherwise.  The transmission order therefore determines delay to
within one frame -- the observation the delay-aware ILP and the tree
ordering algorithm exploit.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.ordering import TransmissionOrder
from repro.core.schedule import Schedule
from repro.errors import SchedulingError
from repro.net.topology import Link


def _check_route(route: Sequence[Link]) -> None:
    if not route:
        raise SchedulingError("route is empty")
    for (____, mid), (nxt, ____) in zip(route, route[1:]):
        if mid != nxt:
            raise SchedulingError(f"route is not contiguous at {mid} -> {nxt}")


def path_delay_slots(schedule: Schedule, route: Sequence[Link]) -> int:
    """Slots from the start of the first block to the end of the last.

    This is the *relaying* delay for a packet that is ready exactly when its
    first link's block begins; add queueing for the first block separately
    (see :func:`worst_case_delay_slots`).
    """
    _check_route(route)
    frame = schedule.frame_slots
    first_block = schedule.block(route[0])
    finish = first_block.end  # absolute slot count since frame 0
    for link in route[1:]:
        block = schedule.block(link)
        # Cyclic wait from the previous hop's finish to this block's start.
        wait = (block.start - finish) % frame
        finish += wait + block.length
    return finish - first_block.start


def path_wraps(schedule: Schedule, route: Sequence[Link]) -> int:
    """Number of whole extra frames the relaying delay spans.

    Defined through the delay identity ``wraps = ceil(delay / frame) - 1``,
    so ``delay <= (wraps + 1) * frame`` holds with equality at frame
    boundaries.  A packet fully relayed within one frame has zero wraps;
    each hop whose outbound block falls (cyclically) before its inbound
    block pushes the finish into a later frame.
    """
    delay = path_delay_slots(schedule, route)
    return (delay - 1) // schedule.frame_slots


def worst_case_delay_slots(schedule: Schedule, route: Sequence[Link]) -> int:
    """Upper bound on delay for a packet arriving at an arbitrary instant.

    A packet that just misses its first block waits up to a full frame for
    the next occurrence, then suffers the relaying delay.
    """
    return schedule.frame_slots + path_delay_slots(schedule, route)


def order_wraps(order: TransmissionOrder, route: Sequence[Link]) -> int:
    """Wraps implied by a transmission order alone (no concrete schedule).

    Consecutive hop ``l -> m`` wraps iff ``m`` transmits before ``l`` in the
    frame.  Together with ``delay <= (wraps + 1) * frame`` this lets the
    ordering stage reason about delay before start slots are chosen.
    """
    _check_route(route)
    return sum(
        0 if order.precedes(prev, nxt) else 1
        for prev, nxt in zip(route, route[1:]))


def max_route_delay(schedule: Schedule, routes: Sequence[Sequence[Link]]) -> int:
    """Maximum :func:`path_delay_slots` over a set of routes."""
    if not routes:
        raise SchedulingError("no routes given")
    return max(path_delay_slots(schedule, route) for route in routes)
