"""Two-class scheduling: guaranteed QoS + best effort.

The NET-COOP companion paper's framing is *multi-service*: guaranteed-delay
streams (VoIP) coexist with elastic best-effort streams (file transfer).
The guaranteed class gets the smallest region that meets its bandwidth and
delay requirements (:func:`repro.core.minslots.minimum_slots`); everything
left in the data subframe is handed to best effort.

Best effort is elastic, so its packer never fails: each best-effort link
receives the **largest contiguous block that still fits** in the leftover
region (first-fit decreasing by requested demand, conflicts respected),
possibly zero.  The returned :class:`TwoClassSchedule` reports the grant
per link so callers can see how much of the ask was satisfied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

import networkx as nx

from repro.core.ilp import DelayConstraint
from repro.core.minslots import MinSlotResult, minimum_slots
from repro.core.schedule import Schedule, SlotBlock
from repro.errors import ConfigurationError, InfeasibleScheduleError
from repro.net.topology import Link


@dataclass
class TwoClassSchedule:
    """Outcome of :func:`schedule_two_classes`.

    A link that carries both classes legitimately holds *two* blocks (one
    per region), which a plain one-block :class:`~repro.core.schedule.
    Schedule` cannot express -- so this object is itself the combined
    schedule view: it exposes ``frame_slots`` and ``items()`` (possibly
    repeating a link) and can be handed directly to
    :class:`~repro.overlay.emulation.TdmaOverlay` or to the in-band
    distributor.  Cross-class conflict-freeness holds by construction: the
    classes live in disjoint slot regions.
    """

    #: slots 0..guaranteed_region-1 carry the guaranteed class
    guaranteed_region: int
    frame_slots: int
    #: guaranteed-class blocks only
    guaranteed: Schedule
    #: best-effort blocks only (all inside the leftover region)
    best_effort: Schedule
    #: best-effort slots granted per link (may be below the ask, or zero)
    best_effort_grants: dict[Link, int] = field(default_factory=dict)
    #: the min-slot search that sized the guaranteed region
    search: Optional[MinSlotResult] = None

    @property
    def best_effort_region(self) -> int:
        return self.frame_slots - self.guaranteed_region

    def items(self):
        """All (link, block) assignments; a link may appear twice."""
        yield from self.guaranteed.items()
        yield from self.best_effort.items()

    def grant_fraction(self, demands: Mapping[Link, int]) -> float:
        """Fraction of requested best-effort slots actually granted."""
        asked = sum(demands.values())
        if asked == 0:
            return 1.0
        granted = sum(self.best_effort_grants.get(l, 0) for l in demands)
        return granted / asked


def pack_best_effort(conflicts: nx.Graph, demands: Mapping[Link, int],
                     region_start: int, frame_slots: int,
                     occupied: Optional[Schedule] = None) -> Schedule:
    """Elastically pack best-effort blocks into ``[region_start, frame)``.

    First-fit decreasing; a link whose full ask does not fit gets the
    largest block that does (possibly none).  ``occupied`` blocks (the
    guaranteed schedule) are avoided for conflicting links even if they
    intrude into the best-effort region.
    """
    if not 0 <= region_start <= frame_slots:
        raise ConfigurationError(
            f"region_start {region_start} outside 0..{frame_slots}")
    assignments: dict[Link, SlotBlock] = {}

    def busy_intervals(link: Link) -> list[tuple[int, int]]:
        if link not in conflicts:
            raise ConfigurationError(
                f"best-effort link {link} missing from conflict graph")
        intervals = []
        for other in conflicts.neighbors(link):
            if other in assignments:
                block = assignments[other]
                intervals.append((block.start, block.end))
            if occupied is not None and other in occupied:
                block = occupied.block(other)
                intervals.append((block.start, block.end))
        if occupied is not None and link in occupied:
            block = occupied.block(link)
            intervals.append((block.start, block.end))
        return sorted(intervals)

    for link in sorted(demands, key=lambda l: (-demands[l], l)):
        ask = demands[link]
        if ask <= 0:
            continue
        intervals = busy_intervals(link)
        best: Optional[SlotBlock] = None
        for length in range(min(ask, frame_slots - region_start), 0, -1):
            candidate = region_start
            placed = None
            for start, end in intervals:
                if candidate + length <= start:
                    break
                candidate = max(candidate, end)
            if candidate + length <= frame_slots:
                placed = candidate
            if placed is not None:
                best = SlotBlock(placed, length)
                break
        if best is not None:
            assignments[link] = best

    schedule = Schedule(frame_slots, assignments)
    schedule.validate(conflicts)
    return schedule


def schedule_two_classes(conflicts: nx.Graph,
                         guaranteed_demands: Mapping[Link, int],
                         best_effort_demands: Mapping[Link, int],
                         frame_slots: int,
                         delay_constraints: Sequence[DelayConstraint] = (),
                         search: str = "linear") -> TwoClassSchedule:
    """Size the guaranteed region, then fill the rest with best effort.

    Raises :class:`~repro.errors.InfeasibleScheduleError` only if the
    *guaranteed* class cannot be scheduled; best effort is elastic and
    degrades to whatever fits (including nothing).
    """
    result = minimum_slots(conflicts, dict(guaranteed_demands), frame_slots,
                           delay_constraints=delay_constraints,
                           search=search)
    if not result.feasible:
        raise InfeasibleScheduleError(
            f"guaranteed class does not fit in {frame_slots} slots")
    region = result.slots
    guaranteed = (result.schedule if result.schedule is not None
                  else Schedule(frame_slots))
    # re-home the guaranteed schedule in the full frame length
    guaranteed_full = Schedule(frame_slots)
    for link, block in guaranteed.items():
        guaranteed_full.assign(link, block)

    best_effort = pack_best_effort(conflicts, best_effort_demands,
                                   region_start=region,
                                   frame_slots=frame_slots,
                                   occupied=guaranteed_full)
    # cross-class safety holds by construction: guaranteed blocks end at
    # `region`, best-effort blocks start at or after it
    assert all(b.end <= region for ____, b in guaranteed_full.items())
    assert all(b.start >= region for ____, b in best_effort.items())

    return TwoClassSchedule(
        guaranteed_region=region,
        frame_slots=frame_slots,
        guaranteed=guaranteed_full,
        best_effort=best_effort,
        best_effort_grants={l: b.length for l, b in best_effort.items()},
        search=result,
    )
