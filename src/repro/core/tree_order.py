"""Minimum-delay transmission ordering on scheduling trees.

The ToN 2009 companion result: finding the min-max delay transmission order
is NP-complete on general topologies, but on an overlay *tree* (the 802.16
mesh scheduling tree) an order with **zero wraps on every tree route**
exists and is computable in linear time:

1. all *uplink* links (child -> parent) ordered by **decreasing** depth of
   the child, then
2. all *downlink* links (parent -> child) ordered by **increasing** depth of
   the child.

Why this is wrap-free for every route on the tree: any tree route climbs
from the source to the lowest common ancestor and then descends.  Along the
climb, each hop's link is one level shallower than the previous, so it
appears *later* in the order (deeper uplinks first).  The climb-to-descent
transition goes from an uplink to a downlink, and all uplinks precede all
downlinks.  Along the descent each hop is one level deeper, again later in
the order (shallower downlinks first).  Every consecutive pair is therefore
ordered forward in the frame, so a packet traverses its whole route within
one frame: end-to-end delay is at most one frame length regardless of hop
count -- the property experiment E2 demonstrates against naive orderings.
"""

from __future__ import annotations

import networkx as nx

from repro.core.ordering import TransmissionOrder
from repro.errors import ConfigurationError
from repro.net.topology import Link


def tree_depths(tree: nx.DiGraph, root: int) -> dict[int, int]:
    """Depth of every node in a parent->child directed tree."""
    if root not in tree:
        raise ConfigurationError(f"root {root} not in tree")
    depths = {root: 0}
    frontier = [root]
    while frontier:
        next_frontier = []
        for node in frontier:
            for child in tree.successors(node):
                if child in depths:
                    raise ConfigurationError("graph is not a tree (revisit)")
                depths[child] = depths[node] + 1
                next_frontier.append(child)
        frontier = next_frontier
    if len(depths) != tree.number_of_nodes():
        raise ConfigurationError("graph is not a tree rooted at the given root")
    return depths


def min_delay_tree_order(tree: nx.DiGraph, root: int) -> TransmissionOrder:
    """The wrap-free total order over all directed links of the tree.

    ``tree`` must be a directed tree with edges parent -> child, as produced
    by :func:`repro.net.routing.gateway_tree`.  The order covers both
    directions of every tree edge (uplinks and downlinks).
    """
    depths = tree_depths(tree, root)
    uplinks: list[Link] = []
    downlinks: list[Link] = []
    for parent, child in tree.edges:
        uplinks.append((child, parent))
        downlinks.append((parent, child))
    # Deeper uplinks first; ties broken canonically for determinism.
    uplinks.sort(key=lambda link: (-depths[link[0]], link))
    # Shallower downlinks first.
    downlinks.sort(key=lambda link: (depths[link[1]], link))
    return TransmissionOrder.from_ranking(uplinks + downlinks)


def naive_tree_order(tree: nx.DiGraph, root: int) -> TransmissionOrder:
    """The *worst-case-prone* baseline: links in canonical sorted order.

    On uplink routes this tends to schedule shallow links before deep ones,
    producing roughly one wrap per hop -- the contrast case in E2/E7.
    """
    depths = tree_depths(tree, root)  # validates tree-ness
    links: list[Link] = []
    for parent, child in tree.edges:
        links.append((child, parent))
        links.append((parent, child))
    return TransmissionOrder.from_ranking(sorted(links))


def adversarial_tree_order(tree: nx.DiGraph, root: int) -> TransmissionOrder:
    """The maximally wrapping order: the exact reverse of the optimal one.

    Every consecutive hop on every uplink or downlink route wraps, so an
    ``h``-hop route suffers ``h - 1`` wraps -- the upper envelope in E2.
    """
    depths = tree_depths(tree, root)
    uplinks = sorted(((child, parent) for parent, child in tree.edges),
                     key=lambda link: (depths[link[0]], link))
    downlinks = sorted(((parent, child) for parent, child in tree.edges),
                       key=lambda link: (-depths[link[1]], link))
    return TransmissionOrder.from_ranking(downlinks + uplinks)
