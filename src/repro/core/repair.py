"""Incremental schedule repair for dynamic meshes (S32).

When the fault injector (:mod:`repro.faults`) kills a node or cuts a link,
the installed TDMA schedule may reference dead links and routed flows may
cross them.  Re-running the full delay-aware ILP on every event is the
*correct* response but a slow one (seconds per probe, E10); the repair
engine exploits the paper's own decomposition instead: a schedule is just
a transmission *order* plus a Bellman-Ford pass over the conflict graph
(:func:`repro.core.ordering.schedule_from_order`).  Faults rarely change
the order that made the old schedule good -- so the engine:

1. recomputes the surviving topology anchored at the gateway
   (:func:`repro.net.topology.surviving_topology`), parking flows whose
   endpoint was partitioned away;
2. rehomes affected flows with :func:`repro.net.routing.shortest_path_route`
   on the survivor;
3. keeps every surviving link's rank from the old schedule, splices new
   route links in just after their upstream predecessor, and recovers slot
   starts with one Bellman-Ford pass -- **zero ILP probes**;
4. verifies the result against the conflict validator and every guaranteed
   flow's slot budget (the same ``path_delay_slots <= budget`` condition
   the ILP enforces);
5. falls back to a full :func:`repro.core.minslots.minimum_slots` re-solve
   only when the local repair is infeasible, shedding flows in
   deterministic order (newest first) if even the re-solve fails.

The engine is a valid :class:`~repro.faults.injector.FaultInjector`
listener (``on_fault``); each topology event yields a
:class:`RepairOutcome` recording the strategy, the probe count and the
flow-level consequences, which is exactly what experiment E17 tabulates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro import obs
from repro.core.delay import path_delay_slots
from repro.core.engine import SolverEngine
from repro.core.ilp import DelayConstraint
from repro.core.minslots import MinSlotResult, minimum_slots
from repro.core.ordering import TransmissionOrder, schedule_from_order
from repro.core.schedule import Schedule
from repro.errors import (
    AdmissionError,
    ConfigurationError,
    InfeasibleScheduleError,
)
from repro.mesh16.frame import MeshFrameConfig
from repro.net.flows import Flow, FlowSet
from repro.net.routing import shortest_path_route
from repro.net.topology import Link, MeshTopology, surviving_topology


@dataclass(frozen=True)
class RepairOutcome:
    """What one repair pass did.

    ``feasible`` is True iff every flow whose endpoints survive is still
    carried -- i.e. nothing had to be shed beyond the physically
    unreachable.  ``strategy`` is ``"noop"`` (fault state unchanged, or a
    non-topology event), ``"local"`` (order-preserving Bellman-Ford repair,
    zero ILP probes) or ``"resolve"`` (full minimum-slots re-solve).
    """

    feasible: bool
    strategy: str
    schedule: Optional[Schedule]
    #: schedule version after this pass (bumped only when it changed)
    version: int
    #: flows whose route changed this pass
    rerouted: tuple[str, ...] = ()
    #: flows parked this pass (unreachable endpoint, or shed for capacity)
    parked: tuple[str, ...] = ()
    #: previously-parked flows carried again this pass
    readmitted: tuple[str, ...] = ()
    #: ILP probes consumed (0 for noop/local)
    ilp_probes: int = 0

    @property
    def changed(self) -> bool:
        return self.strategy != "noop"


class RepairEngine:
    """Online schedule maintenance under fault churn.

    Parameters
    ----------
    topology:
        The base (pre-fault) mesh.
    frame_config:
        Frame timing; ``data_slots`` is the schedule's frame length and the
        slot duration converts delay budgets to slots, exactly as the
        admission controller does.
    gateway:
        Anchor node: flows whose endpoint is partitioned from the gateway
        are parked.  The gateway itself must never be a crash victim
        (protect it in the fault plan).
    hops:
        Conflict distance of the protocol model (2 = 802.16 mesh default).
        Mutually exclusive with ``interference=``.
    interference:
        Optional :class:`~repro.phy.models.InterferenceModel` replacing
        the protocol model -- e.g. an
        :class:`~repro.phy.models.SinrModel` so repairs schedule against
        physical-model interference (needs node positions).
    search, time_limit_per_probe_s:
        Passed to :func:`minimum_slots` for full re-solves.
    engine:
        The :class:`~repro.core.engine.SolverEngine` sharing conflict
        indexes and solved probes across this engine's repair passes
        (default: a private instance whose caches live exactly as long as
        this repair engine).  Full re-solves are warm-started from the
        pre-fault schedule's transmission order, so probes the old order
        still certifies skip the ILP.
    """

    def __init__(self, topology: MeshTopology, frame_config: MeshFrameConfig,
                 gateway: int = 0, hops: Optional[int] = None,
                 search: str = "binary",
                 time_limit_per_probe_s: Optional[float] = 15.0,
                 engine: Optional[SolverEngine] = None,
                 shed_key=None,
                 dead_nodes: Iterable[int] = (),
                 dead_edges: Iterable[tuple[int, int]] = (),
                 interference=None) -> None:
        from repro.phy.models import ProtocolModel, coerce_interference

        if gateway not in topology.graph:
            raise ConfigurationError(f"gateway {gateway} not in topology")
        if hops is not None and interference is not None:
            raise ConfigurationError(
                "pass either hops= or interference=, not both")
        self.engine = engine if engine is not None else SolverEngine()
        self.base_topology = topology
        self.frame = frame_config
        self.gateway = gateway
        #: interference-model backend for all conflict graphs this
        #: engine builds (repairs and full re-solves alike)
        self.interference = coerce_interference(
            interference, default_hops=2 if hops is None else hops)
        #: protocol conflict distance (None under a non-protocol backend)
        self.hops = (self.interference.hops
                     if isinstance(self.interference, ProtocolModel)
                     else None)
        self.search = search
        self.time_limit_per_probe_s = time_limit_per_probe_s
        #: initial fault state: a mobility stream's world at t=0 rarely has
        #: every union-topology link up, so the engine can be born degraded
        #: and :meth:`install` then routes on the t=0 survivor rather than
        #: on links that do not exist yet.
        self._dead_nodes: frozenset[int] = frozenset(dead_nodes)
        self._dead_edges: frozenset[tuple[int, int]] = frozenset(
            (min(u, v), max(u, v)) for u, v in dead_edges)
        if self._dead_nodes or self._dead_edges:
            self.alive, self.unreachable = surviving_topology(
                topology, self._dead_nodes, self._dead_edges, anchor=gateway)
        else:
            self.alive = topology
            self.unreachable = frozenset()
        #: every managed flow definition (route-free), insertion-ordered
        self._flows: dict[str, Flow] = {}
        #: currently-carried routed flows (subset of _flows, same order)
        self._carried: dict[str, Flow] = {}
        #: optional ``name -> sortable`` shed-priority hook: when capacity
        #: sheds are unavoidable, candidates are stably sorted by this key
        #: and the largest key sheds first (the QoS layer uses it to shed
        #: best effort before nrtPS before the real-time classes).  With
        #: no key the legacy newest-first order is untouched.
        self.shed_key = shed_key
        self.schedule: Optional[Schedule] = None
        self.version = 0
        self.history: list[RepairOutcome] = []

    # -- queries ------------------------------------------------------------

    @property
    def carried_flows(self) -> list[Flow]:
        """Currently-scheduled routed flows, insertion order."""
        return list(self._carried.values())

    @property
    def parked_flows(self) -> list[str]:
        """Names of managed flows not currently carried."""
        return [n for n in self._flows if n not in self._carried]

    @property
    def dead_nodes(self) -> frozenset[int]:
        return self._dead_nodes

    @property
    def dead_edges(self) -> frozenset[tuple[int, int]]:
        return self._dead_edges

    def budget_slots(self, flow: Flow) -> int:
        """A flow's delay budget in data slots (admission-controller rule)."""
        slot_s = self.frame.frame_duration_s / self.frame.data_slots
        return int(flow.delay_budget_s / slot_s)

    # -- installation -------------------------------------------------------

    def install(self, flows: Iterable[Flow]) -> RepairOutcome:
        """Admit the initial flow set (full solve).

        On a fault-free mesh every flow is carried.  With an initial
        fault state (``dead_nodes=`` / ``dead_edges=`` at construction,
        e.g. a mobility stream's t=0 world) flows whose endpoints are
        unreachable start out parked and are readmitted by a later
        :meth:`retarget` once their endpoints come into range.
        """
        if self._flows:
            raise ConfigurationError("install() may only be called once")
        for flow in flows:
            self._flows[flow.name] = flow.with_route(())
        carried, _, _, _ = self._partition(self.alive, self.unreachable)
        result = self._solve(list(carried.values()))
        if not result.feasible:
            raise AdmissionError(
                f"initial flow set is infeasible in {self.frame.data_slots} "
                "slots")
        self._carried = carried
        self.schedule = result.schedule
        self.version = 1
        outcome = RepairOutcome(
            feasible=True, strategy="resolve", schedule=self.schedule,
            version=self.version, rerouted=tuple(carried),
            ilp_probes=result.iterations)
        self.history.append(outcome)
        return outcome

    # -- fault reaction ------------------------------------------------------

    def on_fault(self, event) -> None:
        """:class:`~repro.faults.injector.FaultInjector` listener hook."""
        self.apply(event)

    def apply(self, event) -> RepairOutcome:
        """React to one fault event; returns what was done.

        Non-topology events (loss steps, clock glitches) never change the
        schedule.  Repeated or redundant topology events (crashing a dead
        node) are detected by fault-state comparison and are no-ops, which
        makes ``apply`` idempotent per event.
        """
        if self.schedule is None:
            raise ConfigurationError("install() a flow set first")
        if not getattr(event, "is_topology_event", False):
            return self._noop()
        dead_nodes = set(self._dead_nodes)
        dead_edges = set(self._dead_edges)
        if event.kind == "node_down":
            dead_nodes.add(event.node)
        elif event.kind == "node_up":
            dead_nodes.discard(event.node)
        elif event.kind == "link_down":
            dead_edges.add(event.link)
        else:
            dead_edges.discard(event.link)
        return self.retarget(frozenset(dead_nodes), frozenset(dead_edges))

    def retarget(self, dead_nodes: frozenset[int],
                 dead_edges: frozenset[tuple[int, int]]) -> RepairOutcome:
        """Drive the carried set and schedule to a new fault state."""
        if (dead_nodes == self._dead_nodes
                and dead_edges == self._dead_edges):
            return self._noop()
        with obs.span("core.repair.retarget"):
            return self._retarget(dead_nodes, dead_edges)

    def _retarget(self, dead_nodes: frozenset[int],
                  dead_edges: frozenset[tuple[int, int]]) -> RepairOutcome:
        alive, unreachable = surviving_topology(
            self.base_topology, dead_nodes, dead_edges, anchor=self.gateway)
        carried, rerouted, parked, readmitted = self._partition(
            alive, unreachable)
        self._dead_nodes = dead_nodes
        self._dead_edges = dead_edges
        self.alive = alive
        self.unreachable = unreachable

        routes_changed = bool(rerouted or parked or readmitted)
        flows = list(carried.values())
        demands = self._demands(flows)
        conflicts = self.engine.conflict_index(
            alive, interference=self.interference,
            links=sorted(demands)).graph

        # 1. unchanged routes: the old schedule restricted to the demanded
        #    links may simply still be valid (down events only ever shrink
        #    the conflict graph; up events can grow it, hence the check).
        if not routes_changed:
            kept = self.schedule.restrict(set(demands))
            if (set(kept.links()) == set(demands)
                    and not kept.violations(conflicts)):
                self._commit(carried, kept,
                             bump=kept.to_dict() != self.schedule.to_dict())
                outcome = RepairOutcome(
                    feasible=True, strategy="local", schedule=self.schedule,
                    version=self.version)
                return self._record(outcome)

        # 2. local repair: old ranks + spliced-in new links, one BF pass.
        local = self._local_repair(flows, demands, conflicts)
        if local is not None:
            self._commit(carried, local, bump=True)
            outcome = RepairOutcome(
                feasible=True, strategy="local", schedule=self.schedule,
                version=self.version, rerouted=tuple(rerouted),
                parked=tuple(parked), readmitted=tuple(readmitted))
            return self._record(outcome)

        # 3. full re-solve, shedding newest-first if even that fails.  The
        #    empty carried set is trivially feasible, so this terminates.
        shed: list[str] = []
        # pop() sheds from the end: readmissions go first (a new arrival is
        # rejected before any established flow is disturbed), then rerouted
        # flows, then untouched carried flows, each newest-first.
        candidates = [n for n in carried
                      if n not in readmitted and n not in rerouted]
        candidates += list(rerouted) + list(readmitted)
        if self.shed_key is not None:
            # stable: within one priority level the newest-first order above
            # is preserved
            candidates.sort(key=self.shed_key)
        probes = 0
        while True:
            result = self._solve(list(carried.values()))
            probes += result.iterations
            if result.feasible:
                break
            victim = candidates.pop()
            del carried[victim]
            shed.append(victim)
        self._commit(carried, result.schedule
                     if result.schedule is not None
                     else Schedule(self.frame.data_slots), bump=True)
        outcome = RepairOutcome(
            feasible=not shed, strategy="resolve", schedule=self.schedule,
            version=self.version, rerouted=tuple(rerouted),
            parked=tuple(parked) + tuple(shed),
            readmitted=tuple(n for n in readmitted if n not in shed),
            ilp_probes=probes)
        return self._record(outcome)

    def peek_resolve(self, dead_nodes: Optional[frozenset[int]] = None,
                     dead_edges: Optional[frozenset[tuple[int, int]]] = None
                     ) -> MinSlotResult:
        """Full re-solve for a fault state, without mutating the engine.

        Defaults to the current fault state.  This is the baseline E17
        compares local repair against, and the oracle the property tests
        check the repair verdict with.
        """
        if dead_nodes is None:
            dead_nodes = self._dead_nodes
        if dead_edges is None:
            dead_edges = self._dead_edges
        alive, unreachable = surviving_topology(
            self.base_topology, dead_nodes, dead_edges, anchor=self.gateway)
        carried, _, _, _ = self._partition(alive, unreachable)
        return self._solve(list(carried.values()), topology=alive)

    # -- internals ----------------------------------------------------------

    def _noop(self) -> RepairOutcome:
        outcome = RepairOutcome(feasible=True, strategy="noop",
                                schedule=self.schedule, version=self.version)
        return self._record(outcome)

    def _record(self, outcome: RepairOutcome) -> RepairOutcome:
        obs.counter(f"core.repair.{outcome.strategy}").inc()
        if not outcome.feasible:
            obs.counter("core.repair.shed_passes").inc()
        if outcome.ilp_probes:
            obs.counter("core.repair.ilp_probes").inc(outcome.ilp_probes)
        self.history.append(outcome)
        return outcome

    def _route(self, base: Flow, topology: Optional[MeshTopology] = None
               ) -> Flow:
        topo = topology if topology is not None else self.alive
        return base.with_route(shortest_path_route(topo, base.src, base.dst))

    def _partition(self, alive: MeshTopology, unreachable: frozenset[int]
                   ) -> tuple[dict[str, Flow], list[str], list[str],
                              list[str]]:
        """Split managed flows against a candidate surviving topology.

        Returns (carried routed flows, rerouted names, newly-parked names,
        readmitted names); pure function of engine flow state + arguments.
        """
        carried: dict[str, Flow] = {}
        rerouted: list[str] = []
        parked: list[str] = []
        readmitted: list[str] = []
        for name, base in self._flows.items():
            was_carried = name in self._carried
            if base.src in unreachable or base.dst in unreachable:
                if was_carried:
                    parked.append(name)
                continue
            old = self._carried.get(name)
            if old is not None and all(alive.has_link(l) for l in old.route):
                carried[name] = old
            else:
                carried[name] = self._route(base, alive)
                (rerouted if was_carried else readmitted).append(name)
        return carried, rerouted, parked, readmitted

    def _demands(self, flows: list[Flow]) -> dict[Link, int]:
        return FlowSet(flows).link_demands(
            self.frame.frame_duration_s, self.frame.data_slot_capacity_bits)

    def _delay_constraints(self, flows: list[Flow]) -> list[DelayConstraint]:
        constraints = []
        for flow in flows:
            if flow.delay_budget_s is None:
                continue
            budget = self.budget_slots(flow)
            if budget < 1:
                raise ConfigurationError(
                    f"flow {flow.name}: budget below one slot")
            constraints.append(DelayConstraint(flow.name, flow.route, budget))
        return constraints

    def _solve(self, flows: list[Flow],
               topology: Optional[MeshTopology] = None) -> MinSlotResult:
        topo = topology if topology is not None else self.alive
        demands = self._demands(flows)
        conflicts = self.engine.conflict_index(
            topo, interference=self.interference,
            links=sorted(demands)).graph
        warm_order = (self._spliced_order(flows, demands)
                      if self.schedule is not None else None)
        return minimum_slots(
            conflicts, demands, self.frame.data_slots,
            delay_constraints=self._delay_constraints(flows),
            search=self.search,
            time_limit_per_probe=self.time_limit_per_probe_s,
            engine=self.engine, warm_order=warm_order)

    def _spliced_order(self, flows: list[Flow],
                       demands: dict[Link, int]) -> TransmissionOrder:
        """The old schedule's order with new route links spliced in.

        Surviving links keep the rank their old block start implies; each
        link new to the schedule is spliced in half a rank after its
        upstream neighbour on the (insertion-ordered) flow route that
        introduced it, so packets still flow downstream without extra
        wraps.  Rank ties resolve on the canonical link order inside
        :class:`TransmissionOrder`, keeping the repair deterministic.
        """
        ranks: dict[Link, float] = {
            link: float(block.start) for link, block in self.schedule.items()
            if link in demands}
        for flow in flows:
            prev = -1.0
            for link in flow.route:
                if link in ranks:
                    prev = ranks[link]
                else:
                    ranks[link] = prev + 0.5
                    prev = ranks[link]
        return TransmissionOrder(ranks)

    def _local_repair(self, flows: list[Flow], demands: dict[Link, int],
                      conflicts) -> Optional[Schedule]:
        """Order-preserving Bellman-Ford repair; None if infeasible."""
        order = self._spliced_order(flows, demands)
        try:
            schedule = schedule_from_order(conflicts, demands,
                                           self.frame.data_slots, order)
        except InfeasibleScheduleError:
            return None
        for flow in flows:
            if flow.delay_budget_s is None:
                continue
            if path_delay_slots(schedule, flow.route) > self.budget_slots(flow):
                return None
        return schedule

    def _commit(self, carried: dict[str, Flow], schedule: Schedule,
                bump: bool) -> None:
        self._carried = carried
        self.schedule = schedule
        if bump:
            self.version += 1
