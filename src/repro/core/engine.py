"""The incremental solver engine: shared conflict indexes, warm-started
probe searches, and cross-layer problem caching.

The paper line's minimum-slots search (NET-COOP) probes a sequence of
nearly-identical feasibility ILPs, and the ToN companion recovers schedules
from a fixed order with one Bellman-Ford pass over the conflict graph.  A
:class:`SolverEngine` exploits that structure instead of treating every
probe, repair and sweep point as a cold solve:

1. **Cached conflict-graph layer.**  :meth:`SolverEngine.conflict_index`
   returns an immutable :class:`ConflictIndex` -- the conflict graph plus
   CSR adjacency and the per-node incidence that backs the clique demand
   bound -- keyed by a topology/links/hops fingerprint and kept in a small
   LRU, so minslots, repair, distributed validation and analysis share one
   build per scenario instead of each calling
   :func:`~repro.core.conflict.conflict_graph` independently.
   :meth:`SolverEngine.interference_index` does the same for the *exact*
   interference relation (:func:`repro.phy.interference.interference_graph`)
   that the distributed DSCH handshake packs against.  Cache *misses* on
   a churning topology are answered incrementally where possible: the
   request is diffed against the last index of the same hops value and
   only the dirty links are rescanned (:func:`updated_conflict_edges`),
   turning the per-event quadratic rebuild that used to dominate
   churn-heavy workloads into work proportional to the change --
   ``core.engine.delta_updates`` vs ``core.engine.index_builds`` count
   the rebuilds avoided.

2. **Warm-started probe search.**  Inside one
   :func:`~repro.core.minslots.minimum_slots` search the engine carries the
   last feasible probe's :class:`~repro.core.ordering.TransmissionOrder`
   forward.  Before paying for the next ILP it runs a Bellman-Ford pass
   over the carried order at the candidate region: if the recovered
   earliest schedule fits and meets every delay budget, the probe's verdict
   is certified *without the solver* (the monotone case).  ``scipy``'s
   ``milp`` cannot accept an incumbent, so the carried solution becomes a
   shortcut rather than a solver hint -- the counters
   ``core.engine.ilp_probes`` vs ``core.engine.bf_shortcuts`` prove how
   often the expensive solver is skipped.  When the *winning* probe was
   BF-certified, the engine re-solves that one region through the canonical
   ILP so the returned result is bitwise-identical to a cold search
   (schedule table, order, probe log; only wall-clock ``solve_seconds``
   differ, as they always do).

3. **Canonical problem hashing.**  :meth:`SolverEngine.solve` keys solved
   ``(problem, K)`` pairs in an in-process LRU under
   :func:`canonical_problem_key` -- a content hash over the conflict edges,
   demands, frame geometry and delay constraints, salted with the package
   version and source fingerprint exactly like the runtime's task keys --
   so sweeps that share subproblems hit the cache instead of HiGHS.

Cache scoping and the observability contract
--------------------------------------------
:mod:`repro.obs` snapshots are *deterministic*: identical runs must produce
byte-identical counter JSON, and merged per-task registries must be
identical for any ``--jobs`` (S33).  A process-global cache would break
that (the second identical run would count fewer solves), so caches are
scoped to an **owning object**: :class:`~repro.api.Scenario`,
:class:`~repro.core.repair.RepairEngine` and each experiment construct a
fresh ``SolverEngine()`` whose caches live and die with them, while the
module-level :func:`default_engine` -- which backs the bare public
functions -- is *stateless* (warm-start only, no cross-call caches).
Warm-start shortcuts are a pure function of one search's inputs, so they
are deterministic everywhere.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import replace
from typing import Mapping, Optional, Sequence

import networkx as nx
import numpy as np

from repro import obs
from repro.core.conflict import conflict_graph
from repro.core.ilp import (
    DelayConstraint,
    ILPResult,
    SchedulingProblem,
    solve_schedule_ilp,
)
from repro.core.ordering import TransmissionOrder, schedule_from_order
from repro.core.policy import SolverPolicy
from repro.core.schedule import Schedule
from repro.errors import (
    ConfigurationError,
    InfeasibleScheduleError,
    SolverError,
)
from repro.net.topology import Link, MeshTopology

#: Sentinel solver status marking a probe verdict certified by Bellman-Ford
#: instead of an ILP solve.  Never escapes a search: the winning probe is
#: always re-solved canonically before a result is returned.
BF_CERTIFIED = "bf-certified"


def _fingerprint_token(topology: MeshTopology) -> tuple:
    """Cheap structural signature guarding the memoized fingerprint.

    Combines the topology's monotone mutation counter
    (:meth:`~repro.net.topology.MeshTopology.apply_edge_changes` bumps it)
    with the node and edge counts, so both sanctioned in-place mutation
    and direct ``topology.graph`` edits that change either count
    invalidate the cache instead of silently serving a stale fingerprint
    -- and, through it, a stale cached :class:`ConflictIndex`.
    """
    return (getattr(topology, "mutations", 0),
            topology.graph.number_of_nodes(),
            topology.graph.number_of_edges())


def topology_fingerprint(topology: MeshTopology) -> str:
    """Content hash of a topology's connectivity (nodes + undirected edges).

    Positions and the display name are irrelevant to scheduling, so two
    topologies with the same connectivity share a fingerprint -- and hence
    share cached conflict indexes.  The hash is memoized on the topology
    object, keyed by :func:`_fingerprint_token`, so it survives repeated
    lookups but never an in-place mutation.
    """
    token = _fingerprint_token(topology)
    cached = getattr(topology, "_repro_fingerprint", None)
    if isinstance(cached, tuple) and cached[0] == token:
        return cached[1]
    digest = hashlib.sha256()
    digest.update(repr(sorted(topology.graph.nodes)).encode())
    digest.update(repr(sorted(tuple(sorted(e))
                              for e in topology.graph.edges)).encode())
    fingerprint = digest.hexdigest()[:16]
    try:
        topology._repro_fingerprint = (token, fingerprint)
    except AttributeError:  # pragma: no cover - exotic topology subclass
        pass
    return fingerprint


def _edges_fingerprint(graph: nx.Graph) -> str:
    """Content hash of a conflict graph (vertices + edges)."""
    digest = hashlib.sha256()
    digest.update(repr(sorted(graph.nodes)).encode())
    digest.update(repr(sorted(tuple(sorted(e)) for e in graph.edges)).encode())
    return digest.hexdigest()[:16]


_SALT_CACHE: list[str] = []


def _cache_salt() -> str:
    """Version + source fingerprint, matching the runtime content-hash keys.

    Imported lazily: :mod:`repro.runtime` sits above :mod:`repro.core` in
    the layer diagram, so the dependency must not exist at import time.
    """
    if not _SALT_CACHE:
        import repro

        try:
            from repro.runtime.tasks import source_fingerprint

            salt = f"{repro.__version__}:{source_fingerprint()}"
        except ImportError:  # pragma: no cover - trimmed installs
            salt = repro.__version__
        _SALT_CACHE.append(salt)
    return _SALT_CACHE[0]


def canonical_problem_key(problem: SchedulingProblem,
                          time_limit: Optional[float] = None,
                          node_limit: Optional[int] = None) -> str:
    """Content hash identifying a ``(problem, K)`` pair.

    Two problems share a key iff they have the same conflict edges, the
    same demands, the same frame geometry (frame length *and* region), the
    same delay constraints and objective, and the same solver budgets
    (wall-clock ``time_limit`` and branch-and-cut ``node_limit``) -- a
    budget change can flip a verdict, so budget-distinct solves must not
    share a cache entry.  The key is salted with the package version and
    source fingerprint, the same invalidation discipline as
    :func:`repro.runtime.tasks.task_key`, so it stays meaningful if
    persisted next to runtime artifacts.
    """
    digest = hashlib.sha256()
    digest.update(_cache_salt().encode())
    digest.update(_edges_fingerprint(problem.conflicts).encode())
    digest.update(repr(sorted(problem.demands.items())).encode())
    digest.update(repr((problem.frame_slots, problem.effective_region,
                        problem.minimize_max_delay, time_limit,
                        node_limit)).encode())
    digest.update(repr([(c.name, c.route, c.budget_slots)
                        for c in problem.delay_constraints]).encode())
    return digest.hexdigest()[:24]


class ConflictIndex:
    """An immutable, shareable view of one conflict (or interference) graph.

    Wraps the :mod:`networkx` graph every existing consumer expects
    (:attr:`graph`) and adds the precomputed structure repeated solves
    want: CSR adjacency over the canonical link ordering
    (:attr:`indptr`/:attr:`indices`) and the per-node link incidence
    backing :meth:`clique_demand_bound`.

    ``hops`` is the protocol-model distance, or ``None`` for the exact
    interference relation.  Treat instances (and :attr:`graph`) as frozen:
    they are shared across every consumer of the owning engine.

    Protocol-model indexes built through :meth:`SolverEngine.conflict_index`
    additionally carry a snapshot of the topology they were computed from
    (:attr:`topo_nodes` / :attr:`topo_edges`, undirected sorted pairs).
    The snapshot is what makes *delta updates* possible: a later request
    for a slightly different topology/link set can be diffed against it
    and answered by rescanning only the dirty links instead of rebuilding
    the whole quadratic pairwise conflict relation (see
    :meth:`SolverEngine.delta_index`).
    """

    __slots__ = ("key", "hops", "links", "graph", "indptr", "indices",
                 "_positions", "_node_links", "topo_nodes", "topo_edges")

    def __init__(self, key: str, hops: Optional[int],
                 graph: nx.Graph,
                 topo_nodes: Optional[frozenset[int]] = None,
                 topo_edges: Optional[frozenset[tuple[int, int]]] = None
                 ) -> None:
        self.key = key
        self.hops = hops
        self.graph = graph
        self.topo_nodes = topo_nodes
        self.topo_edges = topo_edges
        self.links: tuple[Link, ...] = tuple(sorted(graph.nodes))
        self._positions = {link: i for i, link in enumerate(self.links)}
        indptr = np.zeros(len(self.links) + 1, dtype=np.int64)
        flat: list[int] = []
        for i, link in enumerate(self.links):
            row = sorted(self._positions[other]
                         for other in graph.neighbors(link))
            flat.extend(row)
            indptr[i + 1] = len(flat)
        self.indptr = indptr
        self.indices = np.asarray(flat, dtype=np.int64)
        node_links: dict[int, list[Link]] = {}
        for link in self.links:
            for node in link:
                node_links.setdefault(node, []).append(link)
        self._node_links = {node: tuple(ls)
                            for node, ls in node_links.items()}

    @property
    def num_links(self) -> int:
        return len(self.links)

    @property
    def num_conflicts(self) -> int:
        return int(self.indices.size // 2)

    def position(self, link: Link) -> int:
        """Stable index of ``link`` in the canonical :attr:`links` order."""
        try:
            return self._positions[link]
        except KeyError:
            raise ConfigurationError(
                f"{link} is not a vertex of this conflict index") from None

    def neighbors(self, link: Link) -> tuple[Link, ...]:
        """Links conflicting with ``link``, in canonical order."""
        i = self.position(link)
        return tuple(self.links[j]
                     for j in self.indices[self.indptr[i]:self.indptr[i + 1]])

    def degree(self, link: Link) -> int:
        i = self.position(link)
        return int(self.indptr[i + 1] - self.indptr[i])

    def clique_demand_bound(self, demands: Mapping[Link, int]) -> int:
        """The node-induced clique lower bound on frame slots.

        Identical to
        :func:`~repro.core.conflict.max_conflict_clique_demand` (all links
        incident to one node mutually conflict under any ``k >= 1`` model),
        computed from the precomputed incidence.
        """
        per_node: dict[int, int] = {}
        for link, demand in demands.items():
            if demand < 0:
                raise ConfigurationError(f"negative demand on {link}")
            for node in link:
                per_node[node] = per_node.get(node, 0) + demand
        return max(per_node.values()) if per_node else 0


def _topology_snapshot(topology: MeshTopology
                       ) -> tuple[frozenset[int],
                                  frozenset[tuple[int, int]]]:
    """The (nodes, undirected sorted edges) snapshot a delta diffs against."""
    return (frozenset(topology.graph.nodes),
            frozenset(tuple(sorted(e)) for e in topology.graph.edges))


def _ball(neighbors, seeds, cutoff: int) -> set[int]:
    """Multi-source BFS ball: every node within ``cutoff`` hops of a seed."""
    seen = set(seeds)
    frontier = list(seeds)
    for _ in range(cutoff):
        if not frontier:
            break
        nxt = []
        for node in frontier:
            for other in neighbors(node):
                if other not in seen:
                    seen.add(other)
                    nxt.append(other)
        frontier = nxt
    return seen


def updated_conflict_edges(old: "ConflictIndex", topology: MeshTopology,
                           hops: int, link_list: Sequence[Link]
                           ) -> Optional[set[tuple[Link, Link]]]:
    """Conflict-edge set for ``(topology, link_list)``, delta-updated.

    Diffs the request against the ``old`` index's stored topology
    snapshot and link set, identifies the *dirty* links -- added links
    plus links whose endpoints' ``hops - 1`` reach sets may have changed
    -- and rescans only those rows against the new topology.  Conflict
    rows between clean links are provably unchanged: under the protocol
    model, ``conflict(a, b)`` depends only on ``a``'s endpoint reach
    sets and ``b``'s endpoint identities, so an untouched reach set
    means an untouched row.

    Returns ``None`` when the delta cannot be applied (the old index has
    no snapshot, or its hops differ) or would not pay (more than half
    the links are dirty -- a rebuild is no slower then).  The returned
    edge set is *semantically identical* to a cold
    :func:`~repro.core.conflict.conflict_graph` build: the equivalence
    is property-tested in ``tests/test_property_mobility.py``.
    """
    if old.topo_edges is None or old.topo_nodes is None or old.hops != hops:
        return None
    new_nodes, new_edges = _topology_snapshot(topology)
    seeds: set[int] = set(old.topo_nodes ^ new_nodes)
    for u, v in old.topo_edges ^ new_edges:
        seeds.add(u)
        seeds.add(v)
    old_set = set(old.links)
    new_set = set(link_list)
    if seeds:
        old_adj: dict[int, list[int]] = {}
        for u, v in old.topo_edges:
            old_adj.setdefault(u, []).append(v)
            old_adj.setdefault(v, []).append(u)
        graph = topology.graph
        dirty_nodes = (_ball(lambda n: old_adj.get(n, ()), seeds, hops - 1)
                       | _ball(lambda n: (graph.neighbors(n)
                                          if n in graph else ()),
                               seeds, hops - 1))
    else:
        dirty_nodes = set()
    dirty = {link for link in new_set
             if link not in old_set
             or link[0] in dirty_nodes or link[1] in dirty_nodes}
    if 2 * len(dirty) > len(new_set):
        return None
    clean = new_set - dirty
    edges: set[tuple[Link, Link]] = set()
    for a, b in old.graph.edges:
        if a in clean and b in clean:
            edges.add((a, b) if a <= b else (b, a))
    # Rescan dirty rows against the node -> links incidence: under the
    # protocol model conflict(a, b) holds iff b touches ``near_a`` (the
    # shared-endpoint case is subsumed -- reach includes the source), so
    # the scan is proportional to the rows' output, not to |links|.
    incidence: dict[int, list[Link]] = {}
    for link in link_list:
        incidence.setdefault(link[0], []).append(link)
        incidence.setdefault(link[1], []).append(link)
    reach: dict[int, set[int]] = {}
    graph = topology.graph
    for a in dirty:
        near_a: set[int] = set()
        for node in a:
            if node not in reach:
                reach[node] = set(nx.single_source_shortest_path_length(
                    graph, node, cutoff=hops - 1))
            near_a |= reach[node]
        for node in near_a:
            for b in incidence.get(node, ()):
                if b != a:
                    edges.add((a, b) if a <= b else (b, a))
    return edges


def _graph_from_conflicts(link_list: Sequence[Link],
                          edges: set[tuple[Link, Link]]) -> nx.Graph:
    """Materialize a conflict graph with the canonical insertion order.

    Nodes in sorted link order, edges in sorted lexicographic order --
    exactly the order :func:`~repro.core.conflict.conflict_graph`'s
    pairwise scan produces, so a delta-built graph is indistinguishable
    from a rebuilt one right down to adjacency iteration order.
    """
    graph = nx.Graph()
    graph.add_nodes_from(link_list)
    graph.add_edges_from(sorted(edges))
    return graph


class SolverEngine:
    """Shared, incremental front end to the scheduling solver stack.

    Parameters
    ----------
    warm_start:
        Carry each feasible probe's transmission order into later probes
        and certify their verdicts with a Bellman-Ford pass where possible
        (see the module docstring).  ``False`` gives the cold reference
        behaviour; results are bitwise-identical either way.
    max_indexes, max_problems:
        LRU capacities of the conflict-index and solved-problem caches.
        ``0`` disables a cache entirely -- the configuration of the
        module-level :func:`default_engine`, which must stay stateless so
        the deterministic-observability contract holds for the bare public
        functions.
    delta_updates:
        When a :meth:`conflict_index` request misses the cache but a
        previously-built index for the same ``hops`` exists, diff the two
        and rescan only the dirty links instead of rebuilding the whole
        pairwise conflict relation (:func:`updated_conflict_edges`).  The
        resulting index is semantically identical to a rebuild;
        ``stats["delta_updates"]`` / the ``core.engine.delta_updates``
        counter record the rebuilds avoided.  Requires ``max_indexes > 0``
        (the stateless default engine never delta-updates).  ``False``
        gives the rebuild-always reference behaviour -- the baseline arm
        of experiment E20.
    policy:
        The engine's default :class:`~repro.core.policy.SolverPolicy`
        (also accepts a mode string or ``None`` for the default
        ``"auto"`` policy).  Searches run through this engine without an
        explicit ``policy=``/``solver=`` use it; per-call arguments still
        win.
    """

    def __init__(self, warm_start: bool = True, max_indexes: int = 32,
                 max_problems: int = 128,
                 delta_updates: bool = True,
                 policy: "SolverPolicy | str | None" = None) -> None:
        if max_indexes < 0 or max_problems < 0:
            raise ConfigurationError("cache sizes must be non-negative")
        self.warm_start = warm_start
        self.max_indexes = max_indexes
        self.max_problems = max_problems
        self.delta_updates = delta_updates
        self.policy = SolverPolicy.coerce(policy)
        self._indexes: OrderedDict[tuple, ConflictIndex] = OrderedDict()
        #: Zone-subproblem indexes live in their own LRU: a city-scale
        #: zoned solve requests dozens of small subindexes per search, and
        #: routing them through ``_indexes`` would evict the full-mesh
        #: index that repair and validation share (and poison the
        #: ``_delta_bases`` lineage).  Keyed by (base fingerprint, zone
        #: fingerprint) so identical zones of identical meshes hit.
        self._zone_indexes: OrderedDict[tuple, ConflictIndex] = OrderedDict()
        self._problems: OrderedDict[str, ILPResult] = OrderedDict()
        #: most recently used protocol-model index per (hops, full-links?)
        #: lineage: the base the next cache miss is diffed against.  Churny
        #: workloads mutate one topology a little at a time, so the last
        #: index is almost always the cheapest base -- but whole-topology
        #: requests and explicit-subset requests (e.g. a repair engine's
        #: demand links) interleave, and diffing one against the other
        #: marks every link dirty.  Keeping one lineage per kind keeps
        #: both diffs small.
        self._delta_bases: dict[tuple[int, bool], ConflictIndex] = {}
        #: actual-work accounting (plain ints, independent of :mod:`repro.obs`):
        #: cache effectiveness is a property of this engine's lifetime, not
        #: of the workload, so it lives here rather than in the registry.
        self.stats = {
            "index_builds": 0, "index_hits": 0,
            "delta_updates": 0,
            "zone_index_builds": 0, "zone_index_hits": 0,
            "ilp_solves": 0, "problem_hits": 0,
            "ilp_probes": 0, "bf_shortcuts": 0,
        }

    # -- conflict-graph layer -------------------------------------------------

    def conflict_index(self, topology: MeshTopology,
                       hops: Optional[int] = None,
                       links: Optional[Sequence[Link]] = None,
                       interference=None) -> ConflictIndex:
        """The (cached) :class:`ConflictIndex` for a topology/links/model key.

        The interference backend is either ``hops`` (the k-hop protocol
        model; default 2, the pre-seam behaviour) or ``interference=`` --
        an :class:`~repro.phy.models.InterferenceModel` or a bare hops
        integer.  A :class:`~repro.phy.models.ProtocolModel` routes
        through exactly the pre-seam path: same cache key (the bare hops
        int), same delta lineage, same
        :func:`~repro.core.conflict.conflict_graph` build -- bitwise
        identical.  Other models (e.g.
        :class:`~repro.phy.models.SinrModel`) are keyed by their
        :meth:`~repro.phy.models.InterferenceModel.cache_token` (which
        folds in positions and parameters -- the topology fingerprint
        covers connectivity only) and always build through the model;
        they never join the protocol delta lineage.

        Protocol-path misses are answered by the cheapest correct path:
        an incremental delta update against the last index of the same
        ``hops`` when the diff is small (see ``delta_updates``), a full
        build otherwise.  Either way the result is identical and lands
        in the same LRU.
        """
        from repro.phy.models import ProtocolModel, coerce_interference

        if hops is not None and interference is not None:
            raise ConfigurationError(
                "pass either hops= or interference=, not both")
        if hops is not None and (not isinstance(hops, int)
                                 or isinstance(hops, bool) or hops < 1):
            raise ConfigurationError(
                f"interference model needs hops >= 1, got {hops}")
        model = coerce_interference(interference,
                                    default_hops=2 if hops is None else hops)
        if not isinstance(model, ProtocolModel):
            return self._model_index(model, topology, links)
        hops = model.hops
        link_key = None if links is None else tuple(sorted(set(links)))
        key = ("conflict", topology_fingerprint(topology), hops, link_key)
        cached = self._indexes.get(key)
        if cached is not None:
            self._indexes.move_to_end(key)
            self.stats["index_hits"] += 1
            obs.counter("core.engine.index_hits").inc()
            self._delta_bases[(hops, link_key is None)] = cached
            return cached
        if link_key is None:
            link_list: Sequence[Link] = list(topology.links)
        else:
            link_list = list(link_key)
            for link in link_list:
                if not topology.has_link(link):
                    raise ConfigurationError(
                        f"{link} is not a link of the topology")
        index: Optional[ConflictIndex] = None
        base = (self._delta_bases.get((hops, link_key is None))
                if self.delta_updates and self.max_indexes > 0 else None)
        if base is not None:
            edges = updated_conflict_edges(base, topology, hops, link_list)
            if edges is not None:
                index = ConflictIndex(
                    "/".join(map(repr, key)), hops,
                    _graph_from_conflicts(link_list, edges),
                    *_topology_snapshot(topology))
                self.stats["delta_updates"] += 1
                obs.counter("core.engine.delta_updates").inc()
        if index is None:
            index = ConflictIndex(
                "/".join(map(repr, key)), hops,
                conflict_graph(topology, hops=hops, links=link_list),
                *_topology_snapshot(topology))
            self.stats["index_builds"] += 1
            obs.counter("core.engine.index_builds").inc()
        obs.counter("core.interference.protocol_edges").inc(
            index.num_conflicts)
        if self.max_indexes > 0:
            self._indexes[key] = index
            while len(self._indexes) > self.max_indexes:
                self._indexes.popitem(last=False)
            self._delta_bases[(hops, link_key is None)] = index
        return index

    def _model_index(self, model, topology: MeshTopology,
                     links: Optional[Sequence[Link]]) -> ConflictIndex:
        """Index for a non-protocol interference backend (e.g. SINR).

        Keyed by the model's content token next to the connectivity
        fingerprint; built through the model, cached in the same LRU as
        protocol indexes but kept out of the delta lineage (there is no
        delta rule for SINR conflicts -- a position change can touch any
        pair).  ``index.hops`` is ``None``, like the exact interference
        relation's.
        """
        link_key = None if links is None else tuple(sorted(set(links)))
        key = ("conflict", topology_fingerprint(topology),
               model.cache_token(topology), link_key)
        cached = self._indexes.get(key)
        if cached is not None:
            self._indexes.move_to_end(key)
            self.stats["index_hits"] += 1
            obs.counter("core.engine.index_hits").inc()
            return cached
        graph = model.conflict_graph(
            topology, links=None if link_key is None else list(link_key))
        index = ConflictIndex("/".join(map(repr, key)), None, graph)
        self.stats["index_builds"] += 1
        obs.counter("core.engine.index_builds").inc()
        obs.counter(f"core.interference.{model.kind}_edges").inc(
            index.num_conflicts)
        if self.max_indexes > 0:
            self._indexes[key] = index
            while len(self._indexes) > self.max_indexes:
                self._indexes.popitem(last=False)
        return index

    def zone_index(self, base: ConflictIndex,
                   links: Sequence[Link]) -> ConflictIndex:
        """The (cached) conflict subindex induced by a zone's links.

        ``base`` is the full-mesh index the zone was partitioned from;
        the subindex wraps the conflict subgraph induced by ``links``
        (canonical node and edge insertion order, so it is
        indistinguishable from a direct build).  Zone requests are keyed
        by ``(base.key, zone fingerprint)`` in a **dedicated LRU** --
        zoned solves touch dozens of zones per search, and sharing the
        main index cache would evict the full-mesh entry every consumer
        relies on.  ``stats["zone_index_hits"]`` and the
        ``core.engine.zone_index_hits`` counter record the re-partitions
        answered from cache.
        """
        zone = tuple(sorted(set(links)))
        digest = hashlib.sha256(repr(zone).encode()).hexdigest()[:16]
        key = ("zone", base.key, digest)
        cached = self._zone_indexes.get(key)
        if cached is not None:
            self._zone_indexes.move_to_end(key)
            self.stats["zone_index_hits"] += 1
            obs.counter("core.engine.zone_index_hits").inc()
            return cached
        for link in zone:
            base.position(link)  # membership check with the usual error
        members = set(zone)
        edges = {(a, b) if a <= b else (b, a)
                 for a in zone for b in base.neighbors(a) if b in members}
        index = ConflictIndex("/".join(map(repr, key)), base.hops,
                              _graph_from_conflicts(zone, edges))
        self.stats["zone_index_builds"] += 1
        obs.counter("core.engine.zone_index_builds").inc()
        if self.max_indexes > 0:
            self._zone_indexes[key] = index
            # Zones are small and numerous; give them headroom without
            # letting a 5000-link sweep hold every subindex forever.
            while len(self._zone_indexes) > 4 * self.max_indexes:
                self._zone_indexes.popitem(last=False)
        return index

    def interference_index(self, topology: MeshTopology) -> ConflictIndex:
        """The (cached) index of the exact interference relation.

        This is the relation the distributed DSCH handshake enforces by
        overhearing (:mod:`repro.mesh16.distributed`); it is *tighter*
        than the 2-hop protocol model, so distributed outcomes must be
        validated against it, not against :meth:`conflict_index`.
        """
        from repro.phy.interference import interference_graph

        key = ("interference", topology_fingerprint(topology))
        return self._index_for(
            key, None, lambda: interference_graph(topology))

    def _index_for(self, key: tuple, hops: Optional[int],
                   build) -> ConflictIndex:
        cached = self._indexes.get(key)
        if cached is not None:
            self._indexes.move_to_end(key)
            self.stats["index_hits"] += 1
            obs.counter("core.engine.index_hits").inc()
            return cached
        index = ConflictIndex("/".join(map(repr, key)), hops, build())
        self.stats["index_builds"] += 1
        obs.counter("core.engine.index_builds").inc()
        if self.max_indexes > 0:
            self._indexes[key] = index
            while len(self._indexes) > self.max_indexes:
                self._indexes.popitem(last=False)
        return index

    # -- cached ILP layer -----------------------------------------------------

    def solve(self, problem: SchedulingProblem,
              time_limit: Optional[float] = None,
              node_limit: Optional[int] = None) -> ILPResult:
        """:func:`~repro.core.ilp.solve_schedule_ilp` through the problem cache.

        Cache hits return a private copy (fresh :class:`Schedule` /
        :class:`TransmissionOrder` objects), so callers may mutate results
        freely; only deterministic fields are shared, and ``solve_seconds``
        reports the original solve's wall clock.  ``node_limit`` caps the
        branch-and-cut tree deterministically (see
        :func:`~repro.core.ilp.solve_schedule_ilp`); both budgets are part
        of the cache key.
        """
        key = canonical_problem_key(problem, time_limit, node_limit)
        cached = self._problems.get(key)
        if cached is not None:
            self._problems.move_to_end(key)
            self.stats["problem_hits"] += 1
            obs.counter("core.engine.problem_hits").inc()
            return _copy_result(cached)
        result = solve_schedule_ilp(problem, time_limit=time_limit,
                                    node_limit=node_limit)
        self.stats["ilp_solves"] += 1
        if self.max_problems > 0:
            self._problems[key] = _copy_result(result)
            while len(self._problems) > self.max_problems:
                self._problems.popitem(last=False)
        return result

    # -- warm-started order certification ------------------------------------

    def certify_order(self, conflicts: nx.Graph, demands: Mapping[Link, int],
                      frame_slots: int, region: int,
                      delay_constraints: Sequence[DelayConstraint],
                      order: TransmissionOrder) -> Optional[Schedule]:
        """Certify region-``K`` feasibility from a carried order, or ``None``.

        One Bellman-Ford pass recovers the componentwise-earliest schedule
        consistent with ``order`` inside the first ``region`` slots; if it
        exists and every delay budget holds *at the full frame length*
        (wrap cost stays ``frame_slots``), the problem is feasible at this
        region -- the ILP would only rediscover that.  Failure certifies
        nothing: a different order may still fit, so the caller falls back
        to the solver.
        """
        from repro.core.delay import path_delay_slots

        try:
            packed = schedule_from_order(conflicts, demands, region, order)
        except (InfeasibleScheduleError, ConfigurationError):
            # Infeasible under *this* order, or the order does not cover
            # the demanded links (e.g. a caller-supplied warm order from a
            # pre-fault schedule): no certificate.
            return None
        schedule = Schedule(frame_slots,
                            dict(packed.items()))
        for constraint in delay_constraints:
            if (path_delay_slots(schedule, constraint.route)
                    > constraint.budget_slots):
                return None
        return schedule

    # -- warm-started minimum-slots search -----------------------------------

    def minimum_slots(self, conflicts: nx.Graph, demands: Mapping[Link, int],
                      frame_slots: int,
                      delay_constraints: Sequence[DelayConstraint] = (),
                      search: Optional[str] = None,
                      max_region: Optional[int] = None,
                      time_limit_per_probe: Optional[float] = None,
                      warm_order: Optional[TransmissionOrder] = None,
                      policy: "SolverPolicy | str | None" = None):
        """:func:`~repro.core.minslots.minimum_slots` through this engine.

        With no ``policy=`` the engine's own :attr:`policy` governs the
        solve; explicit ``search=``/``max_region=``/``time_limit_per_probe=``
        arguments override the matching policy knobs either way.
        """
        from repro.core.minslots import minimum_slots

        return minimum_slots(
            conflicts, demands, frame_slots,
            delay_constraints=delay_constraints, search=search,
            max_region=max_region,
            time_limit_per_probe=time_limit_per_probe,
            engine=self, warm_order=warm_order, policy=policy)

    def run_search(self, conflicts: nx.Graph, demands: Mapping[Link, int],
                   frame_slots: int,
                   delay_constraints: Sequence[DelayConstraint],
                   search: str, ceiling: int,
                   time_limit_per_probe: Optional[float],
                   warm_order: Optional[TransmissionOrder] = None,
                   node_limit_per_probe: Optional[int] = None):
        """The probe loop behind :func:`~repro.core.minslots.minimum_slots`.

        Identical search structure and probe log as the pre-engine code;
        the only additions are the warm-start shortcut inside ``probe``
        and the canonical re-solve of a BF-certified winner.  Callers go
        through :func:`repro.core.minslots.minimum_slots`, which owns the
        argument validation and search-level telemetry.

        ``node_limit_per_probe`` bounds each ILP probe's branch-and-cut
        tree instead of (or in addition to) the wall clock; a probe that
        exhausts either budget undecided is treated as infeasible.  The
        node budget is *deterministic* -- the same probe reaches the same
        verdict regardless of machine load -- which is what keeps zoned
        solves bitwise-identical between serial and parallel runs.
        """
        from repro.core.minslots import MinSlotResult, demand_lower_bound

        lower = max(1, demand_lower_bound(conflicts, demands))
        probes: list[tuple[int, bool]] = []
        carried: Optional[TransmissionOrder] = (
            warm_order if self.warm_start else None)

        def probe(region: int) -> ILPResult:
            nonlocal carried
            obs.counter("core.minslots.probes").inc()
            problem = SchedulingProblem(
                conflicts=conflicts, demands=dict(demands),
                frame_slots=frame_slots,
                delay_constraints=tuple(delay_constraints),
                region_slots=region)
            if carried is not None:
                certified = self.certify_order(
                    conflicts, demands, frame_slots, region,
                    delay_constraints, carried)
                if certified is not None:
                    self.stats["bf_shortcuts"] += 1
                    obs.counter("core.engine.bf_shortcuts").inc()
                    probes.append((region, True))
                    return ILPResult(True, certified, carried, None, 0.0,
                                     BF_CERTIFIED, 0, 0)
            self.stats["ilp_probes"] += 1
            obs.counter("core.engine.ilp_probes").inc()
            try:
                result = self.solve(problem, time_limit=time_limit_per_probe,
                                    node_limit=node_limit_per_probe)
            except SolverError:
                # Undecided within the probe's budget (wall clock or node
                # count): treat as infeasible.  Conservative for admission
                # control (a call is rejected, never wrongly admitted);
                # the probe log records it like any miss.
                obs.counter("core.minslots.probe_timeouts").inc()
                result = ILPResult(False, None, None, None,
                                   time_limit_per_probe or 0.0,
                                   "probe budget exhausted", 0, 0)
            if not result.feasible:
                obs.counter("core.minslots.probes_infeasible").inc()
            elif self.warm_start and result.order is not None:
                carried = result.order
            probes.append((region, result.feasible))
            return result

        def finish(slots: Optional[int],
                   ilp: Optional[ILPResult],
                   bound: int,
                   region: Optional[int] = None) -> "MinSlotResult":
            """Resolve a BF-certified winner through the canonical ILP.

            The shortcut decides probe *verdicts*; the returned schedule
            and order must be the cold path's, so the winning region is
            solved once for real.  Every earlier certified probe stays a
            saved solve -- this trade keeps results bitwise-identical
            while still doing strictly less ILP work whenever more than
            one probe was certified.
            """
            if ilp is not None and ilp.solver_status == BF_CERTIFIED:
                problem = SchedulingProblem(
                    conflicts=conflicts, demands=dict(demands),
                    frame_slots=frame_slots,
                    delay_constraints=tuple(delay_constraints),
                    region_slots=slots if region is None else region)
                try:
                    ilp = self.solve(problem,
                                     time_limit=time_limit_per_probe,
                                     node_limit=node_limit_per_probe)
                except SolverError:
                    # The certificate *is* a valid feasible solution; keep
                    # it rather than fail the search on a solver timeout.
                    pass
            return MinSlotResult(slots=slots, ilp=ilp, lower_bound=bound,
                                 probes=probes)

        if not any(d > 0 for d in demands.values()):
            empty = probe(1)
            return finish(0 if empty.feasible else None, empty, 0, region=1)

        if lower > ceiling:
            return MinSlotResult(slots=None, ilp=None, lower_bound=lower,
                                 probes=probes)

        if search == "linear":
            for region in range(lower, ceiling + 1):
                result = probe(region)
                if result.feasible:
                    return finish(region, result, lower)
            return MinSlotResult(slots=None, ilp=None, lower_bound=lower,
                                 probes=probes)

        # Binary search: feasibility is monotone in the region size for a
        # fixed frame length.  Establish feasibility at the ceiling first.
        best: Optional[ILPResult] = None
        best_region: Optional[int] = None
        low, high = lower, ceiling
        top = probe(high)
        if not top.feasible:
            return MinSlotResult(slots=None, ilp=None, lower_bound=lower,
                                 probes=probes)
        best, best_region = top, high
        high -= 1
        while low <= high:
            mid = (low + high) // 2
            result = probe(mid)
            if result.feasible:
                best, best_region = result, mid
                high = mid - 1
            else:
                low = mid + 1
        return finish(best_region, best, lower)


def _copy_result(result: ILPResult) -> ILPResult:
    """A structurally-fresh copy of an ILP result (cache isolation)."""
    schedule = result.schedule
    if schedule is not None:
        schedule = Schedule(schedule.frame_slots, dict(schedule.items()))
    order = result.order
    if order is not None:
        order = order.copy()
    return replace(result, schedule=schedule, order=order)


#: Module-level default engine backing the bare public functions
#: (:func:`~repro.core.minslots.minimum_slots` with no ``engine=``).
#: Deliberately stateless (cache sizes 0): cross-call caches here would
#: make the deterministic obs counters depend on process history.  The
#: warm-start shortcut needs no cross-call state, so it stays on.
_DEFAULT_ENGINE = SolverEngine(max_indexes=0, max_problems=0)


def default_engine() -> SolverEngine:
    """The stateless module-level engine (see the module docstring)."""
    return _DEFAULT_ENGINE
