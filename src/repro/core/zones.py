"""Zoned and greedy large-topology solver arms (S37 in DESIGN.md).

The exact minimum-slots search solves one monolithic ILP per probe over
the whole conflict graph -- fine at the paper's 16-50-node meshes,
hopeless at city scale, where binary order variables grow quadratically
in conflicting links.  This module adds the two heuristic arms behind
the :class:`~repro.core.policy.SolverPolicy` seam:

**Zoned** (:func:`zoned_minimum_slots`).  Partition the demanded links
into *interference zones* by deterministic seed-ordered BFS over the
:class:`~repro.core.engine.ConflictIndex` CSR adjacency
(:func:`partition_zones`): links that conflict cluster together, links
that never interact end up in different zones -- the route-interference
structure of arXiv:1106.1590 decomposed explicitly.  Each zone is then
solved *exactly* (the same delay-aware ILP search, over the zone's
induced conflict subgraph) under a **boundary-slot reservation**: the
zone's region ceiling is shrunk by the worst conflicting out-of-zone
demand any of its links faces, so the zone solution leaves room for its
neighbours.  Zone sub-searches always probe by bisection and are
**warm-started from a greedy packing** of the zone: the engine's
Bellman-Ford certificate decides the top probe for free, and the known
greedy makespan keeps the zone ceiling feasible.  Each ILP probe runs
under a bounded *deterministic* branch-and-cut node budget
(:data:`DEFAULT_ZONE_PROBE_NODE_LIMIT` unless the policy sets
``node_limit_per_probe``; ``time_limit_per_probe`` adds a wall-clock
safety net) with undecided probes treated as infeasible -- on big-M
disjunctive formulations a single infeasibility *proof* can take
minutes, and the zoned arm trades provable zone minimality (which the
stitch discards anyway) for bounded latency.
Finally the zone solutions are *stitched*: their links are
interleaved demand-major (heaviest demand first, zone-internal start
slot then zone creation order as tie-breaks), packed first-fit against
the full conflict adjacency, and the packing's induced order is
compacted by the existing Bellman-Ford recovery pass
(:func:`~repro.core.ordering.schedule_from_order`): one
difference-constraint solve produces the componentwise-earliest global
schedule consistent with every zone's internal order, overlapping
non-conflicting zones in time (spatial reuse across zones comes from
the stitch, not the zones).

**Greedy** (:func:`greedy_minimum_slots`).  No ILP at all: a
deterministic first-fit portfolio (first-fit-decreasing and canonical
link order) followed by the same Bellman-Ford compaction, keeping the
best makespan.  Near-linear in conflict edges; the arm of last resort
when even per-zone ILPs are too slow.

Both arms are **sound, never complete**: every schedule they emit is
validated conflict-free against the full conflict graph (the S8
contract) and checked against every delay budget they were given --
when a budget cannot be met they return infeasibility instead of
degrading a guarantee.  What they concede is *minimality*: the returned
region may exceed the exact optimum.  Experiment E21 measures that gap
(<= 10% on instances where the exact ILP is tractable) and the
asymptotic speedup.

Both arms run through the owning :class:`~repro.core.engine.SolverEngine`
-- zone subproblems hit the engine's problem cache and the dedicated
zone-index LRU (:meth:`~repro.core.engine.SolverEngine.zone_index`), so
warm starts, delta updates and problem hashing keep working unchanged.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Optional, Sequence, Union

import networkx as nx

from repro import obs
from repro.core.delay import path_delay_slots
from repro.core.greedy import greedy_schedule
from repro.core.ilp import DelayConstraint, ILPResult
from repro.core.minslots import MinSlotResult, demand_lower_bound
from repro.core.ordering import TransmissionOrder, schedule_from_order
from repro.core.policy import SolverPolicy
from repro.core.schedule import Schedule
from repro.errors import ConfigurationError, InfeasibleScheduleError
from repro.net.topology import Link

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.engine import ConflictIndex, SolverEngine

ConflictsLike = Union[nx.Graph, "ConflictIndex"]

#: Per-probe branch-and-cut node budget for zone sub-searches when the
#: policy leaves ``node_limit_per_probe`` unset.  Probes undecided within
#: the budget count as infeasible (the search keeps its best certified
#: region), so a pathological zone costs a few bounded probes instead of
#: a minutes-long HiGHS infeasibility proof.  A *node* budget rather
#: than a wall clock keeps zone verdicts deterministic -- the same
#: instance produces the same schedule serial or parallel, loaded or
#: idle -- which is what the CI serial-vs-parallel bitwise-identity
#: check relies on.  Calibrated so an undecided probe on a worst-case
#: 32-link zone costs well under a second; easy verdicts (presolve or
#: root-node proofs) are unaffected.
DEFAULT_ZONE_PROBE_NODE_LIMIT = 100


@dataclass(frozen=True)
class ZonePartition:
    """A deterministic partition of demanded links into interference zones.

    ``zones`` holds each zone's links in canonical sorted order; zone
    order is creation order (the order their BFS seeds appear in the
    canonical link ordering), which is also the order the zoned solver
    visits them and a tie-break in the stitch's demand-major
    interleaving.
    """

    zones: tuple[tuple[Link, ...], ...]

    @property
    def num_zones(self) -> int:
        return len(self.zones)

    @property
    def num_links(self) -> int:
        return sum(len(zone) for zone in self.zones)

    def zone_of(self) -> dict[Link, int]:
        """Link -> zone-index lookup over the whole partition."""
        owner: dict[Link, int] = {}
        for index, zone in enumerate(self.zones):
            for link in zone:
                owner[link] = index
        return owner

    def sizes(self) -> tuple[int, ...]:
        return tuple(len(zone) for zone in self.zones)


def _as_index(conflicts: ConflictsLike) -> "ConflictIndex":
    """Wrap a bare conflict graph in a (non-engine) ConflictIndex.

    Callers holding an engine-built :class:`ConflictIndex` pass it
    through untouched, keeping its cache lineage; a bare
    :class:`networkx.Graph` gets an ad-hoc index keyed by its content
    fingerprint so zone-subindex caching stays correct.
    """
    from repro.core.engine import ConflictIndex, _edges_fingerprint

    if isinstance(conflicts, ConflictIndex):
        return conflicts
    return ConflictIndex(f"adhoc/{_edges_fingerprint(conflicts)}", None,
                         conflicts)


def partition_zones(index: "ConflictIndex",
                    demands: Mapping[Link, int],
                    max_zone_links: int) -> ZonePartition:
    """Cluster the demanded links into zones by seed-ordered BFS growth.

    Walk the canonical link order; every still-unassigned link seeds a
    new zone, which grows breadth-first over the conflict adjacency
    (CSR rows, canonical neighbour order) until it holds
    ``max_zone_links`` links or its conflict component is exhausted.
    Deterministic by construction: equal inputs produce equal
    partitions, independent of dict order or process history.

    Only links with positive demand participate; zero-demand links are
    never scheduled, so they would only dilute the zones.
    """
    if max_zone_links < 2:
        raise ConfigurationError(
            f"max_zone_links must be >= 2, got {max_zone_links}")
    demanded = [link for link in index.links if demands.get(link, 0) > 0]
    remaining = set(demanded)
    zones: list[tuple[Link, ...]] = []
    for seed in demanded:
        if seed not in remaining:
            continue
        remaining.discard(seed)
        zone = [seed]
        frontier = [seed]
        while frontier and len(zone) < max_zone_links:
            next_frontier: list[Link] = []
            for link in frontier:
                if len(zone) >= max_zone_links:
                    break
                for neighbor in index.neighbors(link):
                    if neighbor in remaining:
                        remaining.discard(neighbor)
                        zone.append(neighbor)
                        next_frontier.append(neighbor)
                        if len(zone) >= max_zone_links:
                            break
            frontier = next_frontier
        zones.append(tuple(sorted(zone)))
    partition = ZonePartition(tuple(zones))
    obs.counter("core.zones.partitions").inc()
    for size in partition.sizes():
        obs.histogram("core.zones.zone_size").observe(size)
    return partition


def boundary_reservation(index: "ConflictIndex",
                         demands: Mapping[Link, int],
                         zone: Sequence[Link]) -> int:
    """Slots to reserve for a zone's conflicting out-of-zone neighbours.

    The stitch serializes a zone link behind every conflicting link of
    other zones that precedes it in the global order; in the worst case
    that is the link's whole out-of-zone conflicting demand.  Reserving
    the zone-wide maximum of that quantity shrinks the zone's region
    ceiling so the stitched schedule still fits the frame.  It is a
    heuristic headroom bound, not a certificate -- the stitch itself
    decides feasibility -- but it is what keeps zones from greedily
    spreading across slots their neighbours need.
    """
    members = set(zone)
    worst = 0
    for link in zone:
        outside = sum(demands.get(neighbor, 0)
                      for neighbor in index.neighbors(link)
                      if neighbor not in members)
        worst = max(worst, outside)
    return worst


def _first_fit_starts(index: "ConflictIndex",
                      demands: Mapping[Link, int],
                      ranking: Sequence[Link]) -> dict[Link, int]:
    """Earliest-fit start slots over ``ranking`` (unbounded frame).

    Concatenating zone orders into one *total* order and handing it to
    Bellman-Ford would serialize every cross-zone conflict pair in zone
    order -- quadratic stretch the zones never asked for.  First-fit is
    the right relaxation: each link (in ranking order) takes the
    earliest slot range clear of its already-placed conflicting
    neighbours, so a later zone's link may fill an earlier zone's gap.
    The *induced* start order is what the stitch's Bellman-Ford pass
    then compacts.
    """
    starts: dict[Link, int] = {}
    for link in ranking:
        demand = demands[link]
        busy = sorted((starts[nb], starts[nb] + demands[nb])
                      for nb in index.neighbors(link) if nb in starts)
        start = 0
        for begin, end in busy:
            if start + demand <= begin:
                break
            start = max(start, end)
        starts[link] = start
    return starts


def _zone_constraints(delay_constraints: Sequence[DelayConstraint],
                      members: set[Link]) -> tuple[DelayConstraint, ...]:
    """The delay constraints whose whole route lies inside one zone.

    Cross-zone routes cannot be expressed in a zone subproblem; they are
    checked on the stitched schedule instead (and rejected, never
    silently violated, when they fail).
    """
    return tuple(c for c in delay_constraints
                 if all(link in members for link in c.route))


def _check_delays(schedule: Schedule,
                  delay_constraints: Sequence[DelayConstraint]
                  ) -> tuple[Optional[int], list[str]]:
    """Max path delay and the names of budget-violating constraints."""
    max_delay: Optional[int] = None
    violated: list[str] = []
    for constraint in delay_constraints:
        delay = path_delay_slots(schedule, constraint.route)
        if max_delay is None or delay > max_delay:
            max_delay = delay
        if delay > constraint.budget_slots:
            violated.append(constraint.name)
    return max_delay, violated


def _heuristic_result(status: str,
                      schedule: Optional[Schedule],
                      order: Optional[TransmissionOrder],
                      lower: int,
                      delay_constraints: Sequence[DelayConstraint],
                      policy: SolverPolicy,
                      meta: dict,
                      solve_seconds: float) -> MinSlotResult:
    """Package a heuristic arm's outcome as a :class:`MinSlotResult`.

    Runs the final soundness gate shared by both arms: the emitted
    schedule must meet every delay budget at the full frame length, or
    the arm reports infeasibility (``core.zones.delay_rejects``).  Also
    scores the gap against the clique lower bound and raises the
    ``core.zones.gap_exceeded`` counter when it blows past the policy's
    advertised tolerance -- observable, never fatal.
    """
    if schedule is None:
        return MinSlotResult(slots=None, ilp=None, lower_bound=lower,
                             probes=[], meta=meta)
    max_delay, violated = _check_delays(schedule, delay_constraints)
    slots = schedule.makespan()
    meta = dict(meta)
    meta["lower_bound"] = lower
    if lower > 0:
        gap = (slots - lower) / lower
        meta["gap_vs_lower_bound"] = round(gap, 6)
        if gap > policy.gap_tolerance:
            obs.counter("core.zones.gap_exceeded").inc()
    if violated:
        obs.counter("core.zones.delay_rejects").inc()
        meta["delay_violations"] = violated
        return MinSlotResult(slots=None, ilp=None, lower_bound=lower,
                             probes=[(slots, False)], meta=meta)
    ilp = ILPResult(True, schedule, order,
                    max_delay if delay_constraints else None,
                    solve_seconds, status, 0, 0)
    return MinSlotResult(slots=slots, ilp=ilp, lower_bound=lower,
                         probes=[(slots, True)], meta=meta)


def _zone_warm_start(zone_graph: nx.Graph,
                     zone_demands: Mapping[Link, int],
                     ceiling: int, frame_slots: int,
                     zone_delay: Sequence[DelayConstraint]
                     ) -> tuple[Optional[TransmissionOrder], Optional[int]]:
    """A greedy warm order for one zone and its compacted makespan.

    The order seeds the zone search's Bellman-Ford certificates; the
    makespan (``None`` when the packing misses the ceiling or a zone
    delay budget) is a known-feasible upper bound for the zone region.
    """
    raw = greedy_schedule(zone_graph, zone_demands, frame_slots=None,
                          strategy="demand")
    order = TransmissionOrder.from_schedule(raw)
    try:
        packed = schedule_from_order(zone_graph, zone_demands, ceiling,
                                     order)
    except InfeasibleScheduleError:
        return None, None
    if zone_delay:
        # Budgets must hold at the *full* frame wrap cost, exactly as
        # the engine's certify_order judges them during the search.
        at_frame = Schedule(frame_slots, dict(packed.items()))
        for constraint in zone_delay:
            if (path_delay_slots(at_frame, constraint.route)
                    > constraint.budget_slots):
                return None, None
    return order, packed.makespan()


def zoned_minimum_slots(conflicts: ConflictsLike,
                        demands: Mapping[Link, int],
                        frame_slots: int,
                        delay_constraints: Sequence[DelayConstraint] = (),
                        engine: Optional["SolverEngine"] = None,
                        policy: Optional[SolverPolicy] = None
                        ) -> MinSlotResult:
    """The zoned large-topology arm: partition, solve, reserve, stitch.

    Semantics match :func:`~repro.core.minslots.minimum_slots`: find a
    region ``K`` of the ``frame_slots``-slot frame carrying all demands
    conflict-free within their delay budgets -- except ``K`` is *small*,
    not provably minimal.  See the module docstring for the algorithm
    and the soundness contract.
    """
    if engine is None:
        from repro.core.engine import default_engine

        engine = default_engine()
    policy = SolverPolicy.coerce(policy)
    ceiling = (frame_slots if policy.max_region is None
               else min(policy.max_region, frame_slots))
    base = _as_index(conflicts)
    graph = base.graph
    lower = demand_lower_bound(graph, demands)
    obs.counter("core.zones.zoned_solves").inc()
    started = time.perf_counter()
    with obs.span("core.zones.solve", mode="zoned",
                  frame_slots=frame_slots):
        partition = partition_zones(base, demands, policy.max_zone_links)
        meta: dict = {"mode": "zoned", "num_zones": partition.num_zones,
                      "zone_sizes": partition.sizes()}
        if lower > ceiling:
            return MinSlotResult(slots=None, ilp=None, lower_bound=lower,
                                 probes=[], meta=meta)
        if partition.num_zones == 0:
            # Nothing demanded: delegate the degenerate case to the
            # exact probe machinery for identical empty-result shape.
            outcome = engine.run_search(
                graph, demands, frame_slots, tuple(delay_constraints),
                policy.search, ceiling, policy.time_limit_per_probe,
                node_limit_per_probe=policy.node_limit_per_probe)
            outcome.meta = meta
            return outcome

        ranked: list[tuple[int, int, Link]] = []
        zone_seconds = 0.0
        reserves: list[int] = []
        probe_limit = policy.time_limit_per_probe
        probe_nodes = (DEFAULT_ZONE_PROBE_NODE_LIMIT
                       if policy.node_limit_per_probe is None
                       else policy.node_limit_per_probe)
        for zone in partition.zones:
            members = set(zone)
            zone_index = engine.zone_index(base, zone)
            zone_demands = {link: demands[link] for link in zone}
            reserve = boundary_reservation(base, demands, zone)
            reserves.append(reserve)
            zone_lower = demand_lower_bound(zone_index.graph, zone_demands)
            zone_ceiling = min(ceiling, max(zone_lower, ceiling - reserve))
            zone_delay = _zone_constraints(delay_constraints, members)
            warm_order, greedy_makespan = _zone_warm_start(
                zone_index.graph, zone_demands, ceiling, frame_slots,
                zone_delay)
            if greedy_makespan is not None:
                # The greedy packing is a feasibility certificate at its
                # makespan: capping the bisection there keeps the top
                # probe certified (never a timeout) and the probe range
                # small.  When the certificate needs more room than the
                # reservation left, the certificate wins -- the reserve
                # is headroom, the makespan is evidence.
                if greedy_makespan > zone_ceiling:
                    obs.counter("core.zones.reserve_relaxed").inc()
                zone_ceiling = greedy_makespan
            outcome = engine.run_search(
                zone_index.graph, zone_demands, frame_slots,
                zone_delay, "binary", zone_ceiling,
                probe_limit, warm_order=warm_order,
                node_limit_per_probe=probe_nodes)
            if not outcome.feasible and zone_ceiling < ceiling:
                # The reservation is headroom, not a certificate -- the
                # stitch decides real feasibility.  A zone that cannot
                # fit under the reserved ceiling retries at the full one
                # rather than failing the whole mesh.
                obs.counter("core.zones.reserve_relaxed").inc()
                outcome = engine.run_search(
                    zone_index.graph, zone_demands, frame_slots,
                    zone_delay, "binary", ceiling,
                    probe_limit, warm_order=warm_order,
                    node_limit_per_probe=probe_nodes)
            if outcome.ilp is not None:
                zone_seconds += outcome.ilp.solve_seconds
            if not outcome.feasible or outcome.schedule is None:
                obs.counter("core.zones.zone_infeasible").inc()
                meta["infeasible_zone"] = zone[0]
                return MinSlotResult(slots=None, ilp=None,
                                     lower_bound=lower,
                                     probes=list(outcome.probes),
                                     meta=meta)
            zone_number = len(reserves) - 1
            for link in zone:
                ranked.append((-demands[link],
                               outcome.schedule.block(link).start,
                               zone_number, link))

        # Demand-major interleaving, zone-internal start as tie-break:
        # heavy links place first (the first-fit-decreasing heuristic),
        # and equal demands follow their zone solutions' time layers so
        # non-conflicting zones overlap.  Zone-major concatenation would
        # make first-fit rediscover the spatial reuse one conflict pair
        # at a time, and it routinely overflows a frame that
        # max(zone makespans) fits easily.
        ranking = [entry[-1] for entry in sorted(ranked)]
        starts = _first_fit_starts(base, demands, ranking)
        order = TransmissionOrder(
            {link: float(start) for link, start in starts.items()})
        meta["boundary_reserve"] = max(reserves)
        try:
            packed = schedule_from_order(graph, demands, ceiling, order)
        except InfeasibleScheduleError:
            obs.counter("core.zones.stitch_failures").inc()
            meta["stitch_failed"] = True
            return MinSlotResult(slots=None, ilp=None, lower_bound=lower,
                                 probes=[], meta=meta)
        obs.counter("core.zones.stitches").inc()
        schedule = Schedule(frame_slots, dict(packed.items()))
        schedule.validate(graph)
    zone_seconds = max(zone_seconds, time.perf_counter() - started)
    return _heuristic_result(
        f"zoned({partition.num_zones} zones)", schedule, order,
        lower, delay_constraints, policy, meta, zone_seconds)


#: Deterministic first-fit strategies the greedy arm tries, in order.
GREEDY_PORTFOLIO = ("demand", "index")


def greedy_minimum_slots(conflicts: ConflictsLike,
                         demands: Mapping[Link, int],
                         frame_slots: int,
                         delay_constraints: Sequence[DelayConstraint] = (),
                         engine: Optional["SolverEngine"] = None,
                         policy: Optional[SolverPolicy] = None
                         ) -> MinSlotResult:
    """The greedy arm: first-fit portfolio + Bellman-Ford compaction.

    Each portfolio strategy packs the links first-fit into an unbounded
    frame, the packing's induced order is re-solved to its
    componentwise-earliest schedule by one Bellman-Ford pass, and the
    best makespan that fits the region wins (first strategy wins ties).
    ``engine`` is accepted for signature symmetry with the other arms;
    no ILP is ever solved.
    """
    del engine  # symmetric signature; the greedy arm never solves ILPs
    policy = SolverPolicy.coerce(policy)
    ceiling = (frame_slots if policy.max_region is None
               else min(policy.max_region, frame_slots))
    base = _as_index(conflicts)
    graph = base.graph
    lower = demand_lower_bound(graph, demands)
    obs.counter("core.zones.greedy_solves").inc()
    started = time.perf_counter()
    best: Optional[tuple[int, str, TransmissionOrder, Schedule]] = None
    with obs.span("core.zones.solve", mode="greedy",
                  frame_slots=frame_slots):
        if lower <= ceiling:
            for strategy in GREEDY_PORTFOLIO:
                raw = greedy_schedule(graph, demands, frame_slots=None,
                                      strategy=strategy)
                order = TransmissionOrder.from_schedule(raw)
                try:
                    packed = schedule_from_order(graph, demands, ceiling,
                                                 order)
                except InfeasibleScheduleError:
                    continue
                makespan = packed.makespan()
                if best is None or makespan < best[0]:
                    best = (makespan, strategy, order, packed)
    meta: dict = {"mode": "greedy"}
    if best is None:
        return MinSlotResult(slots=None, ilp=None, lower_bound=lower,
                             probes=[], meta=meta)
    makespan, strategy, order, packed = best
    meta["strategy"] = strategy
    schedule = Schedule(frame_slots, dict(packed.items()))
    schedule.validate(graph)
    return _heuristic_result(
        f"greedy({strategy})", schedule, order,
        lower, delay_constraints, policy, meta,
        time.perf_counter() - started)
