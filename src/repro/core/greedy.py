"""Greedy slot-packing baselines.

These are the comparators the ILP is judged against in E1/E7: sequential
first-fit assignment of contiguous blocks, processing links in one of three
orders.  Greedy packing is conflict-free by construction but knows nothing
about end-to-end delay, so its schedules typically suffer one wrap per hop
on unlucky routes.
"""

from __future__ import annotations

from typing import Mapping, Optional

import networkx as nx
import numpy as np

from repro.core.schedule import Schedule, SlotBlock
from repro.errors import ConfigurationError, InfeasibleScheduleError
from repro.net.topology import Link


def _link_processing_order(demands: Mapping[Link, int], strategy: str,
                           rng: Optional[np.random.Generator]) -> list[Link]:
    links = [l for l in sorted(demands) if demands[l] > 0]
    if strategy == "index":
        return links
    if strategy == "demand":
        # Heaviest demand first (classic first-fit-decreasing), canonical
        # tie-break for determinism.
        return sorted(links, key=lambda l: (-demands[l], l))
    if strategy == "random":
        if rng is None:
            raise ConfigurationError("strategy='random' requires an rng")
        permutation = rng.permutation(len(links))
        return [links[i] for i in permutation]
    raise ConfigurationError(f"unknown greedy strategy {strategy!r}")


def _earliest_fit(busy: list[tuple[int, int]], length: int,
                  limit: Optional[int]) -> Optional[int]:
    """Earliest start of a ``length``-slot block avoiding ``busy`` intervals.

    ``busy`` is a list of (start, end) half-open intervals.  Returns None if
    no start fits below ``limit`` (when given).
    """
    candidate = 0
    for start, end in sorted(busy):
        if candidate + length <= start:
            break
        candidate = max(candidate, end)
    if limit is not None and candidate + length > limit:
        return None
    return candidate


def greedy_schedule(conflicts: nx.Graph, demands: Mapping[Link, int],
                    frame_slots: Optional[int] = None,
                    strategy: str = "demand",
                    rng: Optional[np.random.Generator] = None) -> Schedule:
    """First-fit contiguous slot packing.

    Parameters
    ----------
    conflicts:
        Conflict graph over (at least) the demanded links.
    demands:
        Slots per frame needed by each link; zero-demand links are skipped.
    frame_slots:
        If given, fail with :class:`~repro.errors.InfeasibleScheduleError`
        when a link cannot fit below this bound.  If ``None``, the schedule
        is unbounded and the returned frame length is the greedy makespan --
        i.e. greedy's answer to the minimum-slots question.
    strategy:
        ``"demand"`` (first-fit decreasing), ``"index"`` (canonical link
        order) or ``"random"`` (a shuffled order drawn from ``rng``).
    """
    order = _link_processing_order(demands, strategy, rng)
    starts: dict[Link, SlotBlock] = {}
    for link in order:
        if link not in conflicts:
            raise ConfigurationError(
                f"demanded link {link} missing from conflict graph")
        busy = [(starts[other].start, starts[other].end)
                for other in conflicts.neighbors(link) if other in starts]
        start = _earliest_fit(busy, demands[link], frame_slots)
        if start is None:
            raise InfeasibleScheduleError(
                f"greedy({strategy}) could not fit link {link} "
                f"({demands[link]} slots) within {frame_slots} slots")
        starts[link] = SlotBlock(start, demands[link])

    span = max((block.end for block in starts.values()), default=1)
    schedule = Schedule(frame_slots if frame_slots is not None else span)
    for link, block in starts.items():
        schedule.assign(link, block)
    schedule.validate(conflicts)
    return schedule
