"""Transmission orders and order -> schedule recovery.

The key decomposition from the paper line: a conflict-free schedule is
(a) a *relative order* in which conflicting links transmit within the frame,
plus (b) concrete start slots consistent with that order.  Part (b) is a
difference-constraint system solved by Bellman-Ford on the conflict graph
(:mod:`repro.core.bellman_ford`); part (a) is what the ILP
(:mod:`repro.core.ilp`) or the tree algorithm (:mod:`repro.core.tree_order`)
optimizes, because the order alone determines the number of frame *wraps* a
packet suffers along its path -- and hence its delay to within one frame.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

import networkx as nx

from repro.core.bellman_ford import DifferenceConstraints
from repro.core.schedule import Schedule, SlotBlock
from repro.errors import ConfigurationError, InfeasibleScheduleError
from repro.net.topology import Link

#: Synthetic origin vertex used in constraint systems.
ORIGIN = "__origin__"


class TransmissionOrder:
    """A relative transmission order over links.

    Internally a rank per link; ``precedes(a, b)`` means link ``a``'s block
    must end no later than link ``b``'s block starts *within the frame*
    (for conflicting links) or simply that ``a`` comes earlier in the frame
    (for delay accounting on consecutive path links).

    An order built :meth:`from_ranking` is total; :meth:`from_pairs` builds
    a partial order defined only on the given pairs, as produced by the ILP.
    """

    def __init__(self, ranks: Mapping[Link, float],
                 pair_overrides: Optional[Mapping[tuple[Link, Link], bool]] = None
                 ) -> None:
        self._ranks = dict(ranks)
        #: (a, b) -> True iff a precedes b, for pairs where rank comparison
        #: is not the source of truth (ILP solutions).
        self._pairs = dict(pair_overrides or {})

    @classmethod
    def from_ranking(cls, links_in_order: Iterable[Link]) -> "TransmissionOrder":
        """Total order: earlier in the iterable = earlier in the frame."""
        ranks: dict[Link, float] = {}
        for position, link in enumerate(links_in_order):
            if link in ranks:
                raise ConfigurationError(f"link {link} appears twice in ranking")
            ranks[link] = float(position)
        return cls(ranks)

    @classmethod
    def from_pairs(cls, pairs: Mapping[tuple[Link, Link], bool]) -> "TransmissionOrder":
        """Partial order from explicit pair decisions.

        ``pairs[(a, b)] = True`` means ``a`` precedes ``b``.  Both
        orientations are filled in.
        """
        full: dict[tuple[Link, Link], bool] = {}
        for (a, b), a_first in pairs.items():
            full[(a, b)] = bool(a_first)
            full[(b, a)] = not a_first
        return cls(ranks={}, pair_overrides=full)

    @classmethod
    def from_schedule(cls, schedule: Schedule) -> "TransmissionOrder":
        """The order induced by an existing schedule's start slots."""
        return cls({link: float(block.start) for link, block in schedule.items()})

    def copy(self) -> "TransmissionOrder":
        """An independent copy (solver caches hand these out)."""
        return TransmissionOrder(self._ranks, self._pairs)

    def knows(self, a: Link, b: Link) -> bool:
        """True iff the order can compare ``a`` and ``b``."""
        if (a, b) in self._pairs:
            return True
        return a in self._ranks and b in self._ranks

    def precedes(self, a: Link, b: Link) -> bool:
        """True iff ``a`` transmits earlier than ``b`` within the frame."""
        if a == b:
            raise ConfigurationError(f"cannot order link {a} against itself")
        if (a, b) in self._pairs:
            return self._pairs[(a, b)]
        try:
            rank_a, rank_b = self._ranks[a], self._ranks[b]
        except KeyError as exc:
            raise ConfigurationError(
                f"order does not cover pair ({a}, {b})") from exc
        if rank_a == rank_b:
            # Stable tie-break on the canonical link ordering.
            return a < b
        return rank_a < rank_b

    def links(self) -> list[Link]:
        """All links the order knows about."""
        known = set(self._ranks)
        for a, b in self._pairs:
            known.add(a)
            known.add(b)
        return sorted(known)


def order_constraints(conflicts: nx.Graph, demands: Mapping[Link, int],
                      frame_slots: int, order: TransmissionOrder
                      ) -> DifferenceConstraints:
    """Difference-constraint system for start slots under a fixed order.

    Variables are the demanded links plus :data:`ORIGIN` (pinned to slot 0).
    Constraints:

    - ``0 <= s_l <= frame_slots - d_l`` (blocks fit in the frame);
    - for every conflict edge ``(a, b)`` with positive demands, the earlier
      link finishes before the later one starts.
    """
    system = DifferenceConstraints()
    scheduled = [l for l in sorted(demands) if demands[l] > 0]
    for link in scheduled:
        demand = demands[link]
        if demand > frame_slots:
            raise InfeasibleScheduleError(
                f"link {link} demands {demand} slots > frame of {frame_slots}")
        system.add_lower(ORIGIN, link, 0)
        system.add_upper(ORIGIN, link, frame_slots - demand)
    demanded = set(scheduled)
    for edge in sorted(tuple(sorted(e)) for e in conflicts.edges):
        a, b = edge
        if a not in demanded or b not in demanded:
            continue
        if order.precedes(a, b):
            first, second = a, b
        else:
            first, second = b, a
        # s_second >= s_first + d_first  <=>  s_first <= s_second - d_first
        system.add(second, first, -demands[first])
    return system


def schedule_from_order(conflicts: nx.Graph, demands: Mapping[Link, int],
                        frame_slots: int, order: TransmissionOrder,
                        earliest: bool = True) -> Schedule:
    """Recover a concrete conflict-free schedule from a transmission order.

    This is the paper's "Bellman-Ford on the conflict graph" step.  Raises
    :class:`~repro.errors.InfeasibleScheduleError` (carrying the negative
    cycle) if no schedule consistent with the order fits in ``frame_slots``.

    Parameters
    ----------
    earliest:
        If true (default), return the componentwise-earliest start times
        consistent with the order; otherwise the latest.
    """
    system = order_constraints(conflicts, demands, frame_slots, order)
    if earliest:
        # Minimal solution of {x_v <= x_u + w} = negated maximal solution of
        # the reversed system over y = -x (y_u <= y_v + w).
        reversed_system = DifferenceConstraints()
        for u, v, w in system.edges:
            reversed_system.add(v, u, w)
        solution = reversed_system.solve(origin=ORIGIN)
        starts = {vertex: -value for vertex, value in solution.items()}
    else:
        starts = system.solve(origin=ORIGIN)

    schedule = Schedule(frame_slots)
    for link in sorted(demands):
        if demands[link] <= 0:
            continue
        start = starts[link]
        start_slot = int(round(start))
        if abs(start - start_slot) > 1e-6:  # pragma: no cover - defensive
            raise InfeasibleScheduleError(
                f"non-integral start {start} for link {link}")
        schedule.assign(link, SlotBlock(start_slot, demands[link]))
    schedule.validate(conflicts)
    return schedule
