"""Difference-constraint systems solved with Bellman-Ford.

The NET-COOP/ToN observation behind this module: once a relative
*transmission order* of links is fixed, finding concrete slot start times is
a system of difference constraints

    ``x_j - x_i <= w_ij``

which is feasible iff the corresponding constraint graph (edge ``i -> j``
with weight ``w_ij``... conventionally edge ``j -> i``; we use the
"edge from i to j with weight w means x_j <= x_i + w" convention) has no
negative cycle, and a feasible point is given by single-source shortest
paths.  This is the "Bellman-Ford on the conflict graph" step of the paper:
constraint-graph vertices are conflict-graph vertices (links) plus an origin.

Infeasibility comes with a certificate: the negative cycle, which names the
circular chain of precedence constraints that cannot fit in the frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Optional

from repro import obs
from repro.errors import InfeasibleScheduleError

#: Constraint-graph vertex (a link, or the synthetic origin).
Vertex = Hashable


@dataclass
class NegativeCycle:
    """Certificate of infeasibility: vertices of a negative-weight cycle."""

    vertices: list[Vertex]
    weight: float

    def __str__(self) -> str:
        chain = " -> ".join(map(str, self.vertices))
        return f"negative cycle (weight {self.weight}): {chain}"


@dataclass
class DifferenceConstraints:
    """A system of constraints ``x_v <= x_u + w`` over hashable variables."""

    #: list of (u, v, w): x_v <= x_u + w
    edges: list[tuple[Vertex, Vertex, float]] = field(default_factory=list)
    _vertices: set[Vertex] = field(default_factory=set)

    def add(self, u: Vertex, v: Vertex, w: float) -> None:
        """Add the constraint ``x_v <= x_u + w``."""
        self.edges.append((u, v, w))
        self._vertices.add(u)
        self._vertices.add(v)

    def add_upper(self, origin: Vertex, v: Vertex, bound: float) -> None:
        """``x_v <= x_origin + bound`` (an upper bound relative to origin)."""
        self.add(origin, v, bound)

    def add_lower(self, origin: Vertex, v: Vertex, bound: float) -> None:
        """``x_v >= x_origin + bound``."""
        self.add(v, origin, -bound)

    def vertices(self) -> list[Vertex]:
        return sorted(self._vertices, key=repr)

    def solve(self, origin: Optional[Vertex] = None) -> dict[Vertex, float]:
        """Feasible assignment via Bellman-Ford, or raise with a certificate.

        Without an ``origin``, a synthetic super-source connected to every
        vertex with weight 0 is used (all-zeros initialisation): the result
        is *some* feasible point.

        With an ``origin``, true single-source shortest paths from it are
        computed (origin pinned to 0, everything else starts at +inf);
        by the classic difference-constraint theorem the result is the
        componentwise-**maximum** solution with ``x_origin = 0`` -- i.e. a
        latest-start schedule.  Every vertex must be reachable from the
        origin through constraint edges (in scheduling use, the frame upper
        bounds guarantee this); unreachable vertices come back as +inf.

        Raises
        ------
        InfeasibleScheduleError
            If the system has no solution (negative cycle; with an origin,
            a negative cycle reachable from it).  ``certificate`` is a
            :class:`NegativeCycle`.
        """
        vertices = self.vertices()
        if origin is not None and origin not in self._vertices:
            vertices = [origin] + vertices

        if origin is None:
            dist: dict[Vertex, float] = {v: 0.0 for v in vertices}
        else:
            dist = {v: float("inf") for v in vertices}
            dist[origin] = 0.0
        predecessor: dict[Vertex, Optional[tuple[Vertex, float]]] = {
            v: None for v in vertices}

        # The all-zeros initialisation is equivalent to having relaxed the
        # edges of a synthetic super-source once, so convergence is
        # guaranteed within |V| - 1 further passes when no negative cycle
        # exists.  Run |V| + 1 passes: the extra pass lets a run that
        # converges on the final regular pass prove convergence (no change)
        # instead of being misreported as a negative cycle.
        changed_vertex: Optional[Vertex] = None
        passes = 0
        for ____ in range(len(vertices) + 1):
            passes += 1
            changed_vertex = None
            for u, v, w in self.edges:
                if dist[u] + w < dist[v] - 1e-12:
                    dist[v] = dist[u] + w
                    predecessor[v] = (u, w)
                    changed_vertex = v
            if changed_vertex is None:
                break
        obs.counter("core.bellman_ford.solves").inc()
        obs.counter("core.bellman_ford.passes").inc(passes)
        obs.histogram("core.bellman_ford.passes_per_solve").observe(passes)
        if changed_vertex is not None:
            obs.counter("core.bellman_ford.infeasible").inc()
            raise InfeasibleScheduleError(
                "difference constraints are infeasible",
                certificate=self._extract_cycle(changed_vertex, predecessor))

        if origin is not None:
            shift = dist[origin]
            return {v: dist[v] - shift for v in vertices}
        return dist

    def _extract_cycle(self, start: Vertex,
                       predecessor: dict[Vertex, Optional[tuple[Vertex, float]]]
                       ) -> NegativeCycle:
        """Walk predecessor pointers back from a vertex relaxed on pass |V|.

        After |V| relaxation rounds any such vertex is reachable from a
        vertex *on* a negative cycle; walking |V| predecessors lands inside
        the cycle, and a second walk extracts it.
        """
        vertex = start
        for ____ in range(len(self._vertices) + 1):
            entry = predecessor[vertex]
            if entry is None:  # pragma: no cover - defensive
                break
            vertex = entry[0]
        cycle = [vertex]
        weight = 0.0
        current = vertex
        while True:
            entry = predecessor[current]
            if entry is None:  # pragma: no cover - defensive
                break
            current, edge_weight = entry
            weight += edge_weight
            if current == vertex:
                break
            cycle.append(current)
        cycle.reverse()
        return NegativeCycle(vertices=cycle, weight=weight)
