"""TDMA schedule data model and conflict-freeness validation.

A :class:`Schedule` maps directed links to :class:`SlotBlock` assignments
inside a frame of ``frame_slots`` data slots.  Following the 802.16 mesh
minislot-range convention, each link gets one *contiguous, non-wrapping*
block per frame (``start .. start + length - 1`` with
``start + length <= frame_slots``).  The schedule repeats every frame, so
all delay arithmetic downstream is cyclic even though blocks themselves do
not wrap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Optional

import networkx as nx

from repro.errors import ConfigurationError, SchedulingError
from repro.net.topology import Link


@dataclass(frozen=True, order=True)
class SlotBlock:
    """A contiguous run of data slots: ``[start, start + length)``."""

    start: int
    length: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ConfigurationError(f"block start must be >= 0, got {self.start}")
        if self.length <= 0:
            raise ConfigurationError(f"block length must be > 0, got {self.length}")

    @property
    def end(self) -> int:
        """One past the last slot of the block."""
        return self.start + self.length

    def slots(self) -> range:
        """The absolute slot indices covered by the block."""
        return range(self.start, self.end)

    def overlaps(self, other: "SlotBlock") -> bool:
        """True iff the two (non-wrapping) blocks share a slot."""
        return self.start < other.end and other.start < self.end


class Schedule:
    """A conflict-checked TDMA slot assignment.

    Parameters
    ----------
    frame_slots:
        Number of data slots in the frame.
    assignments:
        Mapping from directed link to its :class:`SlotBlock`.
    """

    def __init__(self, frame_slots: int,
                 assignments: Optional[Mapping[Link, SlotBlock]] = None) -> None:
        if frame_slots <= 0:
            raise ConfigurationError(
                f"frame must have at least one slot, got {frame_slots}")
        self.frame_slots = frame_slots
        self._blocks: dict[Link, SlotBlock] = {}
        if assignments:
            for link, block in assignments.items():
                self.assign(link, block)

    def assign(self, link: Link, block: SlotBlock) -> None:
        """Assign ``block`` to ``link`` (replacing any previous assignment)."""
        if block.end > self.frame_slots:
            raise SchedulingError(
                f"block {block} for link {link} exceeds frame of "
                f"{self.frame_slots} slots")
        self._blocks[link] = block

    def block(self, link: Link) -> SlotBlock:
        try:
            return self._blocks[link]
        except KeyError:
            raise SchedulingError(f"link {link} has no slot assignment") from None

    def __contains__(self, link: object) -> bool:
        return link in self._blocks

    def links(self) -> list[Link]:
        """Scheduled links in canonical sorted order."""
        return sorted(self._blocks)

    def items(self) -> Iterator[tuple[Link, SlotBlock]]:
        for link in self.links():
            yield link, self._blocks[link]

    def __len__(self) -> int:
        return len(self._blocks)

    # -- queries -----------------------------------------------------------

    def active_links(self, slot: int) -> list[Link]:
        """Links transmitting in absolute slot index ``slot`` (mod frame)."""
        slot %= self.frame_slots
        return [link for link, block in self.items()
                if block.start <= slot < block.end]

    def transmitter_of_slot(self, node: int, slot: int) -> bool:
        """True iff ``node`` transmits on some link in ``slot``."""
        return any(link[0] == node for link in self.active_links(slot))

    def used_slots(self) -> int:
        """Number of distinct slots used by at least one link."""
        used = set()
        for ____, block in self.items():
            used.update(block.slots())
        return len(used)

    def makespan(self) -> int:
        """Largest ``block.end`` over all links (0 for an empty schedule)."""
        return max((block.end for ____, block in self.items()), default=0)

    def utilization(self) -> float:
        """Total scheduled slot-transmissions divided by frame slots.

        Spatial reuse makes this exceed 1.0 on large topologies (the point
        of experiment E11).
        """
        total = sum(block.length for ____, block in self.items())
        return total / self.frame_slots

    # -- validation ----------------------------------------------------------

    def violations(self, conflicts: nx.Graph) -> list[tuple[Link, Link]]:
        """All pairs of conflicting links with overlapping blocks."""
        bad = []
        for link_a, link_b in conflicts.edges:
            if link_a in self._blocks and link_b in self._blocks:
                if self._blocks[link_a].overlaps(self._blocks[link_b]):
                    bad.append(tuple(sorted((link_a, link_b))))
        return sorted(bad)

    def validate(self, conflicts: nx.Graph) -> None:
        """Raise :class:`SchedulingError` unless the schedule is conflict-free."""
        bad = self.violations(conflicts)
        if bad:
            raise SchedulingError(
                f"schedule has {len(bad)} conflicting overlaps, "
                f"first: {bad[0]}")

    def demands_met(self, demands: Mapping[Link, int]) -> bool:
        """True iff every demanded link has a block of at least its demand."""
        return all(
            link in self._blocks and self._blocks[link].length >= demand
            for link, demand in demands.items() if demand > 0)

    def restrict(self, links: Iterable[Link]) -> "Schedule":
        """A copy containing only the given links."""
        keep = set(links)
        return Schedule(self.frame_slots,
                        {l: b for l, b in self._blocks.items() if l in keep})

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-serializable representation (ops tooling, persistence)."""
        return {
            "frame_slots": self.frame_slots,
            "assignments": [
                {"tx": link[0], "rx": link[1],
                 "start": block.start, "length": block.length}
                for link, block in self.items()],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Schedule":
        """Inverse of :meth:`to_dict`; validates shape and bounds."""
        try:
            frame_slots = int(data["frame_slots"])
            entries = data["assignments"]
        except (KeyError, TypeError) as exc:
            raise ConfigurationError(
                f"malformed schedule document: {exc}") from exc
        schedule = cls(frame_slots)
        for entry in entries:
            try:
                link = (int(entry["tx"]), int(entry["rx"]))
                block = SlotBlock(int(entry["start"]), int(entry["length"]))
            except (KeyError, TypeError, ValueError) as exc:
                raise ConfigurationError(
                    f"malformed schedule entry {entry!r}") from exc
            if link in schedule:
                raise ConfigurationError(
                    f"duplicate assignment for link {link}")
            schedule.assign(link, block)
        return schedule

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Schedule(frame_slots={self.frame_slots}, links={len(self)})"
