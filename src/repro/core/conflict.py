"""Conflict graph construction under the k-hop protocol interference model.

The conflict graph has one vertex per *directed link* of the mesh; an edge
between two links means they may not be active in the same TDMA slot.  Under
the k-hop protocol model, links ``(u, v)`` and ``(a, b)`` conflict iff the
hop distance between their endpoint sets is at most ``k - 1``:

- ``k = 1``: only links sharing a node conflict (pure half-duplex, no
  radio interference) -- the classic "primary" or node-exclusive model.
- ``k = 2``: links whose endpoints are within one hop of each other
  conflict.  This is the model mandated by the 802.16 mesh specification
  (a node's transmission must not collide at any neighbour of the
  receiver), and the default throughout this library.

Larger ``k`` models wider interference ranges (e.g. carrier sense ranges
exceeding communication range).
"""

from __future__ import annotations

from typing import Iterable, Iterator

import networkx as nx

from repro.errors import ConfigurationError
from repro.net.topology import Link, MeshTopology


def conflict_graph(topology: MeshTopology, hops: int = 2,
                   links: Iterable[Link] | None = None) -> nx.Graph:
    """Build the conflict graph for (a subset of) the topology's links.

    Parameters
    ----------
    topology:
        The mesh connectivity graph.
    hops:
        The ``k`` of the k-hop interference model (>= 1).  Two distinct
        links conflict iff some endpoint of one is within ``k - 1`` hops of
        some endpoint of the other.
    links:
        Restrict the conflict graph to these directed links (default: all
        links of the topology).  Scheduling only the links that carry
        demand keeps the ILP small.

    Returns
    -------
    networkx.Graph
        Vertices are directed :data:`~repro.net.topology.Link` tuples.
    """
    if hops < 1:
        raise ConfigurationError(f"interference model needs hops >= 1, got {hops}")
    if links is None:
        link_list = list(topology.links)
    else:
        link_list = sorted(set(links))
        for link in link_list:
            if not topology.has_link(link):
                raise ConfigurationError(f"{link} is not a link of the topology")

    graph = nx.Graph()
    graph.add_nodes_from(link_list)

    # Precompute the "within k-1 hops" node relation once; the pairwise link
    # check then reduces to set intersection on neighbourhoods.
    reach: dict[int, set[int]] = {}
    for node in topology.graph.nodes:
        reach[node] = set(
            nx.single_source_shortest_path_length(
                topology.graph, node, cutoff=hops - 1))

    # A widened model (hops > 2) whose reach spans the whole mesh from
    # every link is degenerate: all links pairwise conflict, the schedule
    # serialises, and the caller almost certainly mistook ``hops`` for a
    # distance in metres.  hops <= 2 is exempt -- on tiny meshes the
    # 802.16-mandated default legitimately yields a complete conflict
    # graph.
    if hops > 2 and link_list:
        num_nodes = topology.graph.number_of_nodes()
        if all(len(reach[u] | reach[v]) == num_nodes
               for u, v in link_list):
            raise ConfigurationError(
                f"hops={hops} reaches the whole {num_nodes}-node mesh "
                "from every link (hops >= network diameter): the "
                "conflict graph is complete and the schedule degenerates "
                "to one link per slot. Use a smaller hops value, or an "
                "SinrModel if you need wider-than-communication "
                "interference (see docs/interference.md)")

    for i, link_a in enumerate(link_list):
        endpoints_a = set(link_a)
        near_a = reach[link_a[0]] | reach[link_a[1]]
        for link_b in link_list[i + 1:]:
            if endpoints_a & set(link_b) or link_b[0] in near_a or link_b[1] in near_a:
                graph.add_edge(link_a, link_b)
    return graph


def conflicting_pairs(conflicts: nx.Graph) -> Iterator[tuple[Link, Link]]:
    """Iterate conflict-graph edges in a deterministic (sorted) order.

    The ILP builder relies on this ordering to index its binary variables
    consistently across runs.
    """
    return iter(sorted(tuple(sorted(edge)) for edge in conflicts.edges))


def conflict_degree(conflicts: nx.Graph) -> dict[Link, int]:
    """Number of conflicting neighbours per link (a scheduling-hardness proxy)."""
    return {link: conflicts.degree(link) for link in conflicts.nodes}


def max_conflict_clique_demand(conflicts: nx.Graph,
                               demands: dict[Link, int]) -> int:
    """A lower bound on frame slots: the heaviest known clique of conflicts.

    Enumerating maximum-weight cliques is exponential; this uses the cliques
    induced by each topology node (all links incident to one node mutually
    conflict under any k >= 1 model), which is cheap and usually tight on
    mesh topologies.
    """
    best = 0
    per_node: dict[int, int] = {}
    for link, demand in demands.items():
        if demand < 0:
            raise ConfigurationError(f"negative demand on {link}")
        for node in link:
            per_node[node] = per_node.get(node, 0) + demand
    if per_node:
        best = max(per_node.values())
    return best
