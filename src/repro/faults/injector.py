"""Apply a fault plan to a live (or analytic) mesh.

The :class:`FaultInjector` is the single writer of fault state.  It owns
the accumulated sets of dead nodes and dead edges, mutates the running
system exclusively through the hooks the lower layers export for it --
:meth:`repro.phy.channel.BroadcastChannel.set_node_down` /
``set_link_down`` / ``update_link_error_rates`` /
``update_control_error_rates`` and
:meth:`repro.sim.clock.DriftingClock.glitch` -- and notifies registered
listeners (anything with an ``on_fault(event)`` method, e.g. the
:class:`repro.core.repair.RepairEngine`) after each event lands.

Two driving modes share the same code path:

- **simulated**: :meth:`arm` schedules every event on the event kernel, so
  faults strike mid-packet exactly at their timestamps;
- **analytic**: callers step :meth:`apply` themselves (E17 does this --
  it needs repair decisions per event, not packet-level detail).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from repro.errors import ConfigurationError
from repro.faults.events import FaultEvent
from repro.faults.plan import FaultPlan
from repro.net.topology import Link, MeshTopology
from repro.phy.channel import BroadcastChannel
from repro.sim.clock import DriftingClock
from repro.sim.engine import Simulator


class FaultInjector:
    """Applies a :class:`FaultPlan` through the layer hooks.

    Parameters
    ----------
    plan:
        The fault schedule.  Victims are validated against ``topology`` at
        construction time.
    topology:
        The *base* (pre-fault) mesh.
    sim, channel, clocks:
        Optional live-simulation attachments.  ``clocks`` maps node id to
        its :class:`DriftingClock`.  All three may be omitted for analytic
        stepping.
    listeners:
        Objects with an ``on_fault(event)`` method, called after each
        event's state change has been applied (so a listener reading
        :attr:`dead_nodes` sees the post-event world).
    """

    def __init__(self, plan: FaultPlan, topology: MeshTopology,
                 sim: Optional[Simulator] = None,
                 channel: Optional[BroadcastChannel] = None,
                 clocks: Optional[Mapping[int, DriftingClock]] = None,
                 listeners: Iterable[object] = ()) -> None:
        for event in plan:
            if event.node is not None and event.node not in topology.graph:
                raise ConfigurationError(
                    f"fault victim node {event.node} is not in {topology.name}")
            if event.link is not None and not topology.has_link(event.link):
                raise ConfigurationError(
                    f"fault victim link {event.link} is not in {topology.name}")
        self.plan = plan
        self.topology = topology
        self.sim = sim
        self.channel = channel
        self.clocks = dict(clocks or {})
        self._listeners: list[object] = list(listeners)
        self._dead_nodes: set[int] = set()
        self._dead_edges: set[tuple[int, int]] = set()
        self._applied: list[FaultEvent] = []
        self._armed = False

    # -- state queries ------------------------------------------------------

    @property
    def dead_nodes(self) -> frozenset[int]:
        """Nodes currently crashed."""
        return frozenset(self._dead_nodes)

    @property
    def dead_edges(self) -> frozenset[tuple[int, int]]:
        """Undirected edges currently severed, as sorted pairs."""
        return frozenset(self._dead_edges)

    @property
    def applied(self) -> tuple[FaultEvent, ...]:
        """Events applied so far, in application order."""
        return tuple(self._applied)

    def add_listener(self, listener: object) -> None:
        """Register an ``on_fault(event)`` observer."""
        if not callable(getattr(listener, "on_fault", None)):
            raise ConfigurationError(
                f"{listener!r} has no callable on_fault(event) method")
        self._listeners.append(listener)

    # -- driving ------------------------------------------------------------

    def arm(self) -> None:
        """Schedule every plan event on the simulator (once)."""
        if self.sim is None:
            raise ConfigurationError("arm() needs a simulator")
        if self._armed:
            raise ConfigurationError("injector already armed")
        self._armed = True
        for event in self.plan:
            self.sim.schedule_at(event.at_s, self.apply, event)

    def apply(self, event: FaultEvent) -> None:
        """Apply one event: update fault state, drive hooks, notify.

        Idempotent per state bit (a second ``node_down`` on a dead node is
        a no-op at the state level but still reaches hooks and listeners,
        which make their own no-op decisions).
        """
        if event.kind == "node_down":
            self._dead_nodes.add(event.node)
            if self.channel is not None:
                self.channel.set_node_down(event.node, True)
        elif event.kind == "node_up":
            self._dead_nodes.discard(event.node)
            if self.channel is not None:
                self.channel.set_node_down(event.node, False)
        elif event.kind == "link_down":
            self._dead_edges.add(event.link)
            if self.channel is not None:
                self.channel.set_link_down(event.link, True)
        elif event.kind == "link_up":
            self._dead_edges.discard(event.link)
            if self.channel is not None:
                self.channel.set_link_down(event.link, False)
        elif event.kind == "link_loss":
            if self.channel is not None:
                u, v = event.link
                self.channel.update_link_error_rates(
                    {(u, v): event.value, (v, u): event.value})
        elif event.kind == "control_loss":
            if self.channel is not None:
                u, v = event.link
                self.channel.update_control_error_rates(
                    {(u, v): event.value, (v, u): event.value})
        elif event.kind == "clock_glitch":
            clock = self.clocks.get(event.node)
            if clock is not None:
                now = self.sim.now if self.sim is not None else event.at_s
                clock.glitch(now, event.value)
        self._applied.append(event)
        for listener in self._listeners:
            listener.on_fault(event)

    def run_plan(self) -> None:
        """Analytically apply the whole plan in time order (no simulator)."""
        for event in self.plan:
            self.apply(event)

    # -- derived views -------------------------------------------------------

    def dead_directed_links(self) -> frozenset[Link]:
        """Directed links currently unusable (either endpoint dead, or edge cut)."""
        dead = set()
        for u, v in self.topology.links:
            if (u in self._dead_nodes or v in self._dead_nodes
                    or (min(u, v), max(u, v)) in self._dead_edges):
                dead.add((u, v))
        return frozenset(dead)
