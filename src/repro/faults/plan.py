"""Fault plans: scripted and stochastic schedules of fault events.

A :class:`FaultPlan` is an immutable, time-sorted sequence of
:class:`~repro.faults.events.FaultEvent` validated against a topology.
Plans come from two builders:

- :meth:`FaultPlan.scripted` -- an explicit event list, for regression
  tests and worked examples;
- :meth:`FaultPlan.stochastic` -- seeded Poisson churn, for the E17
  experiment.  The generator is a pure function of the supplied RNG, so
  the same seed always yields byte-identical plans, which is what lets
  the runtime cache and shard churn sweeps like any other experiment.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.faults.events import FaultEvent
from repro.net.topology import MeshTopology


class FaultPlan:
    """An immutable time-ordered fault schedule."""

    def __init__(self, events: Iterable[FaultEvent]) -> None:
        self.events: tuple[FaultEvent, ...] = tuple(
            sorted(events, key=FaultEvent.sort_key))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def topology_events(self) -> tuple[FaultEvent, ...]:
        """Only the events that change the connectivity graph."""
        return tuple(e for e in self.events if e.is_topology_event)

    def horizon_s(self) -> float:
        """Time of the last event (0.0 for an empty plan)."""
        return self.events[-1].at_s if self.events else 0.0

    def merged(self, other: "FaultPlan") -> "FaultPlan":
        """This plan and ``other`` interleaved into one time-sorted plan.

        The natural way to combine a mobility-derived topology stream
        (:meth:`repro.mobility.TopologyStream.fault_plan`) with an
        ambient stochastic fault plan: churn from motion and churn from
        failures ride the same injector.
        """
        return FaultPlan(self.events + other.events)

    # -- builders ----------------------------------------------------------

    @classmethod
    def scripted(cls, events: Sequence[FaultEvent],
                 topology: Optional[MeshTopology] = None) -> "FaultPlan":
        """Build a plan from an explicit event list.

        When ``topology`` is given, every victim is checked against it up
        front so a typo'd node id fails at plan-build time, not mid-run.
        """
        if topology is not None:
            for event in events:
                if event.node is not None and event.node not in topology.graph:
                    raise ConfigurationError(
                        f"fault victim node {event.node} is not in "
                        f"{topology.name}")
                if event.link is not None and not topology.has_link(event.link):
                    raise ConfigurationError(
                        f"fault victim link {event.link} is not in "
                        f"{topology.name}")
        return cls(events)

    @classmethod
    def stochastic(cls, topology: MeshTopology,
                   rng: Optional[np.random.Generator] = None,
                   horizon_s: Optional[float] = None,
                   node_crash_rate: float = 0.0,
                   link_down_rate: float = 0.0,
                   link_loss_rate: float = 0.0,
                   clock_glitch_rate: float = 0.0,
                   control_loss_rate: float = 0.0,
                   mean_downtime_s: float = 5.0,
                   loss_range: tuple[float, float] = (0.2, 0.8),
                   glitch_range_s: tuple[float, float] = (-2e-3, 2e-3),
                   protect_nodes: Iterable[int] = (),
                   seed: Optional[int] = None) -> "FaultPlan":
        """Seeded Poisson churn over ``[0, horizon_s)``.

        Randomness follows the standard ``rng=``/``seed=`` pair: pass a
        generator to share a stream, or an integer seed for a
        self-contained reproducible plan.

        Each fault class is an independent Poisson process with the given
        rate (events per second; 0 disables the class).  Every ``*_down``
        fault is paired with a recovery after an exponential downtime with
        mean ``mean_downtime_s``, kept only if it lands inside the horizon
        (so a late crash can outlive the run).  ``link_loss`` and
        ``control_loss`` steps draw a
        loss rate uniformly from ``loss_range`` and ``clock_glitch`` a phase
        jump uniformly from ``glitch_range_s``.

        ``protect_nodes`` (typically the gateway) are exempt from crashes;
        links are drawn over the whole mesh.  Victims are drawn from sorted
        candidate lists, so the plan depends only on the RNG state and the
        topology -- never on dict/set iteration order.
        """
        from repro.sim.random import resolve_rng

        rng = resolve_rng(rng, seed, what="FaultPlan.stochastic")
        if horizon_s is None:
            raise ConfigurationError(
                "FaultPlan.stochastic needs a horizon_s")
        if horizon_s <= 0:
            raise ConfigurationError("horizon must be positive")
        if mean_downtime_s <= 0:
            raise ConfigurationError("mean downtime must be positive")
        protected = frozenset(protect_nodes)
        crashable = [n for n in topology.nodes if n not in protected]
        edges = sorted(tuple(sorted(e)) for e in topology.graph.edges)
        events: list[FaultEvent] = []

        def arrivals(rate: float) -> list[float]:
            times, t = [], 0.0
            while rate > 0:
                t += float(rng.exponential(1.0 / rate))
                if t >= horizon_s:
                    break
                times.append(t)
            return times

        if node_crash_rate > 0 and not crashable:
            raise ConfigurationError(
                "node_crash_rate > 0 but every node is protected")
        for t in arrivals(node_crash_rate):
            node = crashable[int(rng.integers(len(crashable)))]
            events.append(FaultEvent(t, "node_down", node=node))
            recover = t + float(rng.exponential(mean_downtime_s))
            if recover < horizon_s:
                events.append(FaultEvent(recover, "node_up", node=node))
        if (link_down_rate > 0 or link_loss_rate > 0) and not edges:
            raise ConfigurationError("topology has no links to fault")
        for t in arrivals(link_down_rate):
            link = edges[int(rng.integers(len(edges)))]
            events.append(FaultEvent(t, "link_down", link=link))
            recover = t + float(rng.exponential(mean_downtime_s))
            if recover < horizon_s:
                events.append(FaultEvent(recover, "link_up", link=link))
        for t in arrivals(link_loss_rate):
            link = edges[int(rng.integers(len(edges)))]
            lo, hi = loss_range
            events.append(FaultEvent(t, "link_loss", link=link,
                                     value=float(rng.uniform(lo, hi))))
        for t in arrivals(clock_glitch_rate):
            node = topology.nodes[int(rng.integers(topology.num_nodes()))]
            lo, hi = glitch_range_s
            events.append(FaultEvent(t, "clock_glitch", node=node,
                                     value=float(rng.uniform(lo, hi))))
        if control_loss_rate > 0 and not edges:
            raise ConfigurationError("topology has no links to fault")
        for t in arrivals(control_loss_rate):
            link = edges[int(rng.integers(len(edges)))]
            lo, hi = loss_range
            events.append(FaultEvent(t, "control_loss", link=link,
                                     value=float(rng.uniform(lo, hi))))
        return cls(events)
