"""Fault-event vocabulary for dynamic-mesh experiments.

A :class:`FaultEvent` is one timestamped mutation of the running system:
a node crash or recovery, an undirected link severed or restored, a step
change of a link's loss rate, or an uncommanded clock phase jump.  Events
are plain validated data -- applying them to a live simulation is the
:class:`repro.faults.injector.FaultInjector`'s job, through the hooks the
channel/clock/topology layers expose for exactly this purpose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError

#: node-scoped fault kinds (require ``node``)
NODE_KINDS = frozenset({"node_down", "node_up", "clock_glitch"})
#: link-scoped fault kinds (require ``link``)
LINK_KINDS = frozenset({"link_down", "link_up", "link_loss", "control_loss"})
#: every recognised fault kind
ALL_KINDS = NODE_KINDS | LINK_KINDS
#: kinds that change the connectivity graph (and hence trigger repair)
TOPOLOGY_KINDS = frozenset({"node_down", "node_up", "link_down", "link_up"})


@dataclass(frozen=True)
class FaultEvent:
    """One timestamped fault.

    Parameters
    ----------
    at_s:
        True (simulator) time at which the fault strikes, seconds.
    kind:
        One of :data:`ALL_KINDS`.
    node:
        Victim node for node-scoped kinds.
    link:
        Victim undirected link ``(u, v)`` for link-scoped kinds; ``(u, v)``
        and ``(v, u)`` denote the same fault and are normalised to the
        sorted pair.
    value:
        ``link_loss`` / ``control_loss``: the new per-direction loss
        probability in ``[0, 1)`` (0.0 restores a clean link;
        ``control_loss`` hits only control-plane frames -- beacons and
        schedule announcements).  ``clock_glitch``: the phase jump in
        local seconds (either sign).  Unused otherwise.
    """

    at_s: float
    kind: str
    node: Optional[int] = None
    link: Optional[tuple[int, int]] = None
    value: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in ALL_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(ALL_KINDS)}")
        if self.at_s < 0:
            raise ConfigurationError(f"fault time {self.at_s} is negative")
        if self.kind in NODE_KINDS:
            if self.node is None:
                raise ConfigurationError(f"{self.kind} fault needs a node")
            if self.link is not None:
                raise ConfigurationError(
                    f"{self.kind} fault takes a node, not a link")
        else:
            if self.link is None:
                raise ConfigurationError(f"{self.kind} fault needs a link")
            if self.node is not None:
                raise ConfigurationError(
                    f"{self.kind} fault takes a link, not a node")
            u, v = self.link
            if u == v:
                raise ConfigurationError(f"degenerate link ({u}, {v})")
            object.__setattr__(self, "link", (min(u, v), max(u, v)))
        if self.kind in ("link_loss", "control_loss"):
            if self.value is None or not 0.0 <= self.value < 1.0:
                raise ConfigurationError(
                    f"{self.kind} needs a loss rate in [0, 1), "
                    f"got {self.value}")
        elif self.kind == "clock_glitch":
            if self.value is None:
                raise ConfigurationError(
                    "clock_glitch needs a phase jump value")
        elif self.value is not None:
            raise ConfigurationError(
                f"{self.kind} fault does not take a value")

    @property
    def is_topology_event(self) -> bool:
        """True iff this fault changes the connectivity graph."""
        return self.kind in TOPOLOGY_KINDS

    def sort_key(self) -> tuple:
        """Deterministic total order: time, then kind, then victim."""
        return (self.at_s, self.kind, self.node if self.node is not None
                else -1, self.link or (-1, -1))
