"""Deterministic fault injection for dynamic-mesh experiments (S31).

The paper's guarantees are computed for a static mesh; this subpackage
makes the mesh dynamic on purpose.  A seeded :class:`FaultPlan` (scripted
or stochastic Poisson churn) describes node crashes/recoveries, link
cuts/restores, link loss-rate steps and clock glitches; the
:class:`FaultInjector` applies it to a live simulation through dedicated
hooks in :mod:`repro.phy.channel`, :mod:`repro.sim.clock` and
:mod:`repro.net.topology` -- never by monkey-patching -- and notifies
listeners such as the online schedule-repair engine
(:class:`repro.core.repair.RepairEngine`).

Quickstart::

    from repro.faults import FaultEvent, FaultInjector, FaultPlan

    plan = FaultPlan.scripted([
        FaultEvent(1.0, "link_loss", link=(1, 2), value=0.5),
        FaultEvent(2.0, "link_down", link=(1, 2)),
    ], topology)
    injector = FaultInjector(plan, topology, sim=sim, channel=channel)
    injector.arm()          # faults now strike at their timestamps
"""

from repro.faults.events import (
    ALL_KINDS,
    LINK_KINDS,
    NODE_KINDS,
    TOPOLOGY_KINDS,
    FaultEvent,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan

__all__ = [
    "ALL_KINDS",
    "LINK_KINDS",
    "NODE_KINDS",
    "TOPOLOGY_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
]
