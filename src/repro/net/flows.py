"""Flow abstractions: what the QoS scheduler is asked to support.

A :class:`Flow` is a unidirectional traffic demand with a bandwidth
requirement and an optional end-to-end delay budget.  Routing
(:mod:`repro.net.routing`) turns flows into *routed flows* -- ordered lists
of directed links -- and the scheduler converts per-flow bandwidth into
per-link slot demands.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Optional

from repro.errors import ConfigurationError
from repro.net.topology import Link


@dataclass(frozen=True)
class Flow:
    """A unidirectional guaranteed-QoS traffic demand.

    Parameters
    ----------
    name:
        Unique identifier ("voip3", "bestef0", ...).
    src, dst:
        Endpoint node ids.
    rate_bps:
        Required application-layer bandwidth in bits/second.
    delay_budget_s:
        Maximum tolerable end-to-end (scheduling) delay in seconds, or
        ``None`` for best-effort flows with no delay guarantee.
    route:
        Filled in by routing: the ordered directed links from src to dst.
    """

    name: str
    src: int
    dst: int
    rate_bps: float
    delay_budget_s: Optional[float] = None
    route: tuple[Link, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ConfigurationError(f"flow {self.name}: src == dst == {self.src}")
        if self.rate_bps <= 0:
            raise ConfigurationError(
                f"flow {self.name}: rate must be positive, got {self.rate_bps}")
        if self.delay_budget_s is not None and self.delay_budget_s <= 0:
            raise ConfigurationError(
                f"flow {self.name}: delay budget must be positive")
        if self.route:
            self._validate_route()

    def _validate_route(self) -> None:
        if self.route[0][0] != self.src or self.route[-1][1] != self.dst:
            raise ConfigurationError(
                f"flow {self.name}: route endpoints do not match flow endpoints")
        for (____, mid), (nxt, ____) in zip(self.route, self.route[1:]):
            if mid != nxt:
                raise ConfigurationError(
                    f"flow {self.name}: route is not contiguous at {mid}->{nxt}")

    @property
    def is_routed(self) -> bool:
        return bool(self.route)

    @property
    def hops(self) -> int:
        """Number of links on the route (0 if unrouted)."""
        return len(self.route)

    def with_route(self, route: Iterable[Link]) -> "Flow":
        """Return a copy of this flow carrying the given route."""
        return replace(self, route=tuple(route))

    def slots_per_frame(self, frame_duration_s: float,
                        slot_capacity_bits: float) -> int:
        """Number of TDMA data slots per frame this flow needs on each link.

        The per-frame demand is ``ceil(rate * frame / slot_capacity)``: the
        flow accumulates ``rate * frame`` bits per frame and each slot moves
        ``slot_capacity`` bits one hop.
        """
        if frame_duration_s <= 0 or slot_capacity_bits <= 0:
            raise ConfigurationError(
                "frame duration and slot capacity must be positive")
        bits_per_frame = self.rate_bps * frame_duration_s
        return max(1, math.ceil(bits_per_frame / slot_capacity_bits))


class FlowSet:
    """An ordered collection of flows with unique names."""

    def __init__(self, flows: Iterable[Flow] = ()) -> None:
        self._flows: dict[str, Flow] = {}
        for flow in flows:
            self.add(flow)

    def add(self, flow: Flow) -> None:
        if flow.name in self._flows:
            raise ConfigurationError(f"duplicate flow name {flow.name!r}")
        self._flows[flow.name] = flow

    def remove(self, name: str) -> Flow:
        try:
            return self._flows.pop(name)
        except KeyError:
            raise ConfigurationError(f"no flow named {name!r}") from None

    def replace(self, flow: Flow) -> None:
        """Replace the flow with the same name (e.g. after routing)."""
        if flow.name not in self._flows:
            raise ConfigurationError(f"no flow named {flow.name!r}")
        self._flows[flow.name] = flow

    def get(self, name: str) -> Flow:
        try:
            return self._flows[name]
        except KeyError:
            raise ConfigurationError(f"no flow named {name!r}") from None

    def __contains__(self, name: object) -> bool:
        return name in self._flows

    def __iter__(self) -> Iterator[Flow]:
        return iter(self._flows.values())

    def __len__(self) -> int:
        return len(self._flows)

    def names(self) -> list[str]:
        return list(self._flows)

    def guaranteed(self) -> list[Flow]:
        """Flows with a delay budget (guaranteed-QoS class)."""
        return [f for f in self if f.delay_budget_s is not None]

    def best_effort(self) -> list[Flow]:
        """Flows without a delay budget."""
        return [f for f in self if f.delay_budget_s is None]

    def link_demands(self, frame_duration_s: float,
                     slot_capacity_bits: float) -> dict[Link, int]:
        """Aggregate per-link slot demand over all (routed) flows.

        Raises if any flow is unrouted; route first.
        """
        demands: dict[Link, int] = {}
        for flow in self:
            if not flow.is_routed:
                raise ConfigurationError(
                    f"flow {flow.name} is unrouted; call route_all() first")
            per_link = flow.slots_per_frame(frame_duration_s, slot_capacity_bits)
            for link in flow.route:
                demands[link] = demands.get(link, 0) + per_link
        return demands

    def total_rate_bps(self) -> float:
        return sum(f.rate_bps for f in self)
