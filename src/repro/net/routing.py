"""Routing: turning flows into ordered link paths.

Two routing modes cover the paper line's scenarios:

- **Shortest path** between arbitrary endpoints (min hop count, ties broken
  deterministically by node id) -- used for peer-to-peer VoIP flows.
- **Gateway tree**: a BFS tree rooted at a gateway node; all traffic to or
  from the gateway follows tree edges.  This is the 802.16 mesh "scheduling
  tree" on which the centralized scheduler and the ToN tree-ordering
  algorithm operate.
"""

from __future__ import annotations

import networkx as nx

from repro.errors import RoutingError
from repro.net.flows import Flow, FlowSet
from repro.net.topology import Link, MeshTopology


def shortest_path_route(topology: MeshTopology, src: int, dst: int) -> list[Link]:
    """Min-hop route as a list of directed links, deterministic tie-breaking.

    Determinism matters: schedulers are compared on identical routed
    workloads, so the route must not depend on dict ordering.  We run BFS
    with sorted neighbour expansion, which yields the lexicographically
    smallest min-hop path.
    """
    if src == dst:
        raise RoutingError(f"src == dst == {src}")
    if src not in topology.graph or dst not in topology.graph:
        raise RoutingError(f"unknown endpoint in ({src}, {dst})")
    # BFS with sorted neighbours; parent pointers give the lexicographically
    # smallest shortest path.
    parents: dict[int, int] = {src: src}
    frontier = [src]
    while frontier and dst not in parents:
        next_frontier: list[int] = []
        for node in frontier:
            for neighbor in topology.neighbors(node):
                if neighbor not in parents:
                    parents[neighbor] = node
                    next_frontier.append(neighbor)
        frontier = next_frontier
    if dst not in parents:
        raise RoutingError(f"no route from {src} to {dst}")
    path = [dst]
    while path[-1] != src:
        path.append(parents[path[-1]])
    path.reverse()
    return [(a, b) for a, b in zip(path, path[1:])]


def route_all(topology: MeshTopology, flows: FlowSet) -> FlowSet:
    """Return a new :class:`FlowSet` with every flow routed via shortest path.

    Flows that already carry a route are preserved as-is.
    """
    routed = FlowSet()
    for flow in flows:
        if flow.is_routed:
            routed.add(flow)
        else:
            routed.add(flow.with_route(
                shortest_path_route(topology, flow.src, flow.dst)))
    return routed


def choose_gateway(topology: MeshTopology) -> int:
    """The node minimizing worst-case tree depth (graph center).

    Placing the gateway at the center minimizes the deepest tier of the
    scheduling tree, which bounds both sync-beacon relay error and
    worst-case route length.  Ties break to the smallest node id.
    """
    eccentricities = nx.eccentricity(topology.graph)
    return min(sorted(eccentricities), key=lambda n: eccentricities[n])


def gateway_tree(topology: MeshTopology, gateway: int) -> nx.DiGraph:
    """BFS scheduling tree rooted at ``gateway``.

    Returns a directed graph with edges pointing *away* from the gateway
    (parent -> child), mirroring the 802.16 mesh network-entry tree.  Each
    node's parent is its min-hop neighbour with the smallest id, so the tree
    is deterministic.
    """
    if gateway not in topology.graph:
        raise RoutingError(f"gateway {gateway} is not in the topology")
    tree = nx.DiGraph()
    tree.add_node(gateway)
    visited = {gateway}
    frontier = [gateway]
    while frontier:
        next_frontier: list[int] = []
        for node in frontier:
            for neighbor in topology.neighbors(node):
                if neighbor not in visited:
                    visited.add(neighbor)
                    tree.add_edge(node, neighbor)
                    next_frontier.append(neighbor)
        frontier = next_frontier
    return tree


def route_on_tree(tree: nx.DiGraph, gateway: int, src: int, dst: int) -> list[Link]:
    """Route src -> dst along tree edges (up to the meeting node, then down).

    For gateway traffic (``dst == gateway`` or ``src == gateway``) this is a
    pure up- or down-tree path; otherwise it goes up to the lowest common
    ancestor and back down, as 802.16 mesh forwarding does.
    """
    if src == dst:
        raise RoutingError(f"src == dst == {src}")
    for node in (src, dst):
        if node not in tree:
            raise RoutingError(f"node {node} is not on the scheduling tree")

    def path_to_root(node: int) -> list[int]:
        path = [node]
        while path[-1] != gateway:
            preds = list(tree.predecessors(path[-1]))
            if len(preds) != 1:
                raise RoutingError(
                    f"node {path[-1]} has {len(preds)} parents; not a tree")
            path.append(preds[0])
        return path

    up_src = path_to_root(src)       # src ... gateway
    up_dst = path_to_root(dst)       # dst ... gateway
    ancestors_of_dst = set(up_dst)
    # Climb from src until we hit an ancestor of dst (the LCA).
    lca_index = next(i for i, node in enumerate(up_src)
                     if node in ancestors_of_dst)
    lca = up_src[lca_index]
    upward = up_src[:lca_index + 1]                    # src ... lca
    downward = list(reversed(up_dst[:up_dst.index(lca)]))  # (lca,) ... dst minus lca
    path = upward + downward
    return [(a, b) for a, b in zip(path, path[1:])]
