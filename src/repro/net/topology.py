"""Mesh topology model and generators.

A :class:`MeshTopology` is an undirected connectivity graph (who can hear
whom) plus node positions.  Directed *links* ``(u, v)`` are the scheduling
unit: the TDMA scheduler assigns slots to directed links, and the conflict
graph (:mod:`repro.core.conflict`) has one vertex per directed link.

All generators produce deterministic node ids (integers) and a canonical,
sorted link ordering so that experiment runs are reproducible and so link
indices are stable across scheduler implementations.
"""

from __future__ import annotations

import itertools
import math
from typing import Iterable, Optional

import networkx as nx
import numpy as np

from repro.errors import ConfigurationError

#: A directed link: (transmitter node id, receiver node id).
Link = tuple[int, int]


class MeshTopology:
    """Connectivity graph with positions and canonical directed links.

    Parameters
    ----------
    graph:
        Undirected :class:`networkx.Graph` of radio connectivity.  Node ids
        must be integers.
    positions:
        Optional mapping node id -> (x, y) metres, used by distance-based
        propagation models and plotting.
    name:
        Human-readable label used in reports.
    """

    def __init__(self, graph: nx.Graph,
                 positions: Optional[dict[int, tuple[float, float]]] = None,
                 name: str = "mesh") -> None:
        if graph.number_of_nodes() == 0:
            raise ConfigurationError("topology must have at least one node")
        if not all(isinstance(n, int) for n in graph.nodes):
            raise ConfigurationError("topology node ids must be integers")
        if not nx.is_connected(graph):
            raise ConfigurationError("topology must be connected")
        self.graph = graph
        self.positions = positions or {}
        self.name = name
        #: Monotone mutation counter: bumped by every in-place structural
        #: change made through :meth:`apply_edge_changes`, so derived caches
        #: (e.g. the engine's memoized topology fingerprint) can detect that
        #: this object is no longer the graph they were computed from.
        self.mutations = 0
        self._rebuild_links()

    def _rebuild_links(self) -> None:
        #: Canonical ordering of directed links: sorted (u, v) pairs, both
        #: directions of every undirected edge.
        self.links: list[Link] = sorted(
            itertools.chain.from_iterable(
                ((u, v), (v, u)) for u, v in self.graph.edges))
        self._link_index = {link: i for i, link in enumerate(self.links)}

    # -- basic queries ----------------------------------------------------

    @property
    def nodes(self) -> list[int]:
        """Node ids in sorted order."""
        return sorted(self.graph.nodes)

    def num_nodes(self) -> int:
        return self.graph.number_of_nodes()

    def num_links(self) -> int:
        """Number of *directed* links."""
        return len(self.links)

    def link_index(self, link: Link) -> int:
        """Stable index of a directed link in :attr:`links`."""
        try:
            return self._link_index[link]
        except KeyError:
            raise ConfigurationError(f"{link} is not a link of {self.name}") from None

    def has_link(self, link: Link) -> bool:
        return link in self._link_index

    def neighbors(self, node: int) -> list[int]:
        """Radio neighbours of ``node``, sorted."""
        return sorted(self.graph.neighbors(node))

    def hop_distance(self, a: int, b: int) -> int:
        """Hop distance between two nodes."""
        return nx.shortest_path_length(self.graph, a, b)

    def distance(self, a: int, b: int) -> float:
        """Euclidean distance in metres (requires positions)."""
        if a not in self.positions or b not in self.positions:
            raise ConfigurationError("topology has no positions for distance()")
        (xa, ya), (xb, yb) = self.positions[a], self.positions[b]
        return math.hypot(xa - xb, ya - yb)

    @property
    def has_positions(self) -> bool:
        """True iff every node has a layout position."""
        return all(n in self.positions for n in self.graph.nodes)

    def position(self, node: int) -> tuple[float, float]:
        """Layout position of ``node`` in metres.

        Every generator in this module records the positions it placed
        nodes at, so mobility models (:mod:`repro.mobility`) and
        distance-based channel models can seed from the real layout.
        """
        try:
            return self.positions[node]
        except KeyError:
            raise ConfigurationError(
                f"{self.name} has no position for node {node}") from None

    # -- in-place mutation ------------------------------------------------

    def apply_edge_changes(self, add: Iterable[tuple[int, int]] = (),
                           remove: Iterable[tuple[int, int]] = ()) -> None:
        """Mutate connectivity in place, keeping every invariant intact.

        This is the *only* supported way to change a topology after
        construction: it revalidates connectivity (rolling back on
        failure), rebuilds the canonical link ordering, and bumps
        :attr:`mutations` so memoized derived state -- most importantly the
        engine's cached topology fingerprint -- is invalidated instead of
        silently served stale.  Mutating :attr:`graph` directly leaves
        :attr:`links` and cached fingerprints stale; don't.
        """
        candidate = self.graph.copy()
        for u, v in remove:
            if candidate.has_edge(u, v):
                candidate.remove_edge(u, v)
        for u, v in add:
            if u not in candidate or v not in candidate:
                raise ConfigurationError(
                    f"cannot add edge ({u}, {v}): unknown node")
            if u == v:
                raise ConfigurationError(f"degenerate edge ({u}, {v})")
            candidate.add_edge(u, v)
        if not nx.is_connected(candidate):
            raise ConfigurationError(
                "edge changes would disconnect the topology")
        self.graph = candidate
        self.mutations += 1
        self._rebuild_links()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MeshTopology({self.name!r}, nodes={self.num_nodes()}, "
                f"links={self.num_links()})")


# -- generators -----------------------------------------------------------

def chain_topology(num_nodes: int, spacing: float = 100.0) -> MeshTopology:
    """A linear chain ``0 - 1 - ... - n-1`` with nodes ``spacing`` m apart.

    Chains are the canonical topology for delay-vs-hops experiments (E2/E3):
    every multihop path is forced and spatial reuse kicks in beyond the
    conflict distance.
    """
    if num_nodes < 1:
        raise ConfigurationError("chain needs at least 1 node")
    graph = nx.path_graph(num_nodes)
    positions = {i: (i * spacing, 0.0) for i in range(num_nodes)}
    return MeshTopology(graph, positions, name=f"chain{num_nodes}")


def grid_topology(rows: int, cols: int, spacing: float = 100.0) -> MeshTopology:
    """A ``rows x cols`` grid with 4-neighbour connectivity.

    Grids approximate planned metro mesh deployments and are the standard
    topology in the paper line's VoIP capacity experiments (E1/E5).
    """
    if rows < 1 or cols < 1:
        raise ConfigurationError("grid dimensions must be positive")
    grid = nx.grid_2d_graph(rows, cols)
    mapping = {(r, c): r * cols + c for r, c in grid.nodes}
    graph = nx.relabel_nodes(grid, mapping)
    positions = {r * cols + c: (c * spacing, r * spacing)
                 for r in range(rows) for c in range(cols)}
    return MeshTopology(graph, positions, name=f"grid{rows}x{cols}")


def star_topology(num_leaves: int, spacing: float = 100.0) -> MeshTopology:
    """A hub (node 0) with ``num_leaves`` one-hop leaves.

    Stars have a fully conflicting link set (every link shares the hub), so
    they lower-bound spatial reuse; useful as a scheduling worst case.
    """
    if num_leaves < 1:
        raise ConfigurationError("star needs at least 1 leaf")
    graph = nx.star_graph(num_leaves)
    positions = {0: (0.0, 0.0)}
    for i in range(1, num_leaves + 1):
        angle = 2 * math.pi * (i - 1) / num_leaves
        positions[i] = (spacing * math.cos(angle), spacing * math.sin(angle))
    return MeshTopology(graph, positions, name=f"star{num_leaves}")


def binary_tree_topology(depth: int, spacing: float = 100.0) -> MeshTopology:
    """A complete binary tree of the given depth, rooted at node 0.

    Trees are the topology class for which the ToN 2009 min-delay ordering
    algorithm is exact (experiment E7).
    """
    if depth < 0:
        raise ConfigurationError("tree depth must be non-negative")
    graph = nx.balanced_tree(2, depth)
    positions: dict[int, tuple[float, float]] = {}
    for node in graph.nodes:
        level = int(math.log2(node + 1))
        index_in_level = node - (2 ** level - 1)
        width = 2 ** level
        positions[node] = (
            (index_in_level - (width - 1) / 2) * spacing * 2 ** (depth - level),
            level * spacing,
        )
    return MeshTopology(graph, positions, name=f"btree{depth}")


def random_disk_topology(num_nodes: int, radio_range: float,
                         area: float,
                         rng: Optional[np.random.Generator] = None,
                         max_tries: int = 200,
                         seed: Optional[int] = None) -> MeshTopology:
    """Uniform random node placement with unit-disk connectivity.

    Nodes are placed uniformly in an ``area x area`` square; two nodes are
    connected iff their distance is at most ``radio_range``.  Placement is
    retried until the graph is connected (up to ``max_tries`` draws).

    Either ``rng`` or ``seed`` must be given.  Every retry draws its own
    child seed from the caller's generator and places nodes with a fresh
    generator seeded from it, so the whole retry loop is a pure function of
    the initial seed -- two runs with the same seed walk the exact same
    sequence of candidate placements, and the failing child seed can be
    reported when the loop gives up.

    Random-disk meshes model unplanned community deployments; they produce
    irregular conflict graphs that stress the schedulers differently from
    grids.
    """
    if num_nodes < 1:
        raise ConfigurationError("need at least one node")
    if radio_range <= 0 or area <= 0:
        raise ConfigurationError("radio_range and area must be positive")
    from repro.sim.random import resolve_rng

    rng = resolve_rng(rng, seed, what="random_disk_topology")
    try_seeds = []
    for _ in range(max_tries):
        try_seed = int(rng.integers(0, 2 ** 32))
        try_seeds.append(try_seed)
        coords = np.random.default_rng(try_seed).uniform(
            0.0, area, size=(num_nodes, 2))
        graph = nx.Graph()
        graph.add_nodes_from(range(num_nodes))
        for i in range(num_nodes):
            for j in range(i + 1, num_nodes):
                if np.hypot(*(coords[i] - coords[j])) <= radio_range:
                    graph.add_edge(i, j)
        if num_nodes == 1 or nx.is_connected(graph):
            positions = {i: (float(coords[i][0]), float(coords[i][1]))
                         for i in range(num_nodes)}
            return MeshTopology(graph, positions,
                                name=f"disk{num_nodes}")
    raise ConfigurationError(
        f"failed to draw a connected random-disk topology in {max_tries} "
        f"tries (seed={seed if seed is not None else 'external rng'}, "
        f"first/last try seeds {try_seeds[0]}/{try_seeds[-1]}); "
        "increase radio_range or decrease area")


def from_edges(edges: Iterable[tuple[int, int]], name: str = "custom",
               positions: Optional[dict[int, tuple[float, float]]] = None,
               ) -> MeshTopology:
    """Build a topology from an explicit undirected edge list."""
    graph = nx.Graph()
    graph.add_edges_from(edges)
    return MeshTopology(graph, positions, name=name)


def surviving_topology(topology: MeshTopology,
                       dead_nodes: Iterable[int] = (),
                       dead_edges: Iterable[tuple[int, int]] = (),
                       anchor: int = 0,
                       ) -> tuple[MeshTopology, frozenset[int]]:
    """Topology induced by removing failed nodes/edges, anchored at a node.

    This is the fault-injection hook used by :mod:`repro.faults` and
    :mod:`repro.core.repair`: given the base topology and the current set of
    dead nodes and dead undirected edges, it returns the
    :class:`MeshTopology` of the connected component containing ``anchor``
    (typically the gateway) together with the set of nodes that are *not*
    in that component -- dead nodes plus nodes partitioned away from the
    anchor.  Returning only the anchor's component keeps the result
    connected (a :class:`MeshTopology` invariant) and matches what the
    schedule-repair engine can actually serve: flows to unreachable nodes
    must be parked, not scheduled.

    ``dead_edges`` pairs are undirected; ``(u, v)`` and ``(v, u)`` are the
    same edge.  Dead entries that do not exist in the base topology are
    ignored, so callers can pass accumulated fault state verbatim.
    """
    dead_node_set = frozenset(dead_nodes)
    if anchor not in topology.graph or anchor in dead_node_set:
        raise ConfigurationError(
            f"anchor node {anchor} is dead or not in the topology")
    graph = topology.graph.copy()
    graph.remove_nodes_from(n for n in dead_node_set if n in graph)
    for u, v in dead_edges:
        if graph.has_edge(u, v):
            graph.remove_edge(u, v)
    component = nx.node_connected_component(graph, anchor)
    unreachable = frozenset(topology.graph.nodes) - frozenset(component)
    survivor = graph.subgraph(component).copy()
    positions = {n: topology.positions[n] for n in component
                 if n in topology.positions}
    return (MeshTopology(survivor, positions,
                         name=f"{topology.name}-survivor"),
            unreachable)
