"""Application packet model shared by the DCF and TDMA data paths."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError
from repro.net.topology import Link

_packet_ids = itertools.count()


@dataclass
class Packet:
    """One application-layer packet traversing a source route.

    ``hop`` is the index of the *next* link to traverse; forwarders
    increment it as the packet moves.  ``size_bits`` is the application
    payload including RTP/UDP/IP overhead (MAC/PHY overheads are added by
    the respective MACs).
    """

    flow: str
    seq: int
    size_bits: int
    created_s: float
    route: tuple[Link, ...]
    hop: int = 0
    #: queueing class: 0 = guaranteed (served first on a shared link),
    #: larger = more elastic
    priority: int = 0
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.size_bits <= 0:
            raise ConfigurationError("packet size must be positive")
        if not self.route:
            raise ConfigurationError("packet needs a route")

    @property
    def src(self) -> int:
        return self.route[0][0]

    @property
    def dst(self) -> int:
        return self.route[-1][1]

    @property
    def current_link(self) -> Optional[Link]:
        """The link this packet should traverse next (None at destination)."""
        if self.hop >= len(self.route):
            return None
        return self.route[self.hop]

    @property
    def delivered(self) -> bool:
        return self.hop >= len(self.route)

    def advance(self) -> None:
        if self.delivered:
            raise ConfigurationError(
                f"packet {self.packet_id} already delivered")
        self.hop += 1
