"""Topologies, routing and flow abstractions (system S20 in DESIGN.md)."""

from repro.net.flows import Flow, FlowSet
from repro.net.routing import (
    choose_gateway,
    gateway_tree,
    route_all,
    route_on_tree,
    shortest_path_route,
)
from repro.net.topology import (
    MeshTopology,
    binary_tree_topology,
    chain_topology,
    grid_topology,
    random_disk_topology,
    star_topology,
    surviving_topology,
)

__all__ = [
    "Flow",
    "FlowSet",
    "MeshTopology",
    "binary_tree_topology",
    "chain_topology",
    "choose_gateway",
    "gateway_tree",
    "grid_topology",
    "random_disk_topology",
    "route_all",
    "route_on_tree",
    "shortest_path_route",
    "star_topology",
    "surviving_topology",
]
