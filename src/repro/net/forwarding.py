"""Source-routed forwarding shared by the DCF and TDMA stacks.

Both MACs deliver application packets to the node they addressed; the
forwarder advances the packet's hop pointer and either hands it to the
sink (at the destination) or re-queues it on the node's MAC toward the
next hop.  The MAC differences are hidden behind a one-method adapter:
``transmit(node, packet)`` queues the packet for its ``current_link``.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol

from repro.errors import SimulationError
from repro.net.packet import Packet
from repro.sim.trace import Trace


class MacAdapter(Protocol):
    """What the forwarder needs from a MAC stack."""

    def transmit(self, node: int, packet: Packet) -> bool:
        """Queue ``packet`` at ``node`` for its current link.

        Returns False when the MAC dropped it (queue overflow).
        """


class SourceRoutedForwarder:
    """Per-mesh forwarding logic.

    Parameters
    ----------
    mac:
        Adapter over the per-node MACs.
    on_delivered:
        Callback ``(packet, now)`` at final delivery.
    trace:
        Optional trace; emits ``fwd.hop``, ``fwd.drop`` and ``fwd.deliver``.
    """

    def __init__(self, mac: MacAdapter,
                 on_delivered: Callable[[Packet, float], None],
                 trace: Optional[Trace] = None) -> None:
        self.mac = mac
        self.on_delivered = on_delivered
        self.trace = trace if trace is not None else Trace(enabled=False)

    def originate(self, packet: Packet, now: float) -> bool:
        """Inject a fresh packet at its source node."""
        if packet.hop != 0:
            raise SimulationError(
                f"packet {packet.packet_id} originated mid-route")
        return self._forward(packet.src, packet, now)

    def packet_arrived(self, node: int, packet: Packet, now: float) -> None:
        """A MAC delivered ``packet`` to ``node``; route it onward."""
        link = packet.current_link
        if link is None or link[1] != node:
            raise SimulationError(
                f"packet {packet.packet_id} arrived at {node} but expected "
                f"link {link}")
        packet.advance()
        if packet.delivered:
            self.trace.emit(now, "fwd.deliver", flow=packet.flow,
                            seq=packet.seq, node=node)
            self.on_delivered(packet, now)
            return
        self.trace.emit(now, "fwd.hop", flow=packet.flow, seq=packet.seq,
                        node=node)
        self._forward(node, packet, now)

    def _forward(self, node: int, packet: Packet, now: float) -> bool:
        accepted = self.mac.transmit(node, packet)
        if not accepted:
            self.trace.emit(now, "fwd.drop", flow=packet.flow,
                            seq=packet.seq, node=node)
        return accepted
