"""Declarative parameter sweeps over experiments and scenarios.

A :class:`Sweep` is a target plus a parameter grid plus (optionally) a
seed list; :meth:`Sweep.tasks` expands the cartesian product into a
flat, deterministically ordered task list that :func:`run_sweep` pushes
through the execution pool.  Because every task has a stable content
key, sweeps are *resumable*: re-running the same sweep with a warm
cache only computes the points that are missing (killed mid-sweep,
failed, or newly added to the grid).

>>> sweep = Sweep("E9", grid={"guard_us": (30.0, 60.0, 120.0)})
>>> [t.label for t in sweep.tasks()]      # doctest: +NORMALIZE_WHITESPACE
['E9[guard_us=30.0]', 'E9[guard_us=60.0]', 'E9[guard_us=120.0]']
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from repro.errors import ConfigurationError
from repro.runtime.cache import ResultCache
from repro.runtime.ledger import RunLedger
from repro.runtime.pool import run_tasks
from repro.runtime.tasks import Task, TaskResult, TargetLike, make_task


@dataclass
class Sweep:
    """A parameter grid over one target.

    Parameters
    ----------
    target:
        Experiment id, ``module:function`` path, or callable (see
        :func:`repro.runtime.tasks.make_task`).
    grid:
        Mapping of parameter name to the sequence of values to sweep.
        Iteration order follows the mapping's insertion order, last
        parameter varying fastest.
    base:
        Fixed keyword parameters merged into every point.
    seeds:
        When given, every grid point is replicated once per seed (the
        task's ``seed`` field; the target then receives a fresh
        ``RngRegistry(seed)`` as its first argument).
    """

    target: TargetLike
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    base: Mapping[str, Any] = field(default_factory=dict)
    seeds: Optional[Sequence[int]] = None

    def __post_init__(self) -> None:
        for name, values in self.grid.items():
            if name in self.base:
                raise ConfigurationError(
                    f"parameter {name!r} appears in both grid and base")
            if not len(tuple(values)):
                raise ConfigurationError(
                    f"grid axis {name!r} has no values")

    def points(self) -> list[dict[str, Any]]:
        """Every parameter combination, in deterministic grid order."""
        names = list(self.grid)
        combos = itertools.product(*(self.grid[n] for n in names))
        return [{**self.base, **dict(zip(names, combo))}
                for combo in combos]

    def tasks(self) -> list[Task]:
        out: list[Task] = []
        for params in self.points():
            if self.seeds is None:
                out.append(make_task(self.target, params))
            else:
                out.extend(make_task(self.target, params, seed=seed)
                           for seed in self.seeds)
        return out

    def __len__(self) -> int:
        points = 1
        for values in self.grid.values():
            points *= len(tuple(values))
        return points * (len(tuple(self.seeds))
                         if self.seeds is not None else 1)


def run_sweep(sweep: Sweep, *, jobs: Optional[int] = 1,
              cache: Optional[ResultCache] = None,
              ledger: Optional[RunLedger] = None,
              **pool_kwargs: Any) -> list[TaskResult]:
    """Expand and execute a sweep; results come back in grid order.

    Any extra keyword arguments (``timeout_s``, ``retries``,
    ``backoff_s``, ``on_result``) pass through to
    :func:`repro.runtime.pool.run_tasks`.
    """
    return run_tasks(sweep.tasks(), jobs=jobs, cache=cache, ledger=ledger,
                     **pool_kwargs)
