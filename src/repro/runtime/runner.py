"""Suite integration: run experiments through the execution runtime.

:func:`run_experiments` is what ``python -m repro`` (and anything else
that wants whole experiments rather than raw tasks) calls.  It

1. dedupes the requested ids while preserving order,
2. expands each experiment into shard tasks along its parallel axis
   (:func:`repro.runtime.tasks.shard_experiment`), so one slow
   experiment spreads across workers and caches per sweep point,
3. pushes everything through :func:`repro.runtime.pool.run_tasks`
   with the result cache and run ledger attached, and
4. reassembles per-shard tables into one
   :class:`~repro.analysis.experiments.ExperimentResult` per id,
   reporting outcomes *in requested order*.

Sharding is deterministic and row-order preserving: each shard is the
experiment called with a singleton sweep axis, and every experiment in
:data:`~repro.runtime.tasks.SHARD_AXES` draws its randomness per axis
value, so the merged table is identical to a monolithic serial run.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional, Sequence

from repro import obs
from repro.runtime.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.runtime.ledger import DEFAULT_LEDGER_NAME, RunLedger
from repro.runtime.pool import run_tasks
from repro.runtime.tasks import (
    TaskResult,
    merge_experiment_results,
    shard_experiment,
)


@dataclass
class ExperimentOutcome:
    """Final state of one requested experiment."""

    experiment: str
    outcome: str  # "ok" | "failed" | "skipped"
    result: Optional[object] = None  # ExperimentResult when ok
    error: Optional[str] = None
    wall_s: float = 0.0  # summed compute time across shards
    cached: bool = False  # every shard came from the cache
    shards: int = 1

    @property
    def ok(self) -> bool:
        return self.outcome == "ok"


def dedupe_ids(ids: Sequence[str]) -> list[str]:
    """Uppercase and drop repeats while preserving first-seen order."""
    return list(dict.fromkeys(e.upper() for e in ids))


def run_experiments(ids: Sequence[str], *,
                    jobs: Optional[int] = 1,
                    use_cache: bool = True,
                    cache_dir: str = DEFAULT_CACHE_DIR,
                    ledger_path: Optional[str] = None,
                    ledger_backend: Optional[str] = None,
                    resume: bool = False,
                    timeout_s: Optional[float] = None,
                    retries: int = 1,
                    backoff_s: float = 0.5,
                    jitter: float = 0.0,
                    retry_timeouts: bool = False,
                    chaos=None,
                    heartbeat_s: float = 5.0,
                    shard: bool = True,
                    params: Optional[Mapping[str, Any]] = None,
                    on_experiment: Optional[
                        Callable[[int, ExperimentOutcome], None]] = None,
                    metrics: Optional[obs.MetricsRegistry] = None,
                    trace=None,
                    ) -> list[ExperimentOutcome]:
    """Run experiments by id; one :class:`ExperimentOutcome` per id.

    ``on_experiment(index, outcome)`` fires the moment all of an
    experiment's shards have finished -- out of requested order when
    ``jobs > 1``.  The returned list is always in requested order.
    Failures never raise: they come back as ``outcome="failed"`` with
    the (deduplicated) shard error strings, so one broken experiment
    cannot take down the rest of a long suite run.

    ``params`` overrides experiment keyword arguments -- applied to
    every requested id, so it is most useful running one experiment
    (``python -m repro E21 --param sizes=[[24,16]]``).  Sharding
    honours overridden axis values and cache keys include the params.

    ``metrics`` turns on collection: every fresh task runs inside its
    own registry, the deterministic snapshots are merged into the given
    registry *in flat task order* (so the aggregate is identical for
    any ``jobs`` value), and each cached result's metrics sidecar is
    merged the same way.  Runtime-level counters and timers
    (``runtime.tasks.*``, ``runtime.task``, ``runtime.queue``) land in
    the same registry.  ``trace`` (a
    :class:`~repro.obs.tracing.TraceWriter`) streams spans, serial mode
    only.

    ``ledger_backend`` picks ``"jsonl"`` or ``"sqlite"`` explicitly
    (default: inferred from the path suffix).  ``chaos`` threads a
    :class:`~repro.runtime.chaos.ChaosPolicy` into the pool;
    ``retry_timeouts`` and ``jitter`` are forwarded to
    :func:`~repro.runtime.pool.run_tasks` unchanged.
    """
    ids = dedupe_ids(ids)
    cache = ResultCache(cache_dir) if use_cache else None
    ledger = RunLedger(ledger_path if ledger_path is not None
                       else pathlib.Path(cache_dir) / DEFAULT_LEDGER_NAME,
                       backend=ledger_backend)
    completed_keys = ledger.completed_keys() if resume else set()
    if resume:
        # Tasks a previous run started but never finished (crash,
        # SIGKILL) are orphans: they are absent from completed_keys, so
        # they re-run below; surfacing them here feeds the
        # runtime.ledger.orphans_detected counter and the summary view.
        ledger.orphans()

    # Expand every experiment into its shard tasks; remember the map
    # from flat task index back to (experiment, shard slot).
    if shard:
        shard_lists = [shard_experiment(exp_id, params) for exp_id in ids]
    else:
        from repro.runtime.tasks import make_task

        shard_lists = [[make_task(exp_id, params)] for exp_id in ids]
    flat_tasks = []
    flat_owner: list[tuple[int, int]] = []  # (experiment idx, shard idx)
    for exp_index, shard_tasks in enumerate(shard_lists):
        for shard_index, task in enumerate(shard_tasks):
            flat_tasks.append(task)
            flat_owner.append((exp_index, shard_index))

    shard_results: list[list[Optional[TaskResult]]] = [
        [None] * len(shards) for shards in shard_lists]
    remaining = [len(shards) for shards in shard_lists]
    outcomes: list[Optional[ExperimentOutcome]] = [None] * len(ids)

    def settle(exp_index: int) -> None:
        outcomes[exp_index] = _assemble(ids[exp_index],
                                        shard_results[exp_index])
        if on_experiment is not None:
            on_experiment(exp_index, outcomes[exp_index])

    def on_result(flat_index: int, result: TaskResult) -> None:
        exp_index, shard_index = flat_owner[flat_index]
        shard_results[exp_index][shard_index] = result
        remaining[exp_index] -= 1
        if remaining[exp_index] == 0:
            settle(exp_index)

    task_results: list[Optional[TaskResult]] = [None] * len(flat_tasks)

    def track(flat_index: int, result: TaskResult) -> None:
        task_results[flat_index] = result
        on_result(flat_index, result)

    # Resume pass: tasks the ledger says finished before, but whose
    # value is not in the cache, are skipped rather than recomputed.
    to_run, to_run_index = [], []
    for flat_index, task in enumerate(flat_tasks):
        key = cache.key_for(task) if cache is not None else None
        in_cache = cache is not None and cache.get(task) is not None
        if resume and not in_cache and \
                (key or _keyless(task)) in completed_keys:
            track(flat_index, TaskResult(
                task=task, key=key or _keyless(task), outcome="skipped",
                error="previously completed; value not cached",
                attempts=0, worker="resume"))
        else:
            to_run.append(task)
            to_run_index.append(flat_index)

    try:
        if to_run:
            run_tasks(to_run, jobs=jobs, timeout_s=timeout_s,
                      retries=retries, backoff_s=backoff_s, jitter=jitter,
                      retry_timeouts=retry_timeouts, chaos=chaos,
                      heartbeat_s=heartbeat_s, cache=cache, ledger=ledger,
                      on_result=lambda i, r: track(to_run_index[i], r),
                      collect_metrics=metrics is not None,
                      trace=trace if (jobs == 1) else None)
    finally:
        ledger.close()

    if metrics is not None:
        # Merge in flat-task order, not completion order: float sums are
        # then reproducible for any jobs value.
        for result in task_results:
            if result is None:
                continue
            metrics.merge_snapshot(result.metrics)
            metrics.counter(f"runtime.tasks.{result.outcome}").inc()
            metrics.timer("runtime.task").add(result.wall_s)
            metrics.timer("runtime.queue").add(result.queue_s)
    return [outcome for outcome in outcomes if outcome is not None]


def _keyless(task) -> str:
    from repro.runtime.tasks import task_key

    return task_key(task)


def _assemble(experiment_id: str,
              results: Sequence[Optional[TaskResult]]
              ) -> ExperimentOutcome:
    results = [r for r in results if r is not None]
    shards = len(results)
    wall = sum(r.wall_s for r in results)
    skipped = [r for r in results if r.outcome == "skipped"]
    bad = [r for r in results if not r.ok and r.outcome != "skipped"]
    if bad:
        errors = list(dict.fromkeys(
            f"{r.task.label}: {r.error or r.outcome}" for r in bad))
        return ExperimentOutcome(experiment_id, "failed",
                                 error="; ".join(errors), wall_s=wall,
                                 shards=shards)
    if skipped:
        return ExperimentOutcome(
            experiment_id, "skipped", wall_s=wall, shards=shards,
            error="previously completed (--resume); table not in cache, "
                  "re-run without --resume to regenerate it")
    merged = merge_experiment_results([r.value for r in results]) \
        if shards > 1 else results[0].value
    return ExperimentOutcome(
        experiment_id, "ok", result=merged, wall_s=wall,
        cached=all(r.outcome == "cached" for r in results), shards=shards)
