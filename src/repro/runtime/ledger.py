"""Durable run ledger with pluggable jsonl / sqlite-WAL backends.

Every task execution -- fresh, cached, failed, or timed out -- appends
one *finish* record, giving a durable, queryable account of where suite
time goes.  Two backends sit behind the same :class:`RunLedger` facade:

``jsonl``
    The original append-only JSON-Lines file.  Tolerant of concurrent
    writers (each record is one ``write`` of one line) and of torn
    lines on read: a process killed mid-write leaves the final line
    truncated, :meth:`RunLedger.record` detects that and starts the new
    record on a fresh line, and reads count every unparseable line on
    the ``runtime.ledger.corrupt_lines`` metric.

``sqlite``
    A WAL-mode sqlite database with transactional appends.  Torn
    writes are structurally impossible (a record is committed or it
    never happened); concurrent writers serialize through sqlite's
    locking, with contended inserts retried under a bounded backoff
    (``runtime.ledger.write_retries``).  A database file damaged beyond
    repair is moved aside to ``<path>.corrupt.N`` and recreated
    (``runtime.ledger.db_recovered``) rather than wedging the run.

The backend is chosen explicitly (``RunLedger(path, backend="sqlite")``)
or inferred from the path suffix (``.sqlite`` / ``.db``).  Both
backends speak the same record schema, so
:func:`repro.analysis` tooling, ``--ledger-summary``, and
``--ledger-query`` are backend-agnostic -- and experiment E22 checks
they agree task-for-task under chaos.

Besides finish records the ledger stores *start* and *heartbeat*
events.  The pool stamps a start event when a task is dispatched and
heartbeats in-flight tasks while they run; a task whose last start was
never followed by a finish -- the parent was SIGKILLed, the host lost
power -- is an *orphan*, surfaced by :meth:`RunLedger.orphans`,
counted in ``--ledger-summary``, and simply re-run by ``--resume``.

:func:`summarize_ledger` condenses a ledger into outcome counts, retry
and orphan tallies, the slowest tasks, and per-target failures;
:func:`format_ledger_summary` renders that for the CLI.
"""

from __future__ import annotations

import collections
import json
import os
import pathlib
import sqlite3
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence

from repro import obs
from repro.errors import ConfigurationError
from repro.runtime.tasks import Task, TaskResult

#: Ledger filename used by default inside the cache directory.
DEFAULT_LEDGER_NAME = "ledger.jsonl"

#: Default filename for the sqlite backend.
DEFAULT_SQLITE_LEDGER_NAME = "ledger.sqlite"

#: Backend names accepted by :class:`RunLedger`.
LEDGER_BACKENDS = ("jsonl", "sqlite")

#: Path suffixes that imply the sqlite backend when none is given.
_SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")

#: Fields of a finish record, in canonical column order.
_FIELDS = ("ts", "event", "target", "label", "key", "seed", "params",
           "outcome", "wall_s", "queue_s", "attempts", "worker",
           "error", "pid")

#: Bounded backoff schedule (seconds) for contended sqlite appends.
_SQLITE_RETRY_DELAYS = (0.01, 0.05, 0.2, 0.5, 1.0)


def infer_backend(path: str | os.PathLike,
                  backend: Optional[str] = None) -> str:
    """Resolve the backend name for ``path`` (explicit choice wins)."""
    if backend is not None:
        if backend not in LEDGER_BACKENDS:
            raise ConfigurationError(
                f"unknown ledger backend {backend!r}; "
                f"expected one of {LEDGER_BACKENDS}")
        return backend
    suffix = pathlib.Path(path).suffix.lower()
    return "sqlite" if suffix in _SQLITE_SUFFIXES else "jsonl"


class _JsonlBackend:
    """Append-only JSON-Lines file (the original ledger format)."""

    name = "jsonl"

    def __init__(self, path: pathlib.Path) -> None:
        self.path = path

    def _ends_mid_line(self) -> bool:
        """Whether the file's last byte is not a newline (torn write)."""
        try:
            with open(self.path, "rb") as handle:
                handle.seek(0, os.SEEK_END)
                if handle.tell() == 0:
                    return False
                handle.seek(-1, os.SEEK_END)
                return handle.read(1) != b"\n"
        except OSError:
            return False

    def append(self, entry: dict, torn: bool = False) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Null fields are omitted (the sqlite backend's reader drops
        # NULL columns the same way), so both backends replay
        # identical records.
        line = json.dumps({k: v for k, v in entry.items()
                           if v is not None})
        if torn:
            # Simulate an earlier writer killed mid-write: leave a
            # truncated, newline-less prefix for recovery to absorb.
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line[:max(1, len(line) // 2)])
        # Recover from a torn final line: start this record on a fresh
        # line so the torn write stays one corrupt record, not two.
        prefix = "\n" if self._ends_mid_line() else ""
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(prefix + line + "\n")

    def rows(self) -> tuple[list[dict], int]:
        """Every well-formed record plus the corrupt-line count."""
        records: list[dict] = []
        corrupt = 0
        try:
            with open(self.path, encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        records.append(json.loads(line))
                    except json.JSONDecodeError:
                        corrupt += 1
                        obs.counter("runtime.ledger.corrupt_lines").inc()
        except OSError:
            return [], 0
        return records, corrupt

    def query_rows(self, where: Mapping[str, Any], order: Optional[str],
                   limit: Optional[int]) -> list[dict]:
        rows, _ = self.rows()
        return _filter_rows(rows, where, order, limit)


class _SqliteBackend:
    """WAL-mode sqlite database with transactional appends."""

    name = "sqlite"

    _SCHEMA = """
        CREATE TABLE IF NOT EXISTS task_runs (
            id INTEGER PRIMARY KEY AUTOINCREMENT,
            ts REAL, event TEXT, target TEXT, label TEXT, key TEXT,
            seed INTEGER, params TEXT, outcome TEXT, wall_s REAL,
            queue_s REAL, attempts INTEGER, worker TEXT, error TEXT,
            pid INTEGER);
        CREATE INDEX IF NOT EXISTS task_runs_key ON task_runs (key);
        CREATE INDEX IF NOT EXISTS task_runs_outcome
            ON task_runs (outcome);
    """

    def __init__(self, path: pathlib.Path,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self.path = path
        self._sleep = sleep
        self._connection: Optional[sqlite3.Connection] = None

    def _connect(self) -> sqlite3.Connection:
        if self._connection is not None:
            return self._connection
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            connection = self._open()
        except sqlite3.DatabaseError:
            self._recover_damaged_db()
            connection = self._open()
        self._connection = connection
        return connection

    def _open(self) -> sqlite3.Connection:
        connection = sqlite3.connect(self.path, timeout=5.0)
        connection.execute("PRAGMA journal_mode=WAL")
        connection.execute("PRAGMA synchronous=NORMAL")
        connection.execute("PRAGMA busy_timeout=5000")
        connection.executescript(self._SCHEMA)
        connection.commit()
        return connection

    def _recover_damaged_db(self) -> None:
        """Move an unreadable database aside so a fresh one can start.

        Mirrors the cache's quarantine discipline: the damaged bytes
        stay inspectable at ``<path>.corrupt.N`` and the run continues
        against an empty ledger instead of crashing.
        """
        self.close()
        destination = self.path.with_name(self.path.name + ".corrupt")
        counter = 0
        while destination.exists():
            counter += 1
            destination = self.path.with_name(
                f"{self.path.name}.corrupt.{counter}")
        try:
            os.replace(self.path, destination)
        except OSError:
            try:
                os.unlink(self.path)
            except OSError:
                pass
        # Stale WAL/SHM sidecars would re-corrupt the fresh database.
        for suffix in ("-wal", "-shm"):
            try:
                os.unlink(str(self.path) + suffix)
            except OSError:
                pass
        obs.counter("runtime.ledger.db_recovered").inc()

    def close(self) -> None:
        if self._connection is not None:
            try:
                self._connection.close()
            except sqlite3.Error:
                pass
            self._connection = None

    def append(self, entry: dict, torn: bool = False) -> None:
        """Insert one record transactionally, retrying contention.

        ``torn=True`` (chaos injection) fails the first try with a
        simulated lock error; WAL transactions make an actually-torn
        record impossible, so contention is the fault class to prove
        out here.
        """
        values = [entry.get(name) for name in _FIELDS]
        values[_FIELDS.index("params")] = (
            json.dumps(entry["params"]) if "params" in entry else None)
        placeholders = ", ".join("?" for _ in _FIELDS)
        statement = (f"INSERT INTO task_runs ({', '.join(_FIELDS)}) "
                     f"VALUES ({placeholders})")
        inject_failure = torn
        for attempt, delay in enumerate(_SQLITE_RETRY_DELAYS + (None,)):
            try:
                if inject_failure:
                    inject_failure = False
                    raise sqlite3.OperationalError(
                        "chaos: injected contended write")
                connection = self._connect()
                with connection:
                    connection.execute(statement, values)
                return
            except sqlite3.OperationalError as exc:
                if delay is None:
                    raise OSError(
                        f"ledger append failed after "
                        f"{len(_SQLITE_RETRY_DELAYS) + 1} tries: {exc}"
                    ) from exc
                obs.counter("runtime.ledger.write_retries").inc()
                self._sleep(delay)
            except sqlite3.DatabaseError:
                self._recover_damaged_db()

    def rows(self) -> tuple[list[dict], int]:
        try:
            cursor = self._connect().execute(
                f"SELECT {', '.join(_FIELDS)} FROM task_runs "
                "ORDER BY id")
            raw = cursor.fetchall()
        except sqlite3.DatabaseError:
            self._recover_damaged_db()
            return [], 0
        return [self._to_record(values) for values in raw], 0

    @staticmethod
    def _to_record(values: Sequence) -> dict:
        record = {name: value
                  for name, value in zip(_FIELDS, values)
                  if value is not None}
        if "params" in record:
            record["params"] = json.loads(record["params"])
        return record

    def query_rows(self, where: Mapping[str, Any], order: Optional[str],
                   limit: Optional[int]) -> list[dict]:
        clauses, values = [], []
        for name, value in where.items():
            if name not in _FIELDS:
                raise ConfigurationError(
                    f"unknown ledger field {name!r}; "
                    f"expected one of {_FIELDS}")
            clauses.append(f"{name} = ?")
            values.append(value)
        statement = f"SELECT {', '.join(_FIELDS)} FROM task_runs"
        if clauses:
            statement += " WHERE " + " AND ".join(clauses)
        if order is not None:
            name, descending = _order_field(order)
            statement += f" ORDER BY {name} {'DESC' if descending else 'ASC'}"
        else:
            statement += " ORDER BY id"
        if limit is not None:
            statement += " LIMIT ?"
            values.append(int(limit))
        try:
            raw = self._connect().execute(statement, values).fetchall()
        except sqlite3.DatabaseError:
            self._recover_damaged_db()
            return []
        return [self._to_record(row) for row in raw]


def _order_field(order: str) -> tuple[str, bool]:
    """Split ``"-wall_s"`` style order specs into (field, descending)."""
    descending = order.startswith("-")
    name = order[1:] if descending else order
    if name not in _FIELDS:
        raise ConfigurationError(
            f"unknown ledger order field {name!r}; "
            f"expected one of {_FIELDS}")
    return name, descending


def _filter_rows(rows: Iterable[dict], where: Mapping[str, Any],
                 order: Optional[str],
                 limit: Optional[int]) -> list[dict]:
    for name in where:
        if name not in _FIELDS:
            raise ConfigurationError(
                f"unknown ledger field {name!r}; "
                f"expected one of {_FIELDS}")
    matched = [row for row in rows
               if all(row.get(name) == value
                      for name, value in where.items())]
    if order is not None:
        name, descending = _order_field(order)
        # Missing fields sort as smallest, matching sqlite's NULL
        # ordering, so both backends return identical sequences.
        matched.sort(key=lambda row: (row.get(name) is not None,
                                      row.get(name)),
                     reverse=descending)
    if limit is not None:
        matched = matched[:int(limit)]
    return matched


class RunLedger:
    """Backend-agnostic appender/reader for one run-ledger file."""

    def __init__(self, path: str | os.PathLike, *,
                 backend: Optional[str] = None) -> None:
        self.path = pathlib.Path(path)
        self.backend = infer_backend(path, backend)
        self._backend = (_SqliteBackend(self.path)
                         if self.backend == "sqlite"
                         else _JsonlBackend(self.path))
        #: Unparseable lines seen by the most recent read (jsonl only;
        #: sqlite records are transactional and cannot tear).
        self.corrupt_lines = 0

    def close(self) -> None:
        close = getattr(self._backend, "close", None)
        if close is not None:
            close()

    # -- writes -------------------------------------------------------------

    def record(self, result: TaskResult, *, chaos=None) -> None:
        """Append one finish record (optionally under chaos injection)."""
        entry = {
            "ts": time.time(),
            "target": result.task.target,
            "label": result.task.label,
            "key": result.key,
            "seed": result.task.seed,
            "params": result.task.spec()["params"],
            "outcome": result.outcome,
            "wall_s": round(result.wall_s, 6),
            "queue_s": round(result.queue_s, 6),
            "attempts": result.attempts,
            "worker": result.worker,
        }
        if result.error:
            entry["error"] = result.error
        torn = False
        if chaos is not None and chaos.ledger_torn(result.key,
                                                   result.attempts):
            torn = True
            obs.counter("runtime.chaos.torn_ledger_writes").inc()
        self._backend.append(entry, torn=torn)

    def start(self, task: Task, key: str, worker: str = "") -> None:
        """Append a start event: ``task`` was dispatched under ``key``."""
        self._backend.append({
            "ts": time.time(), "event": "start",
            "target": task.target, "label": task.label, "key": key,
            "seed": task.seed, "worker": worker, "pid": os.getpid()})

    def heartbeat(self, keys: Iterable[str]) -> None:
        """Stamp in-flight ``keys`` as alive right now."""
        now = time.time()
        for key in keys:
            self._backend.append({"ts": now, "event": "heartbeat",
                                  "key": key})

    # -- reads --------------------------------------------------------------

    def events(self) -> list[dict]:
        """Every record -- finishes, starts, heartbeats -- in order."""
        records, self.corrupt_lines = self._backend.rows()
        return records

    def entries(self) -> list[dict]:
        """Finish records only (the historical ledger view)."""
        return [record for record in self.events()
                if record.get("event") in (None, "finish")]

    def completed_keys(self) -> set[str]:
        """Content keys of every task that ever finished successfully."""
        return {e["key"] for e in self.entries()
                if e.get("outcome") in ("ok", "cached") and e.get("key")}

    def orphans(self, stale_s: Optional[float] = None,
                now: Optional[float] = None) -> list[dict]:
        """Tasks whose last start was never followed by a finish.

        An orphan means the *runner* died -- crash, SIGKILL, power loss
        -- between dispatch and outcome.  With ``stale_s``, tasks whose
        last heartbeat is newer than ``stale_s`` seconds are presumed
        still alive in another process and excluded.  Each orphan dict
        carries the start record plus ``age_s`` since its last sign of
        life.
        """
        orphans = _orphans_from(self.events(), stale_s, now)
        if orphans:
            obs.counter("runtime.ledger.orphans_detected").inc(
                len(orphans))
        return orphans

    def query(self, where: Optional[Mapping[str, Any]] = None,
              order: Optional[str] = None,
              limit: Optional[int] = None) -> list[dict]:
        """Filtered run history: equality ``where``, ``order``, ``limit``.

        ``order`` is a field name, ``-`` prefixed for descending
        (``"-wall_s"`` = slowest first).  The sqlite backend runs real
        SQL; jsonl filters in process -- results agree.
        """
        return self._backend.query_rows(dict(where or {}), order, limit)


def _orphans_from(records: Iterable[dict], stale_s: Optional[float],
                  now: Optional[float]) -> list[dict]:
    """Orphan computation over already-read records (no metrics)."""
    last_start: dict[str, dict] = {}
    last_alive: dict[str, float] = {}
    for record in records:
        key = record.get("key")
        if not key:
            continue
        event = record.get("event")
        if event == "start":
            last_start[key] = record
            last_alive[key] = float(record.get("ts", 0.0))
        elif event == "heartbeat":
            if key in last_start:
                last_alive[key] = float(record.get("ts", 0.0))
        elif event in (None, "finish"):
            last_start.pop(key, None)
            last_alive.pop(key, None)
    now = time.time() if now is None else now
    orphans = []
    for key, record in last_start.items():
        age = now - last_alive.get(key, 0.0)
        if stale_s is not None and age < stale_s:
            continue
        orphans.append({**record, "age_s": age})
    return orphans


def parse_query(text: str) -> tuple[dict, Optional[str], Optional[int]]:
    """Parse a ``--ledger-query`` expression.

    Comma-separated ``field=value`` equality terms, plus the special
    keys ``order=[-]field`` and ``limit=N``::

        outcome=failed,order=-wall_s,limit=5

    Values parse as JSON when possible (so ``attempts=2`` matches the
    integer), falling back to the raw string.
    """
    where: dict[str, Any] = {}
    order: Optional[str] = None
    limit: Optional[int] = None
    for term in text.split(","):
        term = term.strip()
        if not term:
            continue
        name, separator, raw = term.partition("=")
        if not separator or not name:
            raise ConfigurationError(
                f"ledger query term {term!r} is not field=value")
        if name == "order":
            order = raw
        elif name == "limit":
            try:
                limit = int(raw)
            except ValueError:
                raise ConfigurationError(
                    f"ledger query limit must be an integer, "
                    f"got {raw!r}") from None
        else:
            try:
                where[name] = json.loads(raw)
            except json.JSONDecodeError:
                where[name] = raw
    return where, order, limit


@dataclass
class LedgerSummary:
    """Aggregate view over a ledger's entries."""

    total: int = 0
    by_outcome: collections.Counter = field(
        default_factory=collections.Counter)
    total_wall_s: float = 0.0
    slowest: list[tuple[str, float]] = field(default_factory=list)
    failures: list[tuple[str, str]] = field(default_factory=list)
    #: Lines the reader could not parse (torn writes, manual damage).
    corrupt_lines: int = 0
    #: Finish records that needed more than one attempt.
    retried: int = 0
    #: Tasks started (per the ledger) but never finished.
    orphaned: int = 0
    #: Damaged cache entries sitting in the quarantine directory
    #: (``None`` when no cache directory was given to inspect).
    quarantined: Optional[int] = None


def summarize_ledger(path: str | os.PathLike, top: int = 10, *,
                     backend: Optional[str] = None,
                     quarantine_dir: Optional[str | os.PathLike] = None
                     ) -> LedgerSummary:
    """Read ``path`` and aggregate outcomes, wall time, and failures."""
    summary = LedgerSummary()
    ledger = RunLedger(path, backend=backend)
    records = ledger.events()
    summary.corrupt_lines = ledger.corrupt_lines
    summary.orphaned = len(_orphans_from(records, None, None))
    entries = [record for record in records
               if record.get("event") in (None, "finish")]
    for entry in entries:
        summary.total += 1
        outcome = entry.get("outcome", "?")
        summary.by_outcome[outcome] += 1
        wall = float(entry.get("wall_s", 0.0))
        summary.total_wall_s += wall
        summary.slowest.append((entry.get("label", "?"), wall))
        if int(entry.get("attempts", 1) or 1) > 1:
            summary.retried += 1
        if outcome in ("failed", "timeout"):
            summary.failures.append((entry.get("label", "?"),
                                     entry.get("error", outcome)))
    summary.slowest.sort(key=lambda pair: pair[1], reverse=True)
    del summary.slowest[top:]
    if quarantine_dir is not None:
        directory = pathlib.Path(quarantine_dir)
        summary.quarantined = (
            sum(1 for item in directory.iterdir() if item.is_file())
            if directory.is_dir() else 0)
    ledger.close()
    return summary


def format_ledger_summary(summary: LedgerSummary) -> str:
    lines = [f"tasks: {summary.total}  "
             + "  ".join(f"{k}={v}"
                         for k, v in sorted(summary.by_outcome.items())),
             f"total wall time: {summary.total_wall_s:.1f}s"]
    if summary.retried:
        lines.append(f"retried: {summary.retried} task(s) needed more "
                     "than one attempt")
    if summary.quarantined:
        lines.append(f"quarantined: {summary.quarantined} damaged cache "
                     "entr(ies) set aside")
    if summary.orphaned:
        lines.append(f"warning: {summary.orphaned} orphaned task(s) "
                     "started but never finished (interrupted run?)")
    if summary.corrupt_lines:
        lines.append(f"warning: {summary.corrupt_lines} corrupt ledger "
                     "line(s) skipped")
    if summary.slowest:
        lines.append("slowest tasks:")
        lines.extend(f"  {wall:8.2f}s  {label}"
                     for label, wall in summary.slowest)
    if summary.failures:
        lines.append(f"failures ({len(summary.failures)}):")
        lines.extend(f"  {label}: {error}"
                     for label, error in summary.failures)
    return "\n".join(lines)
