"""Append-only JSONL run ledger.

Every task execution -- fresh, cached, failed, or timed out -- appends
one JSON line, giving a durable record of where suite time goes.  The
file is append-only and tolerant of concurrent writers (each record is
one ``write`` of one line) and of torn/corrupt lines on read.

A process killed mid-write can leave the final line truncated (no
trailing newline).  :meth:`RunLedger.record` detects that and starts the
new record on a fresh line, so one torn write damages exactly one
record instead of fusing with -- and corrupting -- the next.  Reads
count every unparseable line on the ``runtime.ledger.corrupt_lines``
metric and surface the tally in the ``--ledger-summary`` output.

:func:`summarize_ledger` condenses a ledger into outcome counts, the
slowest tasks, and per-target failure tallies;
:func:`format_ledger_summary` renders that for the CLI's
``--ledger-summary`` flag.
"""

from __future__ import annotations

import collections
import json
import os
import pathlib
import time
from dataclasses import dataclass, field

from repro import obs
from repro.runtime.tasks import TaskResult

#: Ledger filename used by default inside the cache directory.
DEFAULT_LEDGER_NAME = "ledger.jsonl"


class RunLedger:
    """Appender/reader for one JSONL ledger file."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = pathlib.Path(path)
        #: Unparseable lines seen by the most recent :meth:`entries` call.
        self.corrupt_lines = 0

    def _ends_mid_line(self) -> bool:
        """Whether the file's last byte is not a newline (torn write)."""
        try:
            with open(self.path, "rb") as handle:
                handle.seek(0, os.SEEK_END)
                if handle.tell() == 0:
                    return False
                handle.seek(-1, os.SEEK_END)
                return handle.read(1) != b"\n"
        except OSError:
            return False

    def record(self, result: TaskResult) -> None:
        entry = {
            "ts": time.time(),
            "target": result.task.target,
            "label": result.task.label,
            "key": result.key,
            "seed": result.task.seed,
            "params": result.task.spec()["params"],
            "outcome": result.outcome,
            "wall_s": round(result.wall_s, 6),
            "queue_s": round(result.queue_s, 6),
            "attempts": result.attempts,
            "worker": result.worker,
        }
        if result.error:
            entry["error"] = result.error
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Recover from a torn final line: start this record on a fresh
        # line so the torn write stays one corrupt record, not two.
        prefix = "\n" if self._ends_mid_line() else ""
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(prefix + json.dumps(entry) + "\n")

    def entries(self) -> list[dict]:
        """Parse every well-formed line; skip (but count) corrupt ones."""
        records: list[dict] = []
        self.corrupt_lines = 0
        try:
            with open(self.path, encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        records.append(json.loads(line))
                    except json.JSONDecodeError:
                        self.corrupt_lines += 1
                        obs.counter("runtime.ledger.corrupt_lines").inc()
        except OSError:
            return []
        return records

    def completed_keys(self) -> set[str]:
        """Content keys of every task that ever finished successfully."""
        return {e["key"] for e in self.entries()
                if e.get("outcome") in ("ok", "cached") and e.get("key")}


@dataclass
class LedgerSummary:
    """Aggregate view over a ledger's entries."""

    total: int = 0
    by_outcome: collections.Counter = field(
        default_factory=collections.Counter)
    total_wall_s: float = 0.0
    slowest: list[tuple[str, float]] = field(default_factory=list)
    failures: list[tuple[str, str]] = field(default_factory=list)
    #: Lines the reader could not parse (torn writes, manual damage).
    corrupt_lines: int = 0


def summarize_ledger(path: str | os.PathLike,
                     top: int = 10) -> LedgerSummary:
    """Read ``path`` and aggregate outcomes, wall time, and failures."""
    summary = LedgerSummary()
    ledger = RunLedger(path)
    entries = ledger.entries()
    summary.corrupt_lines = ledger.corrupt_lines
    for entry in entries:
        summary.total += 1
        outcome = entry.get("outcome", "?")
        summary.by_outcome[outcome] += 1
        wall = float(entry.get("wall_s", 0.0))
        summary.total_wall_s += wall
        summary.slowest.append((entry.get("label", "?"), wall))
        if outcome in ("failed", "timeout"):
            summary.failures.append((entry.get("label", "?"),
                                     entry.get("error", outcome)))
    summary.slowest.sort(key=lambda pair: pair[1], reverse=True)
    del summary.slowest[top:]
    return summary


def format_ledger_summary(summary: LedgerSummary) -> str:
    lines = [f"tasks: {summary.total}  "
             + "  ".join(f"{k}={v}"
                         for k, v in sorted(summary.by_outcome.items())),
             f"total wall time: {summary.total_wall_s:.1f}s"]
    if summary.corrupt_lines:
        lines.append(f"warning: {summary.corrupt_lines} corrupt ledger "
                     "line(s) skipped")
    if summary.slowest:
        lines.append("slowest tasks:")
        lines.extend(f"  {wall:8.2f}s  {label}"
                     for label, wall in summary.slowest)
    if summary.failures:
        lines.append(f"failures ({len(summary.failures)}):")
        lines.extend(f"  {label}: {error}"
                     for label, error in summary.failures)
    return "\n".join(lines)
