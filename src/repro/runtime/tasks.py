"""Declarative task model for the experiment-execution runtime.

A :class:`Task` names one unit of work -- an experiment from
:data:`repro.analysis.experiments.ALL_EXPERIMENTS`, a seeded scenario
callable, or any importable function -- together with its keyword
parameters and (optionally) a root seed.  Tasks are *values*: two tasks
built from the same target/params/seed compare equal and hash to the
same stable content key, which is what the result cache and the run
ledger are keyed by.

The content key also folds in the package version and a fingerprint of
the ``repro`` source tree, so editing any module invalidates cached
results computed with the old code (see :func:`source_fingerprint`).

Experiments with an embarrassingly parallel sweep axis (e.g. E1's
``call_counts``) can be *sharded* into one task per axis value with
:func:`shard_experiment`; :func:`merge_experiment_results` stitches the
per-shard tables back together in axis order, row-for-row identical to
a monolithic run (each loop iteration builds its own
:class:`~repro.sim.random.RngRegistry`, so shards are independent).
"""

from __future__ import annotations

import functools
import hashlib
import importlib
import inspect
import json
import pathlib
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Sequence, Union

from repro.errors import ConfigurationError

TargetLike = Union[str, Callable]

_EXPERIMENT_ID = re.compile(r"^E\d+$")

#: Experiments whose leading sweep parameter produces independent rows
#: (fresh RNG registry / pure arithmetic per iteration), so the suite can
#: fan the axis out across workers.  Experiments absent here (E6, E7, E8,
#: E14, E15) run as a single task.
SHARD_AXES: dict[str, str] = {
    "E1": "call_counts",
    "E2": "hop_counts",
    "E3": "frame_durations_ms",
    "E4": "drift_ppms",
    "E5": "call_counts",
    "E9": "slot_durations_us",
    "E10": "grid_sizes",
    "E11": "chain_lengths",
    "E12": "call_counts",
    "E13": "error_rates",
    "E16": "call_counts",
    "E17": "churn_rates",
    "E18": "loss_rates",
    "E19": "disciplines",
    "E20": "speeds",
    "E21": "sizes",
    "E22": "intensities",
    "E23": "cs_multipliers",
}


def _jsonify(value: Any) -> Any:
    """Map ``value`` onto a canonical JSON-compatible structure.

    Tuples become lists, mapping keys become sorted strings, and objects
    with no natural JSON form fall back to their ``repr`` (dataclass
    reprs are deterministic, which is all hashing needs).
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _jsonify(v) for k, v in sorted(value.items(),
                                                       key=lambda kv:
                                                       str(kv[0]))}
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonify(v) for v in value)
    return repr(value)


@functools.lru_cache(maxsize=None)
def source_fingerprint() -> str:
    """Digest of every ``.py`` file in the installed ``repro`` package.

    Any source edit changes the fingerprint, which changes every task
    key, which makes the on-disk cache miss -- stale results can never
    be served after the code that produced them changed.
    """
    import repro

    root = pathlib.Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class Task:
    """One schedulable unit of work: ``target(**params)`` or, when
    ``seed`` is set, ``target(RngRegistry(seed), **params)``."""

    target: str
    params: tuple = ()
    seed: Optional[int] = None
    #: Resolved callable when the task was built from one directly.
    #: Excluded from equality -- the ``target`` name is the identity.
    fn: Optional[Callable] = field(default=None, compare=False, repr=False)

    @property
    def kwargs(self) -> dict:
        return dict(self.params)

    @property
    def label(self) -> str:
        parts = [self.target]
        if self.params:
            inner = ",".join(f"{k}={_compact(v)}" for k, v in self.params)
            parts.append(f"[{inner}]")
        if self.seed is not None:
            parts.append(f"@s{self.seed}")
        return "".join(parts)

    def spec(self) -> dict:
        """JSON-compatible description (used by the ledger)."""
        return {"target": self.target,
                "params": _jsonify(dict(self.params)),
                "seed": self.seed}


def _compact(value: Any) -> str:
    text = repr(value)
    return text if len(text) <= 24 else text[:21] + "..."


def make_task(target: TargetLike,
              params: Optional[Mapping[str, Any]] = None,
              seed: Optional[int] = None) -> Task:
    """Build a :class:`Task` from an experiment id, dotted path, or callable.

    String targets are either an experiment id (``"E1"``,
    case-insensitive) or a ``"package.module:function"`` dotted path.
    Callable targets keep a reference for in-process execution and are
    named ``module:qualname`` so worker processes can re-import them.
    """
    fn: Optional[Callable] = None
    if callable(target):
        fn = target
        name = f"{target.__module__}:{target.__qualname__}"
    elif isinstance(target, str):
        name = target.upper() if _EXPERIMENT_ID.match(target.upper()) \
            else target
    else:
        raise ConfigurationError(
            f"task target must be a string or callable, got {target!r}")
    items = tuple(sorted((params or {}).items()))
    return Task(target=name, params=items,
                seed=None if seed is None else int(seed), fn=fn)


def task_key(task: Task, *, version: Optional[str] = None,
             fingerprint: Optional[str] = None) -> str:
    """Stable 16-hex-digit content hash of ``(task, code state)``."""
    import repro

    payload = {
        "target": task.target,
        "params": _jsonify(dict(task.params)),
        "seed": task.seed,
        "version": version if version is not None else repro.__version__,
        "fingerprint": (fingerprint if fingerprint is not None
                        else source_fingerprint()),
    }
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


def resolve_target(task: Task) -> Callable:
    """Return the callable a task names (re-importable in workers)."""
    if task.fn is not None:
        return task.fn
    if _EXPERIMENT_ID.match(task.target):
        from repro.analysis.experiments import ALL_EXPERIMENTS

        try:
            return ALL_EXPERIMENTS[task.target]
        except KeyError:
            raise ConfigurationError(
                f"unknown experiment {task.target!r}; see --list") from None
    if ":" in task.target:
        module_name, _, qualname = task.target.partition(":")
        module = importlib.import_module(module_name)
        obj: Any = module
        for part in qualname.split("."):
            obj = getattr(obj, part)
        if not callable(obj):
            raise ConfigurationError(f"{task.target!r} is not callable")
        return obj
    raise ConfigurationError(
        f"cannot resolve task target {task.target!r}: expected an "
        "experiment id like 'E1' or a 'module:function' path")


def run_task(task: Task) -> Any:
    """Execute a task in the current process and return its raw value."""
    fn = resolve_target(task)
    if task.seed is None:
        return fn(**task.kwargs)
    from repro.sim.random import RngRegistry

    return fn(RngRegistry(seed=task.seed), **task.kwargs)


def classify_error(exc: BaseException) -> str:
    """``"permanent"`` or ``"transient"`` for retry purposes.

    Only failures that retrying provably cannot fix are permanent:
    :class:`~repro.errors.PermanentTaskError` and configuration errors
    (bad target, bad parameters).  Everything else -- including
    exceptions the runtime has never heard of -- stays transient,
    preserving the original retry-everything behavior for task code
    that predates the taxonomy.
    """
    from repro.errors import PermanentTaskError

    if isinstance(exc, (PermanentTaskError, ConfigurationError)):
        return "permanent"
    return "transient"


@dataclass
class TaskResult:
    """Outcome of one task execution (or cache lookup)."""

    task: Task
    key: str
    outcome: str  # "ok" | "cached" | "failed" | "timeout" | "skipped"
    value: Any = None
    error: Optional[str] = None
    wall_s: float = 0.0
    attempts: int = 1
    worker: str = ""
    #: seconds between first submission and execution start (0 for cache hits)
    queue_s: float = 0.0
    #: deterministic metrics snapshot collected while the task ran (None
    #: when metrics collection was off for the run)
    metrics: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return self.outcome in ("ok", "cached")


# ---------------------------------------------------------------------------
# Experiment sharding
# ---------------------------------------------------------------------------

def shard_axis_values(experiment_id: str,
                      params: Optional[Mapping[str, Any]] = None
                      ) -> Optional[tuple[str, tuple]]:
    """The shardable axis of an experiment and its effective values."""
    axis = SHARD_AXES.get(experiment_id.upper())
    if axis is None:
        return None
    if params and axis in params:
        values = tuple(params[axis])
    else:
        from repro.analysis.experiments import ALL_EXPERIMENTS

        fn = ALL_EXPERIMENTS.get(experiment_id.upper())
        if fn is None:
            return None
        try:
            parameter = inspect.signature(fn).parameters[axis]
        except (KeyError, TypeError, ValueError):
            # Replaced/wrapped experiment without the sweep axis in its
            # signature: fall back to running it unsharded.
            return None
        values = tuple(parameter.default)
    return axis, values


def shard_experiment(experiment_id: str,
                     params: Optional[Mapping[str, Any]] = None
                     ) -> list[Task]:
    """Expand one experiment into per-axis-value tasks (or one task).

    Shard tasks carry ``{axis: (value,)}`` so every shard is itself a
    valid experiment invocation; cache entries are therefore per shard,
    and a re-run after a partial failure only recomputes missing points.
    """
    experiment_id = experiment_id.upper()
    axis_values = shard_axis_values(experiment_id, params)
    if axis_values is None:
        return [make_task(experiment_id, params)]
    axis, values = axis_values
    if len(values) <= 1:
        return [make_task(experiment_id, params)]
    base = {k: v for k, v in (params or {}).items() if k != axis}
    return [make_task(experiment_id, {**base, axis: (value,)})
            for value in values]


def merge_experiment_results(shards: Sequence[Any]) -> Any:
    """Concatenate per-shard :class:`ExperimentResult` tables in order."""
    from repro.analysis.experiments import ExperimentResult

    if not shards:
        raise ConfigurationError("no shard results to merge")
    first = shards[0]
    merged = ExperimentResult(
        experiment=first.experiment, title=first.title,
        headers=list(first.headers), rows=[],
        notes=next((s.notes for s in shards if s.notes), ""))
    for shard in shards:
        merged.rows.extend(shard.rows)
    return merged
