"""Content-addressed on-disk result cache.

Results live as one JSON file per task under ``<root>/results/``, named
by the task's content key (:func:`repro.runtime.tasks.task_key`).  The
key folds in the package version and a fingerprint of the source tree,
so bumping the version or editing any module makes every old entry
unreachable -- re-running ``--all`` after a code change recomputes
work, while an unchanged tree serves warm results in milliseconds.

Values are encoded through a small tagged-JSON layer so that
:class:`~repro.analysis.experiments.ExperimentResult` tables round-trip
exactly (JSON preserves Python floats bit-for-bit via ``repr``); plain
mappings/sequences of numbers pass through untouched.  Anything else is
rejected at :meth:`ResultCache.put` time with :class:`ValueError` -- the
pool then simply skips caching that task.

Writes are atomic (write-temp-then-rename), but a cache directory can
still accumulate damaged files -- a crashed interpreter mid-``os.replace``
on some filesystems, a truncated copy, manual edits.  A file that exists
but does not parse (or lacks the expected payload shape) is *quarantined*
on read: moved aside into ``<root>/quarantine/`` and counted on the
``runtime.cache.quarantined`` metric, and the lookup reports a plain
miss so the pool transparently recomputes and rewrites the entry.

The cache is safe under **concurrent writers**: every store takes a
per-key lockfile (``O_CREAT | O_EXCL``) before the temp-write/rename
pair, so two sweeps racing over one cache directory serialize per
entry.  Because keys are content hashes, both racers would write the
same bytes -- a writer that cannot get the lock within
``lock_timeout_s`` therefore *skips* the store (counted on
``runtime.cache.lock_contended``) instead of blocking the sweep.  A
lockfile left behind by a dead process (stale mtime, or a recorded pid
that no longer exists) is broken and stolen
(``runtime.cache.stale_locks_broken``), so one crashed writer can
never wedge every future run.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro import obs
from repro.runtime.tasks import Task, source_fingerprint, task_key

_EXPERIMENT_TAG = "experiment_result"

#: Default cache directory, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro_cache"

#: Subdirectory (under the cache root) damaged entries are moved into.
QUARANTINE_DIR_NAME = "quarantine"

#: Seconds a writer waits for a contended per-key lock before skipping.
DEFAULT_LOCK_TIMEOUT_S = 5.0

#: Age past which a lockfile is presumed orphaned by a dead writer.
DEFAULT_STALE_LOCK_S = 60.0


class FileLock:
    """A per-key advisory lockfile (``O_CREAT | O_EXCL``).

    The lockfile records the owner's pid.  Acquisition polls until the
    exclusive create succeeds or ``timeout_s`` passes; a lock whose
    owner is provably dead (pid gone) or whose file is older than
    ``stale_s`` is broken and retaken, so a SIGKILLed writer cannot
    permanently wedge the key.  Use as a context manager; ``acquired``
    reports whether the lock was actually taken (callers that lose the
    race may legitimately proceed without it).
    """

    def __init__(self, path: str | os.PathLike, *,
                 timeout_s: float = DEFAULT_LOCK_TIMEOUT_S,
                 stale_s: float = DEFAULT_STALE_LOCK_S,
                 poll_s: float = 0.05,
                 sleep: Callable[[float], None] = time.sleep,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.path = pathlib.Path(path)
        self.timeout_s = timeout_s
        self.stale_s = stale_s
        self.poll_s = poll_s
        self._sleep = sleep
        self._clock = clock
        self.acquired = False

    def _try_acquire(self) -> bool:
        try:
            fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError:
            return False  # unwritable directory: behave as contended
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(f"{os.getpid()}\n")
        return True

    def _holder_dead(self) -> bool:
        """Whether the current lockfile belongs to a dead/stale writer."""
        try:
            age = time.time() - self.path.stat().st_mtime
        except OSError:
            return False  # vanished: next acquire attempt will settle it
        if age > self.stale_s:
            return True
        try:
            pid = int(self.path.read_text(encoding="utf-8").strip())
        except (OSError, ValueError):
            return False  # mid-write by the owner; not provably dead
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True
        except OSError:
            return False
        return False

    def _break_stale(self) -> None:
        try:
            os.unlink(self.path)
        except OSError:
            return
        obs.counter("runtime.cache.stale_locks_broken").inc()

    def acquire(self) -> bool:
        deadline = self._clock() + self.timeout_s
        while True:
            if self._try_acquire():
                self.acquired = True
                return True
            if self._holder_dead():
                self._break_stale()
                continue
            if self._clock() >= deadline:
                obs.counter("runtime.cache.lock_contended").inc()
                return False
            self._sleep(self.poll_s)

    def release(self) -> None:
        if not self.acquired:
            return
        self.acquired = False
        try:
            os.unlink(self.path)
        except OSError:
            pass

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


def encode_value(value: Any) -> Any:
    """Encode a task value into a JSON-serializable structure."""
    from repro.analysis.experiments import ExperimentResult

    if isinstance(value, ExperimentResult):
        return {"__kind__": _EXPERIMENT_TAG,
                "experiment": value.experiment, "title": value.title,
                "headers": list(value.headers),
                "rows": [list(row) for row in value.rows],
                "notes": value.notes}
    # Round-trip through json to reject unserializable payloads early.
    try:
        json.dumps(value)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"task value is not cacheable: {exc}") from exc
    return value


def decode_value(payload: Any) -> Any:
    """Invert :func:`encode_value`."""
    if isinstance(payload, dict) and payload.get("__kind__") == \
            _EXPERIMENT_TAG:
        from repro.analysis.experiments import ExperimentResult

        return ExperimentResult(
            experiment=payload["experiment"], title=payload["title"],
            headers=list(payload["headers"]),
            rows=[list(row) for row in payload["rows"]],
            notes=payload.get("notes", ""))
    return payload


@dataclass
class CachedEntry:
    """A cache hit: the decoded value plus the original compute time."""

    value: Any
    wall_s: float


class ResultCache:
    """Filesystem-backed ``task -> value`` store under ``root``."""

    def __init__(self, root: str | os.PathLike = DEFAULT_CACHE_DIR, *,
                 version: Optional[str] = None,
                 fingerprint: Optional[str] = None,
                 lock_timeout_s: float = DEFAULT_LOCK_TIMEOUT_S,
                 stale_lock_s: float = DEFAULT_STALE_LOCK_S) -> None:
        import repro

        self.root = pathlib.Path(root)
        self.results_dir = self.root / "results"
        self.quarantine_dir = self.root / QUARANTINE_DIR_NAME
        self.version = version if version is not None else repro.__version__
        self.fingerprint = (fingerprint if fingerprint is not None
                            else source_fingerprint())
        self.lock_timeout_s = lock_timeout_s
        self.stale_lock_s = stale_lock_s

    def key_for(self, task: Task) -> str:
        return task_key(task, version=self.version,
                        fingerprint=self.fingerprint)

    def _path(self, key: str) -> pathlib.Path:
        return self.results_dir / f"{key}.json"

    def path_for(self, key: str) -> pathlib.Path:
        """On-disk location of ``key``'s result entry (may not exist)."""
        return self._path(key)

    def _lock(self, key: str) -> FileLock:
        return FileLock(self.results_dir / f"{key}.lock",
                        timeout_s=self.lock_timeout_s,
                        stale_s=self.stale_lock_s)

    def _quarantine(self, path: pathlib.Path) -> Optional[pathlib.Path]:
        """Move a damaged cache file into the quarantine directory.

        The original name is kept (suffixed ``.N`` on collision) so the
        damaged bytes stay inspectable.  Returns the destination, or
        ``None`` when the file vanished or could not be moved.
        """
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        destination = self.quarantine_dir / path.name
        counter = 0
        while destination.exists():
            counter += 1
            destination = self.quarantine_dir / f"{path.name}.{counter}"
        try:
            os.replace(path, destination)
        except OSError:
            return None
        obs.counter("runtime.cache.quarantined").inc()
        return destination

    def get(self, task: Task) -> Optional[CachedEntry]:
        """Return the cached entry for ``task``, or ``None`` on a miss.

        A file that exists but is damaged -- unparseable JSON, or JSON
        without the expected payload shape -- is quarantined and reported
        as a miss, so the caller recomputes and overwrites it.
        """
        path = self._path(self.key_for(task))
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError:
            return None
        except (json.JSONDecodeError, UnicodeDecodeError):
            self._quarantine(path)
            return None
        # Defense in depth: the key already encodes version+fingerprint,
        # but a hand-copied file must not smuggle stale results in.
        if not isinstance(payload, dict) or "value" not in payload:
            self._quarantine(path)
            return None
        if payload.get("version") != self.version or \
                payload.get("fingerprint") != self.fingerprint:
            return None
        return CachedEntry(value=decode_value(payload["value"]),
                           wall_s=float(payload.get("wall_s", 0.0)))

    def put(self, task: Task, value: Any, wall_s: float = 0.0) -> str:
        """Store ``value``; returns the key.

        Lock-guarded write-temp-then-atomic-rename.  A writer that
        cannot take the per-key lock in time skips the store: the
        holder is writing the identical (content-addressed) bytes, so
        skipping is always safe and never blocks the sweep.
        """
        key = self.key_for(task)
        payload = {"task": task.spec(), "version": self.version,
                   "fingerprint": self.fingerprint, "wall_s": wall_s,
                   "value": encode_value(value)}
        self.results_dir.mkdir(parents=True, exist_ok=True)
        with self._lock(key) as lock:
            if not lock.acquired:
                return key
            self._write_atomic(self._path(key), json.dumps(payload))
        return key

    def _write_atomic(self, destination: pathlib.Path, text: str) -> None:
        fd, tmp_name = tempfile.mkstemp(dir=self.results_dir,
                                        suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp_name, destination)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # -- metrics sidecars ---------------------------------------------------

    def _metrics_path(self, key: str) -> pathlib.Path:
        return self.results_dir / f"{key}.metrics.json"

    def put_metrics(self, task: Task, snapshot: dict) -> str:
        """Store a task's metrics snapshot next to its result.

        The sidecar holds only the deterministic sections (no wall-clock
        timings), canonically serialized, so two identical runs write
        byte-identical sidecars.
        """
        key = self.key_for(task)
        deterministic = {k: v for k, v in snapshot.items() if k != "timings"}
        self.results_dir.mkdir(parents=True, exist_ok=True)
        with self._lock(f"{key}.metrics") as lock:
            if not lock.acquired:
                return key
            self._write_atomic(self._metrics_path(key),
                               json.dumps(deterministic, sort_keys=True,
                                          separators=(",", ":")))
        return key

    def get_metrics(self, task: Task) -> Optional[dict]:
        """The metrics sidecar stored for ``task``, or ``None``.

        A damaged sidecar is quarantined like a damaged result file.
        """
        path = self._metrics_path(self.key_for(task))
        try:
            with open(path, encoding="utf-8") as handle:
                return json.load(handle)
        except OSError:
            return None
        except (json.JSONDecodeError, UnicodeDecodeError):
            self._quarantine(path)
            return None

    def invalidate(self, task: Task) -> bool:
        """Drop one task's entry (and sidecar); returns whether one existed."""
        key = self.key_for(task)
        try:
            os.unlink(self._metrics_path(key))
        except OSError:
            pass
        try:
            os.unlink(self._path(key))
            return True
        except OSError:
            return False

    def clear(self) -> int:
        """Drop every cached result; returns how many were removed."""
        removed = 0
        if self.results_dir.is_dir():
            for path in self.results_dir.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __len__(self) -> int:
        if not self.results_dir.is_dir():
            return 0
        return sum(1 for p in self.results_dir.glob("*.json")
                   if not p.name.endswith(".metrics.json"))
