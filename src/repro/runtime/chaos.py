"""Deterministic, seeded fault injection for the runtime itself.

PR 2 and PR 4 inject faults into the *mesh*; this module injects them
into the *machinery that produces the result tables*: worker crashes,
hangs past the task timeout, transient exceptions, torn cache and
ledger writes, and a full disk.  A :class:`ChaosPolicy` is handed to
:func:`repro.runtime.pool.run_tasks`, which consults it at every
fault site.

Decisions are **content-keyed**, not drawn from mutable RNG state:
whether fault ``site`` fires for task ``key`` on attempt ``k`` is a
pure function of ``(policy.seed, site, key, k)``.  The same chaos
schedule therefore hits the same tasks in the same way regardless of
worker count, dispatch order, or how many other tasks run alongside --
which is what lets experiment E22 demand *bitwise identical* sweep
tables under chaos, serial or parallel.

The robustness contract the policy exists to prove:

- any chaos schedule that stops injecting within the retry budget
  (``max_attempt <= retries``) yields results bitwise identical to a
  chaos-free run;
- a schedule that exhausts the budget ("fatal chaos") fails loudly:
  the task's outcome is ``"failed"`` with the injected error recorded
  in the run ledger -- never a silently missing or corrupt row.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, replace
from typing import Callable, Optional

from repro.errors import ConfigurationError, TransientTaskError

#: Exit status a chaos-crashed worker process dies with (``os._exit``).
CHAOS_EXIT_CODE = 117

#: Fault sites a :class:`ChaosPolicy` can fire at.
CHAOS_SITES = ("task", "cache_write", "ledger_write")


class InjectedTransientError(TransientTaskError):
    """A chaos-injected failure that retrying is expected to clear."""


class InjectedWorkerCrash(TransientTaskError):
    """Serial-mode stand-in for a worker process dying mid-task.

    In parallel mode a chaos crash is the real thing -- the worker
    calls ``os._exit`` and the pool is rebuilt.  Serial mode has no
    second process to kill, so the crash surfaces as this (retryable)
    exception instead; either way one attempt is consumed.
    """


class InjectedHang(Exception):
    """Serial-mode stand-in for a task hanging past ``timeout_s``.

    Parallel workers really sleep (and get timed out and abandoned by
    the parent); the serial loop raises this instead and records the
    task as ``"timeout"`` without sleeping, so chaos tests are instant.
    Deliberately *not* a :class:`~repro.errors.TransientTaskError`:
    timeouts are only retried under ``retry_timeouts=True``.
    """


def deterministic_unit(*parts: object) -> float:
    """A uniform draw in ``[0, 1)`` keyed purely by ``parts``.

    Shared by chaos decisions and backoff jitter so nothing in the
    runtime consumes mutable RNG state -- repeated calls with the same
    parts give the same value on any machine, in any order.
    """
    blob = ":".join(str(part) for part in parts).encode("utf-8")
    return int.from_bytes(hashlib.sha256(blob).digest()[:8],
                          "big") / 2.0 ** 64


@dataclass(frozen=True)
class ChaosPolicy:
    """Seeded fault-injection schedule for the execution runtime.

    Rates are per-site probabilities in ``[0, 1]``.  The three task
    faults (``crash``, ``hang``, ``transient``) partition one draw, so
    their sum must stay ``<= 1`` and at most one fires per attempt;
    likewise ``torn_cache_rate`` and ``enospc_rate`` partition the
    cache-write draw.  ``max_attempt`` bounds injection: attempts
    beyond it run clean, which guarantees convergence whenever
    ``max_attempt <= retries``.
    """

    seed: int = 0
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    transient_rate: float = 0.0
    torn_cache_rate: float = 0.0
    enospc_rate: float = 0.0
    torn_ledger_rate: float = 0.0
    hang_s: float = 30.0
    max_attempt: int = 1

    def __post_init__(self) -> None:
        for name in ("crash_rate", "hang_rate", "transient_rate",
                     "torn_cache_rate", "enospc_rate",
                     "torn_ledger_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{name} must be in [0, 1], got {value}")
        if self.crash_rate + self.hang_rate + self.transient_rate > 1.0:
            raise ConfigurationError(
                "crash_rate + hang_rate + transient_rate must be <= 1 "
                "(they partition one draw)")
        if self.torn_cache_rate + self.enospc_rate > 1.0:
            raise ConfigurationError(
                "torn_cache_rate + enospc_rate must be <= 1 "
                "(they partition one draw)")
        if self.hang_s <= 0.0:
            raise ConfigurationError(
                f"hang_s must be > 0, got {self.hang_s}")
        if self.max_attempt < 1:
            raise ConfigurationError(
                f"max_attempt must be >= 1, got {self.max_attempt}")

    @classmethod
    def at_intensity(cls, level: float, *, seed: int = 0,
                     max_attempt: int = 1, include_hangs: bool = True,
                     hang_s: float = 30.0) -> "ChaosPolicy":
        """The canonical intensity ladder used by E22 and ``--chaos``.

        ``level`` in ``[0, 1]`` scales every fault rate together;
        ``include_hangs=False`` drops the hang component (needed when
        no per-task ``timeout_s`` will be armed to cut hangs short).
        """
        if not 0.0 <= level <= 1.0:
            raise ConfigurationError(
                f"chaos intensity must be in [0, 1], got {level}")
        return cls(seed=seed,
                   crash_rate=0.20 * level,
                   hang_rate=(0.10 * level) if include_hangs else 0.0,
                   transient_rate=0.30 * level,
                   torn_cache_rate=0.25 * level,
                   enospc_rate=0.10 * level,
                   torn_ledger_rate=0.25 * level,
                   hang_s=hang_s, max_attempt=max_attempt)

    def with_seed(self, seed: int) -> "ChaosPolicy":
        return replace(self, seed=seed)

    @property
    def injects_task_faults(self) -> bool:
        return (self.crash_rate + self.hang_rate +
                self.transient_rate) > 0.0

    def _unit(self, site: str, key: str, attempt: int = 0) -> float:
        return deterministic_unit("chaos", self.seed, site, key, attempt)

    def task_action(self, key: str, attempt: int) -> Optional[str]:
        """``"crash" | "hang" | "transient" | None`` for one attempt."""
        if attempt > self.max_attempt:
            return None
        draw = self._unit("task", key, attempt)
        for action, rate in (("crash", self.crash_rate),
                             ("hang", self.hang_rate),
                             ("transient", self.transient_rate)):
            if draw < rate:
                return action
            draw -= rate
        return None

    def cache_action(self, key: str) -> Optional[str]:
        """``"torn" | "enospc" | None`` for one cache write."""
        draw = self._unit("cache_write", key)
        for action, rate in (("torn", self.torn_cache_rate),
                             ("enospc", self.enospc_rate)):
            if draw < rate:
                return action
            draw -= rate
        return None

    def ledger_torn(self, key: str, attempt: int = 0) -> bool:
        """Whether this ledger append simulates a torn/contended write."""
        return self._unit("ledger_write", key,
                          attempt) < self.torn_ledger_rate

    def apply_before_task(self, key: str, attempt: int, *,
                          in_worker: bool,
                          sleep: Callable[[float], None] = time.sleep
                          ) -> None:
        """Fire this attempt's task fault (if any) at the caller.

        Called by the pool immediately before the task body runs --
        outside the task's metrics registry, so chaos never perturbs
        per-task snapshots.  ``in_worker=True`` means a dedicated
        worker process that may really die (``os._exit``) or really
        sleep; ``in_worker=False`` raises the serial stand-ins instead.
        """
        action = self.task_action(key, attempt)
        if action is None:
            return
        if action == "crash":
            if in_worker:
                import os

                os._exit(CHAOS_EXIT_CODE)
            raise InjectedWorkerCrash(
                f"chaos: worker crash injected (attempt {attempt})")
        if action == "hang":
            if in_worker:
                sleep(self.hang_s)
                return
            raise InjectedHang(
                f"chaos: hang injected (attempt {attempt})")
        raise InjectedTransientError(
            f"chaos: transient failure injected (attempt {attempt})")


def tear_file(path, keep_fraction: float = 0.5) -> bool:
    """Truncate ``path`` in place, simulating a torn write.

    Leaves the leading ``keep_fraction`` of the bytes -- enough to be
    recognizably the original record, not enough to parse -- exactly
    what a crash between ``write`` and ``fsync`` can leave behind.
    Returns whether the file was actually damaged.
    """
    import os

    try:
        size = os.path.getsize(path)
    except OSError:
        return False
    if size == 0:
        return False
    kept = max(1, int(size * keep_fraction))
    if kept >= size:
        kept = size - 1
    if kept <= 0:
        return False
    with open(path, "r+b") as handle:
        handle.truncate(kept)
    return True


def chaos_probe(x: int = 0, seed: int = 0) -> dict:
    """Tiny deterministic scheduling workload for chaos experiments.

    Builds a short chain mesh, packs a greedy schedule, and returns a
    digest of it -- cheap enough to run hundreds of times, real enough
    that a corrupted replay is detectable bit-for-bit.  Module-level so
    worker processes can re-import it (E22 and the chaos tests task it
    through the pool as ``repro.runtime.chaos:chaos_probe``).
    """
    from repro.core.engine import SolverEngine
    from repro.core.greedy import greedy_schedule
    from repro.net.topology import chain_topology

    topology = chain_topology(3 + (x % 3))
    links = sorted(topology.links)
    demands = {link: 1 + ((x + seed + rank) % 2)
               for rank, link in enumerate(links)}
    conflicts = SolverEngine().conflict_index(
        topology, hops=2, links=demands.keys()).graph
    schedule = greedy_schedule(conflicts, demands)
    assignments = sorted(schedule.items())
    slots = max(block.start + block.length for _, block in assignments)
    digest = hashlib.sha256(repr(assignments).encode("utf-8"))
    return {"x": x, "slots": slots, "digest": digest.hexdigest()[:12]}
