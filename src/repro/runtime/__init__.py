"""Parallel experiment-execution runtime.

The single execution substrate for replications, parameter sweeps,
benchmarks, and the ``python -m repro`` CLI:

- :mod:`repro.runtime.tasks` -- declarative tasks with stable content
  keys; experiment sharding along parallel sweep axes.
- :mod:`repro.runtime.sweep` -- parameter grids expanded into task
  lists; resumable via the cache.
- :mod:`repro.runtime.pool` -- process-pool fan-out with bounded
  retries, backoff, per-task timeouts, and an in-process serial mode.
- :mod:`repro.runtime.cache` -- content-addressed JSON result cache
  under ``.repro_cache/`` (invalidated by version or source changes),
  safe for concurrent writers via per-key lockfiles and atomic renames.
- :mod:`repro.runtime.ledger` -- append-only run ledger with two
  backends (JSONL and sqlite-WAL), a query interface, and a summary
  reader.
- :mod:`repro.runtime.chaos` -- deterministic seeded fault injection
  (worker crashes, hangs, transient errors, torn writes, full disk)
  for hardening the runtime itself.
- :mod:`repro.runtime.runner` -- experiment-level orchestration used
  by the CLI.
"""

from repro.runtime.cache import DEFAULT_CACHE_DIR, CachedEntry, ResultCache
from repro.runtime.chaos import ChaosPolicy, chaos_probe, deterministic_unit
from repro.runtime.ledger import (
    DEFAULT_LEDGER_NAME,
    DEFAULT_SQLITE_LEDGER_NAME,
    LEDGER_BACKENDS,
    LedgerSummary,
    RunLedger,
    format_ledger_summary,
    infer_backend,
    parse_query,
    summarize_ledger,
)
from repro.runtime.pool import default_jobs, run_tasks
from repro.runtime.runner import (
    ExperimentOutcome,
    dedupe_ids,
    run_experiments,
)
from repro.runtime.sweep import Sweep, run_sweep
from repro.runtime.tasks import (
    SHARD_AXES,
    Task,
    TaskResult,
    classify_error,
    make_task,
    merge_experiment_results,
    resolve_target,
    run_task,
    shard_experiment,
    source_fingerprint,
    task_key,
)

__all__ = [
    "DEFAULT_CACHE_DIR",
    "DEFAULT_LEDGER_NAME",
    "DEFAULT_SQLITE_LEDGER_NAME",
    "LEDGER_BACKENDS",
    "CachedEntry",
    "ChaosPolicy",
    "ExperimentOutcome",
    "LedgerSummary",
    "ResultCache",
    "RunLedger",
    "SHARD_AXES",
    "Sweep",
    "Task",
    "TaskResult",
    "chaos_probe",
    "classify_error",
    "dedupe_ids",
    "default_jobs",
    "deterministic_unit",
    "format_ledger_summary",
    "infer_backend",
    "make_task",
    "parse_query",
    "merge_experiment_results",
    "resolve_target",
    "run_experiments",
    "run_sweep",
    "run_task",
    "run_tasks",
    "shard_experiment",
    "source_fingerprint",
    "summarize_ledger",
    "task_key",
]
