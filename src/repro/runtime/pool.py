"""Process-pool fan-out with cache, ledger, retries, and timeouts.

:func:`run_tasks` is the single execution entry point of the runtime:
it takes a list of :class:`~repro.runtime.tasks.Task`, consults the
result cache, dispatches misses across a ``ProcessPoolExecutor`` (or
runs them inline when ``jobs=1``), retries transient failures with
jittered exponential backoff, enforces a per-task wall-clock timeout,
appends every outcome to the run ledger, and returns one
:class:`~repro.runtime.tasks.TaskResult` per input task *in input
order* -- so callers see identical result sequences regardless of
``jobs``.

Serial mode (``jobs=1``) never pickles anything and never forks: tasks
run in-process, closures work, ``pdb`` works, and per-task timeouts are
not enforced (there is no second process to bound).  This is the
debugging path and the Windows-safe path.

Parallel mode keeps at most ``jobs`` tasks in flight.  A task that
exceeds ``timeout_s`` is marked ``"timeout"`` and abandoned (its worker
process finishes in the background; the pool's effective width shrinks
by one until it does).  Timeouts are assumed systematic and are not
retried by default; ``retry_timeouts=True`` opts them into the retry
budget (``runtime.pool.timeout_retries``).

Failure classification: exceptions are split into *transient* (worth
the retry budget -- the default for unknown exceptions, preserving the
original behavior) and *permanent*
(:class:`~repro.errors.PermanentTaskError`, configuration errors,
unpicklable tasks), which fail immediately
(``runtime.pool.permanent_failures``).

The pool survives its own workers: a worker process that dies
mid-task -- a real crash, or one injected by a
:class:`~repro.runtime.chaos.ChaosPolicy` -- breaks the
``ProcessPoolExecutor``, which the pool rebuilds
(``runtime.pool.pool_restarts``), charging a retry attempt to the
crashed task and requeueing innocent in-flight victims at their
current attempt.  Cache and ledger write failures (full disk, torn
files) are absorbed (``runtime.cache.write_errors``) rather than
allowed to take down a sweep whose results are already in memory.

``clock=`` and ``sleep=`` are injectable so retry/backoff behavior is
testable without real sleeping; chaos tests run entire crash-retry
schedules in milliseconds.
"""

from __future__ import annotations

import errno
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro import obs
from repro.errors import ConfigurationError
from repro.runtime.cache import ResultCache
from repro.runtime.chaos import (
    ChaosPolicy,
    InjectedHang,
    deterministic_unit,
    tear_file,
)
from repro.runtime.ledger import RunLedger
from repro.runtime.tasks import (
    Task,
    TaskResult,
    classify_error,
    run_task,
    task_key,
)

#: ``on_result`` callback signature: (input index, finished result).
ResultCallback = Callable[[int, TaskResult], None]

_CHAOS_COUNTERS = {"crash": "runtime.chaos.crashes",
                   "hang": "runtime.chaos.hangs",
                   "transient": "runtime.chaos.transients"}


def default_jobs() -> int:
    return os.cpu_count() or 1


def _backoff_delay(backoff_s: float, attempt: int, jitter: float,
                   key: str) -> float:
    """Delay before retrying ``key`` after failed attempt ``attempt``.

    Exponential in the attempt number; ``jitter > 0`` stretches it by
    up to ``jitter`` fraction, keyed deterministically by (key,
    attempt) so two racing sweeps desynchronize their retries without
    consuming RNG state or losing reproducibility.
    """
    delay = backoff_s * 2 ** (attempt - 1)
    if jitter > 0.0:
        delay *= 1.0 + jitter * deterministic_unit("backoff", key, attempt)
    return delay


def _run_task_observed(task: Task, collect_metrics: bool,
                       trace=None) -> tuple:
    """Run one task, optionally inside a fresh metrics registry.

    Every task gets its *own* registry so per-task snapshots are
    independent of what ran before them in the same process -- the
    parent merges them in input order, making the aggregate identical
    for any ``jobs`` value.  Returns ``(value, snapshot-or-None)``.
    """
    if not collect_metrics:
        return run_task(task), None
    registry = obs.MetricsRegistry()
    registry.trace_sink = trace
    previous = obs.set_registry(registry)
    try:
        value = run_task(task)
    finally:
        obs.set_registry(previous)
    # Timings ride along for the parent's profile view; everything written
    # to disk (sidecar, --metrics) strips them back out for determinism.
    return value, registry.snapshot(timings=True)


def _worker_execute(task: Task, collect_metrics: bool = False,
                    chaos: Optional[ChaosPolicy] = None,
                    key: str = "", attempt: int = 1) -> dict:
    """Run one task in a worker; always returns (never raises) so the
    parent gets wall time and worker identity even for failures.

    The exception: an injected chaos *crash* really kills the process
    (``os._exit``), exactly like the fault it models -- the parent sees
    a broken pool, not a payload.  Chaos fires *before* the task's
    metrics registry opens, so injection never perturbs snapshots.
    """
    import traceback

    started = time.perf_counter()
    try:
        if chaos is not None:
            chaos.apply_before_task(key, attempt, in_worker=True)
        value, metrics = _run_task_observed(task, collect_metrics)
        return {"ok": True, "value": value, "metrics": metrics,
                "pid": os.getpid(),
                "wall_s": time.perf_counter() - started}
    except Exception as exc:  # noqa: BLE001 -- reported, not swallowed
        return {"ok": False,
                "error": f"{type(exc).__name__}: {exc}",
                "error_kind": classify_error(exc),
                "traceback": traceback.format_exc(),
                "pid": os.getpid(),
                "wall_s": time.perf_counter() - started}


@dataclass
class _Attempt:
    index: int
    task: Task
    key: str
    attempt: int  # 1-based
    eligible_at: float  # monotonic time before which it must not start
    enqueued_at: float = 0.0  # monotonic time the task first queued


def run_tasks(tasks: Sequence[Task], *,
              jobs: Optional[int] = None,
              timeout_s: Optional[float] = None,
              retries: int = 0,
              backoff_s: float = 0.25,
              jitter: float = 0.0,
              retry_timeouts: bool = False,
              cache: Optional[ResultCache] = None,
              ledger: Optional[RunLedger] = None,
              chaos: Optional[ChaosPolicy] = None,
              on_result: Optional[ResultCallback] = None,
              collect_metrics: bool = False,
              trace=None,
              clock: Callable[[], float] = time.monotonic,
              sleep: Callable[[float], None] = time.sleep,
              heartbeat_s: float = 5.0) -> list[TaskResult]:
    """Execute ``tasks`` and return their results in input order.

    Parameters
    ----------
    jobs:
        Worker processes; ``None`` means ``os.cpu_count()``; ``1`` runs
        everything inline in this process.
    timeout_s:
        Per-task wall-clock limit (parallel mode only).
    retries:
        Extra attempts after a failed transient (not permanent)
        attempt.
    backoff_s:
        Base delay before retry *k* of a task: ``backoff_s * 2**(k-1)``.
    jitter:
        Fraction by which each backoff delay is deterministically
        stretched (keyed by task and attempt); ``0`` disables.
    retry_timeouts:
        Spend retry budget on timed-out tasks too (default off: a
        timeout is presumed systematic, not transient).
    cache:
        Consulted before dispatch; successful fresh results are stored.
        Write failures (full disk, contended locks) never fail the
        task -- the value is already in memory.
    ledger:
        Every final outcome is appended (including cache hits), plus
        start events at dispatch and periodic heartbeats for in-flight
        tasks, so an interrupted run leaves an orphan trail.
    chaos:
        A :class:`~repro.runtime.chaos.ChaosPolicy` injecting faults
        into task execution and cache/ledger writes.  Injection is
        content-keyed: the same policy hits the same tasks identically
        at any ``jobs``.
    on_result:
        Called once per task as it finishes, out of input order.
    collect_metrics:
        Execute each fresh task inside its own
        :class:`~repro.obs.metrics.MetricsRegistry`; the deterministic
        snapshot comes back on ``TaskResult.metrics``.
    trace:
        A :class:`~repro.obs.tracing.TraceWriter` receiving every span
        closed while tasks run.  Serial mode only (worker processes
        cannot share the parent's file handle); ignored when ``jobs>1``.
    clock / sleep:
        Injectable monotonic clock and sleep (tests substitute a fake
        pair so retry schedules run instantly).
    heartbeat_s:
        Interval between ledger heartbeats for in-flight tasks
        (parallel mode; ``0`` disables).
    """
    jobs = default_jobs() if jobs is None else int(jobs)
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    if retries < 0:
        raise ConfigurationError(f"retries must be >= 0, got {retries}")
    if jitter < 0.0:
        raise ConfigurationError(f"jitter must be >= 0, got {jitter}")
    if chaos is not None and chaos.hang_rate > 0.0 and jobs > 1 and \
            (timeout_s is None or timeout_s >= chaos.hang_s):
        raise ConfigurationError(
            "chaos hang injection with jobs > 1 needs timeout_s < "
            f"chaos.hang_s ({chaos.hang_s}); otherwise injected hangs "
            "wedge workers for their full duration")

    results: dict[int, TaskResult] = {}

    def finish(index: int, result: TaskResult) -> None:
        results[index] = result
        if result.outcome == "ok" and cache is not None:
            _store(cache, result, chaos)
        if ledger is not None:
            ledger.record(result, chaos=chaos)
        if on_result is not None:
            on_result(index, result)

    # Cache pass: anything warm never reaches a worker.
    pending: deque[_Attempt] = deque()
    enqueued_at = clock()
    for index, task in enumerate(tasks):
        key = cache.key_for(task) if cache is not None else task_key(task)
        hit = cache.get(task) if cache is not None else None
        if hit is not None:
            finish(index, TaskResult(task=task, key=key, outcome="cached",
                                     value=hit.value, wall_s=hit.wall_s,
                                     attempts=0, worker="cache",
                                     metrics=(cache.get_metrics(task)
                                              if collect_metrics else None)))
        else:
            pending.append(_Attempt(index, task, key, 1, 0.0,
                                    enqueued_at=enqueued_at))

    if jobs == 1:
        _run_serial(pending, retries, backoff_s, jitter, retry_timeouts,
                    finish, collect_metrics, trace, chaos, ledger,
                    clock, sleep)
    elif pending:
        _run_parallel(pending, jobs, timeout_s, retries, backoff_s,
                      jitter, retry_timeouts, finish, collect_metrics,
                      chaos, ledger, clock, sleep, heartbeat_s)
    return [results[i] for i in range(len(tasks))]


def _store(cache: ResultCache, result: TaskResult,
           chaos: Optional[ChaosPolicy]) -> None:
    """Write one result (and metrics sidecar) to the cache.

    Chaos may tear the written entry (damaged bytes the quarantine
    path must absorb on the next read) or veto the write with a
    simulated full disk.  Real write errors are counted and dropped:
    the computed value is already in memory, so a sick filesystem must
    not fail the task.
    """
    action = chaos.cache_action(result.key) if chaos is not None else None
    try:
        if action == "enospc":
            obs.counter("runtime.chaos.enospc").inc()
            raise OSError(errno.ENOSPC,
                          "chaos: injected ENOSPC on cache write")
        key = cache.put(result.task, result.value, wall_s=result.wall_s)
    except ValueError:
        return  # value has no JSON form; skip caching it
    except OSError:
        obs.counter("runtime.cache.write_errors").inc()
        return
    if action == "torn" and tear_file(cache.path_for(key)):
        obs.counter("runtime.chaos.torn_cache_writes").inc()
    if result.metrics is not None:
        try:
            cache.put_metrics(result.task, result.metrics)
        except OSError:
            obs.counter("runtime.cache.write_errors").inc()


def _note_injection(chaos: Optional[ChaosPolicy], key: str, attempt: int,
                    noted: Optional[set] = None) -> None:
    """Count an imminent chaos task fault (parent-side, pre-dispatch).

    Counting in the parent -- rather than in the worker, which may be
    about to die -- keeps the counters exact and identical between
    serial and parallel runs. ``noted`` dedupes per (key, attempt): an
    innocent task requeued after a neighbour broke the pool re-dispatches
    at its *same* attempt, and the schedule point must not count twice.
    """
    action = chaos.task_action(key, attempt) if chaos is not None else None
    if action is None:
        return
    if noted is not None:
        if (key, attempt) in noted:
            return
        noted.add((key, attempt))
    obs.counter(_CHAOS_COUNTERS[action]).inc()


def _run_serial(pending: deque[_Attempt], retries: int, backoff_s: float,
                jitter: float, retry_timeouts: bool,
                finish: Callable[[int, TaskResult], None],
                collect_metrics: bool = False, trace=None,
                chaos: Optional[ChaosPolicy] = None,
                ledger: Optional[RunLedger] = None,
                clock: Callable[[], float] = time.monotonic,
                sleep: Callable[[float], None] = time.sleep) -> None:
    for item in pending:
        attempt = 0
        while True:
            attempt += 1
            started = time.perf_counter()
            queue_s = clock() - item.enqueued_at
            _note_injection(chaos, item.key, attempt)
            if ledger is not None:
                ledger.start(item.task, item.key, worker="serial")
            try:
                if chaos is not None:
                    chaos.apply_before_task(item.key, attempt,
                                            in_worker=False, sleep=sleep)
                value, metrics = _run_task_observed(item.task,
                                                    collect_metrics, trace)
            except InjectedHang as exc:
                # Serial stand-in for a hang: the parallel path would
                # time the task out, so mirror that outcome here.
                if retry_timeouts and attempt <= retries:
                    obs.counter("runtime.pool.timeout_retries").inc()
                    sleep(_backoff_delay(backoff_s, attempt, jitter,
                                         item.key))
                    continue
                finish(item.index, TaskResult(
                    task=item.task, key=item.key, outcome="timeout",
                    error=str(exc), wall_s=time.perf_counter() - started,
                    attempts=attempt, worker="serial", queue_s=queue_s))
                break
            except Exception as exc:  # noqa: BLE001
                error = f"{type(exc).__name__}: {exc}"
                kind = classify_error(exc)
                if kind == "transient" and attempt <= retries:
                    sleep(_backoff_delay(backoff_s, attempt, jitter,
                                         item.key))
                    continue
                if kind == "permanent":
                    obs.counter("runtime.pool.permanent_failures").inc()
                finish(item.index, TaskResult(
                    task=item.task, key=item.key, outcome="failed",
                    error=error, wall_s=time.perf_counter() - started,
                    attempts=attempt, worker="serial", queue_s=queue_s))
                break
            finish(item.index, TaskResult(
                task=item.task, key=item.key, outcome="ok", value=value,
                wall_s=time.perf_counter() - started, attempts=attempt,
                worker="serial", queue_s=queue_s, metrics=metrics))
            break


def _run_parallel(pending: deque[_Attempt], jobs: int,
                  timeout_s: Optional[float], retries: int,
                  backoff_s: float, jitter: float, retry_timeouts: bool,
                  finish: Callable[[int, TaskResult], None],
                  collect_metrics: bool = False,
                  chaos: Optional[ChaosPolicy] = None,
                  ledger: Optional[RunLedger] = None,
                  clock: Callable[[], float] = time.monotonic,
                  sleep: Callable[[float], None] = time.sleep,
                  heartbeat_s: float = 5.0) -> None:
    running: dict = {}  # future -> (_Attempt, submitted_at)
    noted_injections: set = set()  # (key, attempt) chaos points counted
    abandoned: set = set()  # timed-out futures still occupying a worker
    broken_items: list[_Attempt] = []  # victims of the last pool break
    pool_restarts = 0
    # Every pool break charges at least one attempt, so restarts are
    # bounded by the total attempt budget (the +8 covers real crashes
    # racing the accounting).
    max_restarts = 8 + len(pending) * (retries + 1)
    last_heartbeat = clock()

    executor = ProcessPoolExecutor(max_workers=jobs)
    try:
        while pending or running:
            try:
                now = clock()
                abandoned = {f for f in abandoned if not f.done()}
                # Fill free (non-wedged) worker slots with eligible work,
                # so every submitted future starts running immediately --
                # which is what makes per-task timeouts meaningful.
                capacity = jobs - len(abandoned) - len(running)
                while pending and capacity > 0 and \
                        pending[0].eligible_at <= now:
                    item = pending.popleft()
                    _note_injection(chaos, item.key, item.attempt,
                                    noted_injections)
                    if ledger is not None:
                        ledger.start(item.task, item.key)
                    future = executor.submit(_worker_execute, item.task,
                                             collect_metrics, chaos,
                                             item.key, item.attempt)
                    running[future] = (item, clock())
                    capacity -= 1

                if ledger is not None and heartbeat_s > 0 and running \
                        and clock() - last_heartbeat >= heartbeat_s:
                    ledger.heartbeat(sorted({entry[0].key
                                             for entry in
                                             running.values()}))
                    last_heartbeat = clock()

                if not running:
                    if not pending:
                        break
                    if jobs - len(abandoned) <= 0:
                        # Every worker is wedged on an abandoned
                        # (timed-out) task.  Hung tasks often *do*
                        # finish eventually -- injected chaos hangs
                        # always do -- so grant one bounded grace
                        # period (well past the timeout that abandoned
                        # them) for a worker to free up before
                        # declaring the pool lost.
                        grace = (chaos.hang_s + 1.0
                                 if chaos is not None and
                                 chaos.hang_rate > 0.0
                                 else 10.0 * (timeout_s or 1.0))
                        freed, _ = wait(list(abandoned), timeout=grace,
                                        return_when=FIRST_COMPLETED)
                        if freed:
                            abandoned -= freed
                            continue
                        while pending:
                            item = pending.popleft()
                            finish(item.index, TaskResult(
                                task=item.task, key=item.key,
                                outcome="failed",
                                error="worker pool exhausted by timed-out "
                                      "tasks", attempts=item.attempt))
                        break
                    # Nothing running; wait for the next backoff window.
                    sleep(min(0.25, max(0.0, pending[0].eligible_at -
                                        clock())))
                    continue

                done, _ = wait(list(running), timeout=0.05,
                               return_when=FIRST_COMPLETED)
                for future in done:
                    item, submitted_at = running.pop(future)
                    if isinstance(future.exception(), BrokenProcessPool):
                        broken_items.append(item)
                        continue
                    _handle_completion(future, item, retries, backoff_s,
                                       jitter, pending, finish,
                                       submitted_at - item.enqueued_at,
                                       clock)
                if broken_items:
                    raise BrokenProcessPool("worker process died")

                if timeout_s is not None:
                    now = clock()
                    for future in [f for f, (_, t0) in running.items()
                                   if now - t0 > timeout_s]:
                        item, started_at = running.pop(future)
                        if future.cancel():
                            # Never started (defensive; should not happen
                            # under the capacity accounting above) --
                            # requeue rather than falsely time it out.
                            pending.appendleft(_Attempt(
                                item.index, item.task, item.key,
                                item.attempt, 0.0,
                                enqueued_at=item.enqueued_at))
                            continue
                        abandoned.add(future)
                        if retry_timeouts and item.attempt <= retries:
                            obs.counter(
                                "runtime.pool.timeout_retries").inc()
                            pending.append(_Attempt(
                                item.index, item.task, item.key,
                                item.attempt + 1,
                                clock() + _backoff_delay(
                                    backoff_s, item.attempt, jitter,
                                    item.key),
                                enqueued_at=item.enqueued_at))
                            continue
                        finish(item.index, TaskResult(
                            task=item.task, key=item.key,
                            outcome="timeout",
                            error=f"timed out after {timeout_s:.3g}s",
                            wall_s=now - started_at,
                            attempts=item.attempt, worker=""))
            except BrokenProcessPool:
                # A worker died (real crash or injected).  Rebuild the
                # pool, charge an attempt to the task(s) the chaos
                # policy says crashed, and requeue innocent in-flight
                # victims at their current attempt.
                victims = broken_items + [entry[0]
                                          for entry in running.values()]
                broken_items, running = [], {}
                abandoned.clear()
                executor.shutdown(wait=False, cancel_futures=True)
                pool_restarts += 1
                obs.counter("runtime.pool.pool_restarts").inc()
                crashed = {id(item) for item in victims
                           if chaos is not None and
                           chaos.task_action(item.key,
                                             item.attempt) == "crash"}
                if not crashed:
                    # No injected culprit identified: a real crash.
                    # Charge everyone -- we cannot know who died.
                    crashed = {id(item) for item in victims}
                for item in victims:
                    if id(item) not in crashed:
                        pending.append(_Attempt(
                            item.index, item.task, item.key,
                            item.attempt, 0.0,
                            enqueued_at=item.enqueued_at))
                    elif item.attempt <= retries:
                        pending.append(_Attempt(
                            item.index, item.task, item.key,
                            item.attempt + 1,
                            clock() + _backoff_delay(backoff_s,
                                                     item.attempt,
                                                     jitter, item.key),
                            enqueued_at=item.enqueued_at))
                    else:
                        finish(item.index, TaskResult(
                            task=item.task, key=item.key,
                            outcome="failed",
                            error="worker process died mid-task "
                                  "(crashed or killed)",
                            attempts=item.attempt, worker=""))
                if pool_restarts > max_restarts:
                    while pending:
                        item = pending.popleft()
                        finish(item.index, TaskResult(
                            task=item.task, key=item.key,
                            outcome="failed",
                            error=f"worker pool broke {pool_restarts} "
                                  "times; giving up",
                            attempts=item.attempt, worker=""))
                    break
                executor = ProcessPoolExecutor(max_workers=jobs)
    finally:
        executor.shutdown(wait=False, cancel_futures=True)


def _handle_completion(future, item: _Attempt, retries: int,
                       backoff_s: float, jitter: float, pending: deque,
                       finish: Callable[[int, TaskResult], None],
                       queue_s: float = 0.0,
                       clock: Callable[[], float] = time.monotonic
                       ) -> None:
    no_retry = False
    try:
        payload = future.result()
    except Exception as exc:  # task/result unpicklable, worker crashed
        message = f"{type(exc).__name__}: {exc}"
        if "ickl" in type(exc).__name__ or "ickl" in str(exc):
            message += ("; tasks must be built from module-level "
                        "callables to cross process boundaries "
                        "(use jobs=1 for closures)")
            no_retry = True
        payload = {"ok": False, "error": message, "pid": None,
                   "wall_s": 0.0}
    if payload.get("error_kind") == "permanent":
        no_retry = True
        obs.counter("runtime.pool.permanent_failures").inc()
    worker = f"pid:{payload.get('pid')}" if payload.get("pid") else ""
    if payload["ok"]:
        finish(item.index, TaskResult(
            task=item.task, key=item.key, outcome="ok",
            value=payload["value"], wall_s=payload["wall_s"],
            attempts=item.attempt, worker=worker, queue_s=queue_s,
            metrics=payload.get("metrics")))
    elif item.attempt <= retries and not no_retry:
        pending.append(_Attempt(
            item.index, item.task, item.key, item.attempt + 1,
            clock() + _backoff_delay(backoff_s, item.attempt, jitter,
                                     item.key),
            enqueued_at=item.enqueued_at))
    else:
        finish(item.index, TaskResult(
            task=item.task, key=item.key, outcome="failed",
            error=payload.get("error", "unknown worker failure"),
            wall_s=payload.get("wall_s", 0.0), attempts=item.attempt,
            worker=worker, queue_s=queue_s))
