"""Process-pool fan-out with cache, ledger, retries, and timeouts.

:func:`run_tasks` is the single execution entry point of the runtime:
it takes a list of :class:`~repro.runtime.tasks.Task`, consults the
result cache, dispatches misses across a ``ProcessPoolExecutor`` (or
runs them inline when ``jobs=1``), retries transient failures with
exponential backoff, enforces a per-task wall-clock timeout, appends
every outcome to the run ledger, and returns one
:class:`~repro.runtime.tasks.TaskResult` per input task *in input
order* -- so callers see identical result sequences regardless of
``jobs``.

Serial mode (``jobs=1``) never pickles anything and never forks: tasks
run in-process, closures work, ``pdb`` works, and per-task timeouts are
not enforced (there is no second process to bound).  This is the
debugging path and the Windows-safe path.

Parallel mode keeps at most ``jobs`` tasks in flight.  A task that
exceeds ``timeout_s`` is marked ``"timeout"`` and abandoned (its worker
process finishes in the background; the pool's effective width shrinks
by one until it does), and is *not* retried -- timeouts are assumed to
be systematic, unlike the transient solver hiccups retries exist for.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro import obs
from repro.errors import ConfigurationError
from repro.runtime.cache import ResultCache
from repro.runtime.ledger import RunLedger
from repro.runtime.tasks import Task, TaskResult, run_task, task_key

#: ``on_result`` callback signature: (input index, finished result).
ResultCallback = Callable[[int, TaskResult], None]


def default_jobs() -> int:
    return os.cpu_count() or 1


def _run_task_observed(task: Task, collect_metrics: bool,
                       trace=None) -> tuple:
    """Run one task, optionally inside a fresh metrics registry.

    Every task gets its *own* registry so per-task snapshots are
    independent of what ran before them in the same process -- the
    parent merges them in input order, making the aggregate identical
    for any ``jobs`` value.  Returns ``(value, snapshot-or-None)``.
    """
    if not collect_metrics:
        return run_task(task), None
    registry = obs.MetricsRegistry()
    registry.trace_sink = trace
    previous = obs.set_registry(registry)
    try:
        value = run_task(task)
    finally:
        obs.set_registry(previous)
    # Timings ride along for the parent's profile view; everything written
    # to disk (sidecar, --metrics) strips them back out for determinism.
    return value, registry.snapshot(timings=True)


def _worker_execute(task: Task, collect_metrics: bool = False) -> dict:
    """Run one task in a worker; always returns (never raises) so the
    parent gets wall time and worker identity even for failures."""
    import traceback

    started = time.perf_counter()
    try:
        value, metrics = _run_task_observed(task, collect_metrics)
        return {"ok": True, "value": value, "metrics": metrics,
                "pid": os.getpid(),
                "wall_s": time.perf_counter() - started}
    except Exception as exc:  # noqa: BLE001 -- reported, not swallowed
        return {"ok": False,
                "error": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(),
                "pid": os.getpid(),
                "wall_s": time.perf_counter() - started}


@dataclass
class _Attempt:
    index: int
    task: Task
    key: str
    attempt: int  # 1-based
    eligible_at: float  # monotonic time before which it must not start
    enqueued_at: float = 0.0  # monotonic time the task first queued


def run_tasks(tasks: Sequence[Task], *,
              jobs: Optional[int] = None,
              timeout_s: Optional[float] = None,
              retries: int = 0,
              backoff_s: float = 0.25,
              cache: Optional[ResultCache] = None,
              ledger: Optional[RunLedger] = None,
              on_result: Optional[ResultCallback] = None,
              collect_metrics: bool = False,
              trace=None) -> list[TaskResult]:
    """Execute ``tasks`` and return their results in input order.

    Parameters
    ----------
    jobs:
        Worker processes; ``None`` means ``os.cpu_count()``; ``1`` runs
        everything inline in this process.
    timeout_s:
        Per-task wall-clock limit (parallel mode only).
    retries:
        Extra attempts after a failed (not timed-out) attempt.
    backoff_s:
        Base delay before retry *k* of a task: ``backoff_s * 2**(k-1)``.
    cache:
        Consulted before dispatch; successful fresh results are stored.
    ledger:
        Every final outcome is appended (including cache hits).
    on_result:
        Called once per task as it finishes, out of input order.
    collect_metrics:
        Execute each fresh task inside its own
        :class:`~repro.obs.metrics.MetricsRegistry`; the deterministic
        snapshot comes back on ``TaskResult.metrics``.
    trace:
        A :class:`~repro.obs.tracing.TraceWriter` receiving every span
        closed while tasks run.  Serial mode only (worker processes
        cannot share the parent's file handle); ignored when ``jobs>1``.
    """
    jobs = default_jobs() if jobs is None else int(jobs)
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    if retries < 0:
        raise ConfigurationError(f"retries must be >= 0, got {retries}")

    results: dict[int, TaskResult] = {}

    def finish(index: int, result: TaskResult) -> None:
        results[index] = result
        if result.outcome == "ok" and cache is not None:
            try:
                cache.put(result.task, result.value, wall_s=result.wall_s)
            except ValueError:
                pass  # value has no JSON form; skip caching it
            else:
                if result.metrics is not None:
                    cache.put_metrics(result.task, result.metrics)
        if ledger is not None:
            ledger.record(result)
        if on_result is not None:
            on_result(index, result)

    # Cache pass: anything warm never reaches a worker.
    pending: deque[_Attempt] = deque()
    enqueued_at = time.monotonic()
    for index, task in enumerate(tasks):
        key = cache.key_for(task) if cache is not None else task_key(task)
        hit = cache.get(task) if cache is not None else None
        if hit is not None:
            finish(index, TaskResult(task=task, key=key, outcome="cached",
                                     value=hit.value, wall_s=hit.wall_s,
                                     attempts=0, worker="cache",
                                     metrics=(cache.get_metrics(task)
                                              if collect_metrics else None)))
        else:
            pending.append(_Attempt(index, task, key, 1, 0.0,
                                    enqueued_at=enqueued_at))

    if jobs == 1:
        _run_serial(pending, retries, backoff_s, finish, collect_metrics,
                    trace)
    elif pending:
        _run_parallel(pending, jobs, timeout_s, retries, backoff_s, finish,
                      collect_metrics)
    return [results[i] for i in range(len(tasks))]


def _run_serial(pending: deque[_Attempt], retries: int, backoff_s: float,
                finish: Callable[[int, TaskResult], None],
                collect_metrics: bool = False, trace=None) -> None:
    for item in pending:
        attempt, error = 0, ""
        while True:
            attempt += 1
            started = time.perf_counter()
            queue_s = time.monotonic() - item.enqueued_at
            try:
                value, metrics = _run_task_observed(item.task,
                                                    collect_metrics, trace)
            except Exception as exc:  # noqa: BLE001
                error = f"{type(exc).__name__}: {exc}"
                if attempt <= retries:
                    time.sleep(backoff_s * 2 ** (attempt - 1))
                    continue
                finish(item.index, TaskResult(
                    task=item.task, key=item.key, outcome="failed",
                    error=error, wall_s=time.perf_counter() - started,
                    attempts=attempt, worker="serial", queue_s=queue_s))
                break
            finish(item.index, TaskResult(
                task=item.task, key=item.key, outcome="ok", value=value,
                wall_s=time.perf_counter() - started, attempts=attempt,
                worker="serial", queue_s=queue_s, metrics=metrics))
            break


def _run_parallel(pending: deque[_Attempt], jobs: int,
                  timeout_s: Optional[float], retries: int,
                  backoff_s: float,
                  finish: Callable[[int, TaskResult], None],
                  collect_metrics: bool = False) -> None:
    running: dict = {}  # future -> (_Attempt, submitted_at)
    abandoned: set = set()  # timed-out futures still occupying a worker

    with ProcessPoolExecutor(max_workers=jobs) as executor:
        try:
            while pending or running:
                now = time.monotonic()
                abandoned = {f for f in abandoned if not f.done()}
                # Fill free (non-wedged) worker slots with eligible work,
                # so every submitted future starts running immediately --
                # which is what makes per-task timeouts meaningful.
                capacity = jobs - len(abandoned) - len(running)
                while pending and capacity > 0 and \
                        pending[0].eligible_at <= now:
                    item = pending.popleft()
                    future = executor.submit(_worker_execute, item.task,
                                             collect_metrics)
                    running[future] = (item, time.monotonic())
                    capacity -= 1

                if not running:
                    if not pending:
                        break
                    if jobs - len(abandoned) <= 0:
                        # Every worker is wedged on an abandoned task.
                        while pending:
                            item = pending.popleft()
                            finish(item.index, TaskResult(
                                task=item.task, key=item.key,
                                outcome="failed",
                                error="worker pool exhausted by timed-out "
                                      "tasks", attempts=item.attempt))
                        break
                    # Nothing running; wait for the next backoff window.
                    time.sleep(min(0.25, max(0.0, pending[0].eligible_at -
                                             time.monotonic())))
                    continue

                done, _ = wait(list(running), timeout=0.05,
                               return_when=FIRST_COMPLETED)
                for future in done:
                    item, submitted_at = running.pop(future)
                    _handle_completion(future, item, retries, backoff_s,
                                       pending, finish,
                                       submitted_at - item.enqueued_at)

                if timeout_s is not None:
                    now = time.monotonic()
                    for future in [f for f, (_, t0) in running.items()
                                   if now - t0 > timeout_s]:
                        item, started_at = running.pop(future)
                        if future.cancel():
                            # Never started (defensive; should not happen
                            # under the capacity accounting above) --
                            # requeue rather than falsely time it out.
                            pending.appendleft(_Attempt(
                                item.index, item.task, item.key,
                                item.attempt, 0.0,
                                enqueued_at=item.enqueued_at))
                            continue
                        abandoned.add(future)
                        finish(item.index, TaskResult(
                            task=item.task, key=item.key,
                            outcome="timeout",
                            error=f"timed out after {timeout_s:.3g}s",
                            wall_s=now - started_at,
                            attempts=item.attempt, worker=""))
        except BrokenProcessPool:
            for item, _t0 in running.values():
                finish(item.index, TaskResult(
                    task=item.task, key=item.key, outcome="failed",
                    error="worker process pool broke (worker died)",
                    attempts=item.attempt, worker=""))
            while pending:
                item = pending.popleft()
                finish(item.index, TaskResult(
                    task=item.task, key=item.key, outcome="failed",
                    error="worker process pool broke (worker died)",
                    attempts=item.attempt, worker=""))
        finally:
            executor.shutdown(wait=False, cancel_futures=True)


def _handle_completion(future, item: _Attempt, retries: int,
                       backoff_s: float, pending: deque,
                       finish: Callable[[int, TaskResult], None],
                       queue_s: float = 0.0) -> None:
    no_retry = False
    try:
        payload = future.result()
    except Exception as exc:  # task/result unpicklable, worker crashed
        message = f"{type(exc).__name__}: {exc}"
        if "ickl" in type(exc).__name__ or "ickl" in str(exc):
            message += ("; tasks must be built from module-level "
                        "callables to cross process boundaries "
                        "(use jobs=1 for closures)")
            no_retry = True
        payload = {"ok": False, "error": message, "pid": None,
                   "wall_s": 0.0}
    worker = f"pid:{payload.get('pid')}" if payload.get("pid") else ""
    if payload["ok"]:
        finish(item.index, TaskResult(
            task=item.task, key=item.key, outcome="ok",
            value=payload["value"], wall_s=payload["wall_s"],
            attempts=item.attempt, worker=worker, queue_s=queue_s,
            metrics=payload.get("metrics")))
    elif item.attempt <= retries and not no_retry:
        pending.append(_Attempt(
            item.index, item.task, item.key, item.attempt + 1,
            time.monotonic() + backoff_s * 2 ** (item.attempt - 1),
            enqueued_at=item.enqueued_at))
    else:
        finish(item.index, TaskResult(
            task=item.task, key=item.key, outcome="failed",
            error=payload.get("error", "unknown worker failure"),
            wall_s=payload.get("wall_s", 0.0), attempts=item.attempt,
            worker=worker, queue_s=queue_s))
