"""Warn-once deprecation plumbing for API redesigns.

Python's own warning registry deduplicates per call *site*, which makes
"the shim warns exactly once" untestable under pytest's filter resets.
This module keys deduplication on the deprecated name instead: the first
access anywhere in the process warns, every later access is silent.  Tests
reset the registry explicitly via :func:`reset_warned`.
"""

from __future__ import annotations

import warnings

_warned: set[str] = set()


def warn_once(key: str, message: str, stacklevel: int = 3) -> None:
    """Emit ``DeprecationWarning(message)`` the first time ``key`` is seen."""
    if key in _warned:
        return
    _warned.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


def reset_warned() -> None:
    """Forget which deprecations already warned (test hook)."""
    _warned.clear()
