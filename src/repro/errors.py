"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch everything raised by this package with a single ``except`` clause
while still being able to distinguish scheduling failures (which are often
*expected*, e.g. during a feasibility search) from programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A component was configured with invalid or inconsistent parameters."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an invalid internal state."""


class SchedulingError(ReproError):
    """A scheduling request could not be satisfied."""


class InfeasibleScheduleError(SchedulingError):
    """No conflict-free schedule exists for the given demands and frame size.

    Raised by the ILP scheduler, the Bellman-Ford schedule recovery and the
    admission controller when the instance is provably infeasible.  The
    optional :attr:`certificate` carries solver-specific evidence (for
    example the negative cycle found by Bellman-Ford).
    """

    def __init__(self, message: str, certificate: object = None) -> None:
        super().__init__(message)
        self.certificate = certificate


class SolverError(SchedulingError):
    """The underlying MILP solver failed for a reason other than infeasibility."""


class RoutingError(ReproError):
    """No route exists between the requested endpoints."""


class TaskError(ReproError):
    """A task dispatched through the execution runtime failed."""


class TransientTaskError(TaskError):
    """A task failure expected to go away on retry.

    Raise this (or a subclass) from task code to mark a failure --
    a solver hiccup, a busy resource, an injected chaos fault -- as
    worth the pool's retry budget.  Exceptions of *unknown* provenance
    are also treated as transient (the pre-existing retry behavior);
    only :class:`PermanentTaskError` and configuration errors skip the
    retry loop.
    """


class PermanentTaskError(TaskError):
    """A task failure retrying cannot fix (bad input, missing target).

    The pool fails such tasks immediately instead of burning retry
    budget on an outcome that cannot change.
    """


class AdmissionError(SchedulingError):
    """A flow could not be admitted under the configured QoS constraints."""
