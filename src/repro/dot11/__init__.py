"""802.11 MAC substrate (systems S4-S5 in DESIGN.md).

- :class:`repro.dot11.dcf.DcfMac` -- CSMA/CA with binary exponential
  backoff, ACKs and retries: the contention baseline the paper compares
  against.
- :class:`repro.dot11.broadcast.RawBroadcastMac` -- the no-backoff,
  no-ACK broadcast primitive commodity WiFi hardware exposes, on which the
  TDMA overlay (:mod:`repro.overlay`) builds its software slots.
"""

from repro.dot11.broadcast import RawBroadcastMac
from repro.dot11.dcf import DcfMac
from repro.dot11.params import DOT11B_PARAMS, DOT11G_PARAMS, Dot11Params

__all__ = ["DOT11B_PARAMS", "DOT11G_PARAMS", "DcfMac", "Dot11Params",
           "RawBroadcastMac"]
