"""The raw broadcast primitive the TDMA overlay drives.

Commodity 802.11 hardware can transmit broadcast frames with no ACK and no
retransmission; with the contention window forced to zero (as the paper's
MadWifi modification does) the frame goes on air as soon as the medium is
free.  Since the TDMA schedule guarantees at most one transmitter per slot
in every conflict neighbourhood, carrier sense never actually defers -- but
a *mis-synchronized* node can slip its transmission into a neighbour's slot
and collide, which is precisely the failure mode guard times must absorb
(experiments E4/E8).

:class:`RawBroadcastMac` therefore transmits at the requested instant and
lets the channel decide what collides.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import SimulationError
from repro.phy.channel import BroadcastChannel, ChannelClient
from repro.phy.frames import FrameKind, PhyFrame
from repro.sim.engine import Simulator
from repro.sim.trace import Trace


class RawBroadcastMac(ChannelClient):
    """No-backoff, no-ACK broadcast MAC (one per node).

    Parameters
    ----------
    deliver:
        Callback ``deliver(node, frame, success)`` for every reception that
        finishes at this node, including corrupted ones (the overlay counts
        slot collisions).
    """

    def __init__(self, sim: Simulator, channel: BroadcastChannel, node: int,
                 deliver: Callable[[int, PhyFrame, bool], None],
                 trace: Optional[Trace] = None) -> None:
        self.sim = sim
        self.channel = channel
        self.node = node
        self.deliver = deliver
        self.trace = trace if trace is not None else Trace(enabled=False)
        channel.attach(node, self)

    def broadcast(self, payload: object, size_bits: int,
                  kind: FrameKind = FrameKind.DATA,
                  duration: Optional[float] = None) -> bool:
        """Transmit immediately; returns False if the radio was mid-frame.

        A False return means the caller's slot timing made two of this
        node's own transmissions overlap (a scheduling bug or an extreme
        sync error); the frame is dropped, as real hardware would refuse it.
        """
        frame = PhyFrame(kind, self.node, None, size_bits, payload)
        try:
            self.channel.transmit(self.node, frame, duration)
        except SimulationError:
            self.trace.emit(self.sim.now, "raw.tx_overrun", node=self.node)
            return False
        return True

    def on_receive(self, frame: PhyFrame, success: bool) -> None:
        self.deliver(self.node, frame, success)

    def on_medium_change(self) -> None:
        """The overlay is schedule-driven; it ignores carrier sense."""
