"""802.11 MAC timing and contention parameters."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.phy.radio import DOT11B_11M, DOT11G_54M, PhyParams
from repro.units import US

#: 802.11 data MAC header (24 B) + QoS-less overhead + FCS (4 B) + LLC/SNAP
#: (8 B), rounded to the conventional 34 B used in capacity analyses.
DATA_HEADER_BITS = 34 * 8
#: ACK frame: 14 bytes.
ACK_BITS = 14 * 8
#: RTS frame: 20 bytes.
RTS_BITS = 20 * 8
#: CTS frame: 14 bytes.
CTS_BITS = 14 * 8


@dataclass(frozen=True)
class Dot11Params:
    """MAC parameters for one 802.11 flavour."""

    phy: PhyParams
    slot_time_s: float
    sifs_s: float
    cw_min: int
    cw_max: int
    retry_limit: int
    queue_capacity: int = 200
    #: unicast data frames strictly larger than this (in payload+header
    #: bits) are preceded by an RTS/CTS exchange; ``None`` disables RTS
    rts_threshold_bits: Optional[int] = None

    def __post_init__(self) -> None:
        if self.slot_time_s <= 0 or self.sifs_s <= 0:
            raise ConfigurationError("slot time and SIFS must be positive")
        if not 0 < self.cw_min <= self.cw_max:
            raise ConfigurationError("need 0 < cw_min <= cw_max")
        if self.retry_limit < 0:
            raise ConfigurationError("retry limit must be >= 0")

    @property
    def difs_s(self) -> float:
        """DIFS = SIFS + 2 slot times."""
        return self.sifs_s + 2 * self.slot_time_s

    def ack_timeout_s(self) -> float:
        """How long a transmitter waits for an ACK before retrying."""
        return (self.sifs_s + self.phy.airtime(ACK_BITS, basic_rate=True)
                + 2 * self.phy.propagation_delay_s + self.slot_time_s)


#: Classic 802.11b DSSS timing (long slots, 11 Mb/s data).
DOT11B_PARAMS = Dot11Params(
    phy=DOT11B_11M,
    slot_time_s=20 * US,
    sifs_s=10 * US,
    cw_min=31,
    cw_max=1023,
    retry_limit=7,
)

#: 802.11g OFDM timing (short slots, 54 Mb/s data).
DOT11G_PARAMS = Dot11Params(
    phy=DOT11G_54M,
    slot_time_s=9 * US,
    sifs_s=10 * US,
    cw_min=15,
    cw_max=1023,
    retry_limit=7,
)
