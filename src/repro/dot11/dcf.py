"""802.11 DCF: CSMA/CA with binary exponential backoff.

This is the contention baseline the paper's TDMA emulation is compared
against.  The implementation follows the standard DCF state machine with
the usual simulator simplifications, each of which is conservative for the
comparison (they *favour* DCF or are neutral):

- every access draws a backoff even when the medium was idle for DIFS
  (slightly pessimistic for DCF at very light load, negligible at the loads
  the experiments run);
- no RTS/CTS (the paper's VoIP frames are far below any RTS threshold);
- no EIFS after corrupted receptions (slightly optimistic for DCF).

Unicast data frames are acknowledged after SIFS and retried with doubled
contention windows up to ``retry_limit``; broadcast frames are sent once,
unacknowledged, as per the standard.

RTS/CTS (optional, ``params.rts_threshold_bits``): unicast frames above
the threshold are preceded by a request-to-send handshake.  Overhearing
stations set their NAV (virtual carrier sense) for the duration advertised
in the RTS/CTS, which protects the data frame from hidden terminals that
cannot physically sense the transmitter.  A lost CTS is handled exactly
like a lost ACK (backoff doubling, retry accounting).

Hidden nodes: on the bare :class:`~repro.phy.channel.BroadcastChannel`
carrier sense is graph-perfect -- a station defers to any transmitting
radio neighbour, so classic hidden-terminal collisions cannot happen.
When the channel is widened with
:meth:`~repro.phy.channel.BroadcastChannel.set_physical_couplings` (from
:meth:`~repro.phy.models.SinrModel.channel_couplings`), two extra
physical effects appear without any change to this MAC: *sense pairs*
make the medium read busy for non-neighbour stations inside the carrier
sense range (more deferral), and *jam pairs* let a non-neighbour
transmitter corrupt in-flight receptions at its victims (hidden-node
collisions, traced as ``phy.jam`` / loss reason ``"interference"``).
E23 runs the DCF baseline both ways to quantify the hidden-node tax the
protocol-model abstraction hides.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

import numpy as np

from repro.dot11.params import (
    ACK_BITS,
    CTS_BITS,
    DATA_HEADER_BITS,
    RTS_BITS,
    Dot11Params,
)
from repro.errors import SimulationError
from repro.phy.channel import BroadcastChannel, ChannelClient
from repro.phy.frames import FrameKind, PhyFrame
from repro.sim.engine import Event, Simulator
from repro.sim.trace import Trace


class DcfMac(ChannelClient):
    """One node's DCF MAC entity.

    Parameters
    ----------
    sim, channel:
        Event kernel and shared medium (the MAC attaches itself).
    node:
        This node's id.
    params:
        Timing/contention parameters.
    rng:
        Stream for backoff draws.
    deliver:
        Callback ``deliver(node, payload)`` invoked for every successfully
        received data frame addressed to this node (or broadcast).
    trace:
        Optional shared trace; emits ``mac.tx_data``, ``mac.retry``,
        ``mac.drop``, ``mac.deliver``, ``mac.queue_drop``.
    """

    def __init__(self, sim: Simulator, channel: BroadcastChannel, node: int,
                 params: Dot11Params, rng: np.random.Generator,
                 deliver: Callable[[int, object], None],
                 trace: Optional[Trace] = None) -> None:
        self.sim = sim
        self.channel = channel
        self.node = node
        self.params = params
        self.rng = rng
        self.deliver = deliver
        self.trace = trace if trace is not None else Trace(enabled=False)
        channel.attach(node, self)

        self._queue: deque[PhyFrame] = deque()
        self._current: Optional[PhyFrame] = None
        self._cw = params.cw_min
        self._retries = 0
        self._backoff_slots: Optional[int] = None
        #: pending fire event for the DIFS+backoff countdown
        self._access_event: Optional[Event] = None
        #: time the current countdown started (for slot accounting)
        self._countdown_start: Optional[float] = None
        self._awaiting_ack_for: Optional[int] = None
        self._ack_timeout_event: Optional[Event] = None
        self._awaiting_cts_for: Optional[int] = None
        self._cts_timeout_event: Optional[Event] = None
        #: virtual carrier sense: medium treated busy until this instant
        self._nav_until = 0.0
        self._nav_wakeup: Optional[Event] = None
        self._transmitting_until = 0.0
        #: recently seen data frame ids, for duplicate suppression after
        #: lost ACKs
        self._seen: deque[int] = deque(maxlen=64)
        self._seen_set: set[int] = set()

    # -- upper-layer interface ------------------------------------------------

    def send(self, dst: Optional[int], payload: object,
             payload_bits: int) -> bool:
        """Queue a data frame to ``dst`` (``None`` broadcasts).

        Returns False (and traces ``mac.queue_drop``) if the queue is full.
        """
        if len(self._queue) >= self.params.queue_capacity:
            self.trace.emit(self.sim.now, "mac.queue_drop", node=self.node)
            return False
        frame = PhyFrame(FrameKind.DATA, self.node, dst,
                         payload_bits + DATA_HEADER_BITS, payload)
        self._queue.append(frame)
        self._maybe_begin_access()
        return True

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    # -- access procedure ---------------------------------------------------

    def _maybe_begin_access(self) -> None:
        if self._current is not None or not self._queue:
            return
        self._current = self._queue[0]
        self._retries = 0
        self._cw = self.params.cw_min
        self._draw_backoff()
        self._reschedule_countdown()

    def _draw_backoff(self) -> None:
        self._backoff_slots = int(self.rng.integers(0, self._cw + 1))

    def _medium_busy(self) -> bool:
        """Physical carrier sense OR'd with the NAV."""
        return (self.channel.medium_busy(self.node)
                or self.sim.now < self._nav_until)

    def _set_nav(self, until: float) -> None:
        """Extend the NAV and arrange to resume access when it expires."""
        if until <= self._nav_until:
            return
        self._nav_until = until
        self._freeze_countdown()
        if self._nav_wakeup is not None:
            self._nav_wakeup.cancel()
        self._nav_wakeup = self.sim.schedule_at(until,
                                                self.on_medium_change)

    def _reschedule_countdown(self) -> None:
        """(Re)arm the DIFS + backoff countdown if the medium is idle."""
        self._cancel_countdown()
        if self._current is None or self._awaiting_ack_for is not None \
                or self._awaiting_cts_for is not None:
            return
        if self._medium_busy():
            return  # on_medium_change re-arms when the medium frees up
        assert self._backoff_slots is not None
        delay = (self.params.difs_s
                 + self._backoff_slots * self.params.slot_time_s)
        self._countdown_start = self.sim.now
        self._access_event = self.sim.schedule(delay, self._countdown_fired)

    def _cancel_countdown(self) -> None:
        if self._access_event is not None:
            self._access_event.cancel()
            self._access_event = None

    def _freeze_countdown(self) -> None:
        """Medium went busy mid-countdown: bank fully elapsed backoff slots."""
        if self._access_event is None or self._countdown_start is None:
            return
        elapsed = self.sim.now - self._countdown_start - self.params.difs_s
        if elapsed > 0 and self._backoff_slots:
            decremented = min(self._backoff_slots,
                              int(elapsed / self.params.slot_time_s))
            self._backoff_slots -= decremented
        self._cancel_countdown()

    def _countdown_fired(self) -> None:
        self._access_event = None
        if self._current is None:
            return
        if self._medium_busy():  # pragma: no cover - defensive
            self._reschedule_countdown()
            return
        self._backoff_slots = 0
        self._transmit_current()

    def _uses_rts(self, frame: PhyFrame) -> bool:
        threshold = self.params.rts_threshold_bits
        return (threshold is not None and not frame.is_broadcast
                and frame.size_bits > threshold)

    def _transmit_current(self) -> None:
        frame = self._current
        assert frame is not None
        if self._uses_rts(frame):
            self._transmit_rts(frame)
        else:
            self._transmit_data(frame)

    def _transmit_data(self, frame: PhyFrame) -> None:
        duration = self.params.phy.airtime(frame.size_bits)
        self.channel.transmit(self.node, frame, duration)
        self._transmitting_until = self.sim.now + duration
        self.trace.emit(self.sim.now, "mac.tx_data", node=self.node,
                        frame=frame.frame_id, retries=self._retries)
        if frame.is_broadcast:
            self.sim.schedule(duration, self._broadcast_done)
        else:
            self._awaiting_ack_for = frame.frame_id
            self._ack_timeout_event = self.sim.schedule(
                duration + self.params.ack_timeout_s(), self._ack_timeout)

    # -- RTS/CTS ------------------------------------------------------------

    def _exchange_tail_s(self, data_frame: PhyFrame) -> float:
        """Time from the end of a CTS to the end of the final ACK."""
        phy = self.params.phy
        return (self.params.sifs_s + phy.airtime(data_frame.size_bits)
                + self.params.sifs_s + phy.airtime(ACK_BITS, basic_rate=True)
                + 3 * phy.propagation_delay_s)

    def _transmit_rts(self, data_frame: PhyFrame) -> None:
        phy = self.params.phy
        cts_air = phy.airtime(CTS_BITS, basic_rate=True)
        # NAV advertised in the RTS: from RTS end to ACK end
        nav = (self.params.sifs_s + cts_air + phy.propagation_delay_s
               + self._exchange_tail_s(data_frame))
        rts = PhyFrame(FrameKind.RTS, self.node, data_frame.dst, RTS_BITS,
                       payload=(data_frame.frame_id, nav))
        duration = phy.airtime(RTS_BITS, basic_rate=True)
        self.channel.transmit(self.node, rts, duration)
        self._transmitting_until = self.sim.now + duration
        self.trace.emit(self.sim.now, "mac.tx_rts", node=self.node,
                        frame=data_frame.frame_id, retries=self._retries)
        self._awaiting_cts_for = data_frame.frame_id
        timeout = (duration + self.params.sifs_s + cts_air
                   + 2 * phy.propagation_delay_s + self.params.slot_time_s)
        self._cts_timeout_event = self.sim.schedule(timeout,
                                                    self._cts_timeout)

    def _cts_timeout(self) -> None:
        self._cts_timeout_event = None
        self._awaiting_cts_for = None
        self.trace.emit(self.sim.now, "mac.cts_timeout", node=self.node)
        self._ack_timeout()  # identical retry/backoff handling

    def _send_cts(self, rts: PhyFrame) -> None:
        data_frame_id, rts_nav = rts.payload
        phy = self.params.phy
        cts_air = phy.airtime(CTS_BITS, basic_rate=True)
        # CTS NAV: what remains of the exchange after this CTS ends
        nav = max(0.0, rts_nav - self.params.sifs_s - cts_air
                  - phy.propagation_delay_s)
        cts = PhyFrame(FrameKind.CTS, self.node, rts.src, CTS_BITS,
                       payload=(data_frame_id, nav))
        try:
            self.channel.transmit(self.node, cts, cts_air)
        except SimulationError:
            self.trace.emit(self.sim.now, "mac.cts_suppressed",
                            node=self.node)

    def _cts_received(self) -> None:
        """Our CTS arrived: ship the pending data frame after SIFS."""
        if self._cts_timeout_event is not None:
            self._cts_timeout_event.cancel()
            self._cts_timeout_event = None
        self._awaiting_cts_for = None
        self.sim.schedule(self.params.sifs_s, self._cts_cleared)

    def _cts_cleared(self) -> None:
        if self._current is not None:
            self._transmit_data(self._current)

    def _broadcast_done(self) -> None:
        self._finish_current(succeeded=True)

    def _finish_current(self, succeeded: bool) -> None:
        frame = self._current
        if frame is not None and self._queue and self._queue[0] is frame:
            self._queue.popleft()
        if frame is not None and not succeeded:
            self.trace.emit(self.sim.now, "mac.drop", node=self.node,
                            frame=frame.frame_id)
        self._current = None
        self._awaiting_ack_for = None
        self._awaiting_cts_for = None
        if self._cts_timeout_event is not None:
            self._cts_timeout_event.cancel()
            self._cts_timeout_event = None
        self._backoff_slots = None
        self._maybe_begin_access()

    # -- ACK handling --------------------------------------------------------

    def _ack_timeout(self) -> None:
        self._ack_timeout_event = None
        self._awaiting_ack_for = None
        self._retries += 1
        if self._retries > self.params.retry_limit:
            self._finish_current(succeeded=False)
            return
        self.trace.emit(self.sim.now, "mac.retry", node=self.node,
                        retries=self._retries)
        self._cw = min(2 * self._cw + 1, self.params.cw_max)
        self._draw_backoff()
        self._reschedule_countdown()

    def _send_ack(self, data_frame: PhyFrame) -> None:
        ack = PhyFrame(FrameKind.ACK, self.node, data_frame.src, ACK_BITS,
                       payload=data_frame.frame_id)
        try:
            self.channel.transmit(
                self.node, ack,
                self.params.phy.airtime(ACK_BITS, basic_rate=True))
        except SimulationError:
            # Half-duplex clash with our own pending transmission; the data
            # sender will time out and retry.
            self.trace.emit(self.sim.now, "mac.ack_suppressed", node=self.node)

    # -- ChannelClient --------------------------------------------------------

    def on_receive(self, frame: PhyFrame, success: bool) -> None:
        if not success:
            return
        if frame.kind is FrameKind.ACK:
            if (frame.dst == self.node
                    and frame.payload == self._awaiting_ack_for):
                if self._ack_timeout_event is not None:
                    self._ack_timeout_event.cancel()
                    self._ack_timeout_event = None
                self._finish_current(succeeded=True)
            return
        if frame.kind is FrameKind.RTS:
            if frame.dst == self.node:
                self.sim.schedule(self.params.sifs_s, self._send_cts, frame)
            else:
                ____, nav = frame.payload
                self._set_nav(self.sim.now + nav)
            return
        if frame.kind is FrameKind.CTS:
            if (frame.dst == self.node
                    and frame.payload[0] == self._awaiting_cts_for):
                self._cts_received()
            elif frame.dst != self.node:
                ____, nav = frame.payload
                self._set_nav(self.sim.now + nav)
            return
        if frame.kind is not FrameKind.DATA:
            return
        if frame.dst == self.node:
            self.sim.schedule(self.params.sifs_s, self._send_ack, frame)
        if frame.dst == self.node or frame.is_broadcast:
            if frame.frame_id in self._seen_set:
                return  # duplicate after a lost ACK
            if len(self._seen) == self._seen.maxlen:
                self._seen_set.discard(self._seen[0])
            self._seen.append(frame.frame_id)
            self._seen_set.add(frame.frame_id)
            self.trace.emit(self.sim.now, "mac.deliver", node=self.node,
                            frame=frame.frame_id)
            self.deliver(self.node, frame.payload)

    def on_medium_change(self) -> None:
        if self._medium_busy():
            self._freeze_countdown()
        elif (self._current is not None and self._access_event is None
              and self._awaiting_ack_for is None
              and self._awaiting_cts_for is None):
            self._reschedule_countdown()
