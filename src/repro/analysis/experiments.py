"""The reconstructed experiment suite (E1-E16 in DESIGN.md).

Each function runs one experiment end-to-end and returns an
:class:`ExperimentResult` with the rows a paper table/figure would plot.
Benchmarks (``benchmarks/test_bench_eXX_*.py``) call these with their
default (laptop-scale) parameters and print the tables; EXPERIMENTS.md
records the measured shapes against the expected ones.

All experiments are deterministic given their ``seed``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.analysis.reporting import format_table
from repro.analysis.scenarios import (
    admit_flows,
    delay_constraints_for,
    make_voip_flows,
    run_dcf_scenario,
    run_tdma_scenario,
    schedule_for_flows,
)
from repro.core.delay import path_delay_slots, path_wraps
from repro.core.engine import SolverEngine
from repro.core.greedy import greedy_schedule
from repro.core.guarantees import check_guarantees
from repro.core.repair import RepairEngine
from repro.faults import FaultInjector, FaultPlan
from repro.core.ilp import DelayConstraint, SchedulingProblem
from repro.core.minslots import demand_lower_bound, minimum_slots
from repro.core.ordering import schedule_from_order
from repro.core.policy import SolverPolicy
from repro.core.zones import greedy_minimum_slots, zoned_minimum_slots
from repro.core.tree_order import (
    adversarial_tree_order,
    min_delay_tree_order,
    naive_tree_order,
)
from repro.errors import InfeasibleScheduleError
from repro.mesh16.frame import MeshFrameConfig, default_frame_config
from repro.net.flows import Flow, FlowSet
from repro.net.routing import gateway_tree, route_all
from repro.net.topology import (
    MeshTopology,
    binary_tree_topology,
    chain_topology,
    grid_topology,
    random_disk_topology,
)
from repro.overlay.guard import required_guard_s, slot_overhead_fraction
from repro.overlay.sync import SyncConfig
from repro.sim.random import RngRegistry
from repro.traffic.voip import G711, G729, VoipCodec
from repro.units import MS, US


@dataclass
class ExperimentResult:
    """Rows of one reconstructed table/figure."""

    experiment: str
    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    notes: str = ""

    def table(self) -> str:
        text = format_table(self.headers, self.rows,
                            title=f"[{self.experiment}] {self.title}")
        if self.notes:
            text += f"\nnote: {self.notes}"
        return text


# ---------------------------------------------------------------------------
# E1: minimum guaranteed slots vs number of VoIP calls
# ---------------------------------------------------------------------------

def e01_min_slots(call_counts: Sequence[int] = (1, 2, 3, 4, 5, 6),
                  seed: int = 7,
                  frame: Optional[MeshFrameConfig] = None,
                  codec: VoipCodec = G711) -> ExperimentResult:
    """Min slots to carry N gateway VoIP calls: ILP search vs greedy.

    Expected shape: slots grow roughly linearly with calls; the delay-aware
    ILP needs no more slots than delay-oblivious greedy packing needs for
    bandwidth alone *plus* it guarantees the delay budget, which greedy
    violates (wraps column).
    """
    frame = frame or default_frame_config()
    topology = grid_topology(3, 3)
    solver = SolverEngine()  # one cached conflict index per link set
    result = ExperimentResult(
        "E1", "minimum guaranteed slots vs offered VoIP calls (3x3 grid)",
        ["calls", "lower_bound", "ilp_slots", "ilp_max_wraps",
         "greedy_slots", "greedy_max_wraps", "ilp_feasible"])
    for count in call_counts:
        rngs = RngRegistry(seed=seed)
        flows = make_voip_flows(topology, count, rngs, codec=codec,
                                gateway=0, delay_budget_s=0.1)
        demands = flows.link_demands(frame.frame_duration_s,
                                     frame.data_slot_capacity_bits)
        conflicts = solver.conflict_index(topology, hops=2,
                                          links=demands.keys()).graph
        lower = demand_lower_bound(conflicts, demands)
        search = minimum_slots(conflicts, demands, frame.data_slots,
                               delay_constraints=delay_constraints_for(
                                   flows, frame),
                               engine=solver)
        if search.feasible:
            ilp_schedule = search.schedule
            ilp_wraps = max(path_wraps(ilp_schedule, f.route) for f in flows)
        else:
            ilp_wraps = None
        greedy = greedy_schedule(conflicts, demands)
        greedy_wraps = max(path_wraps(greedy, f.route) for f in flows)
        result.rows.append([count, lower, search.slots, ilp_wraps,
                            greedy.frame_slots, greedy_wraps,
                            search.feasible])
    return result


# ---------------------------------------------------------------------------
# E2: end-to-end scheduling delay vs hop count, per ordering policy
# ---------------------------------------------------------------------------

def e02_delay_vs_hops(hop_counts: Sequence[int] = (2, 3, 4, 5, 6, 7, 8),
                      frame_slots: int = 16,
                      frame_duration_s: float = 10 * MS) -> ExperimentResult:
    """Delay of one chain flow under four ordering policies.

    Expected shape: the delay-aware ILP and the tree ordering stay at ~one
    frame regardless of hops (zero wraps); the canonical/naive order loses
    roughly a frame every other hop; the adversarial order loses a frame
    per hop.
    """
    solver = SolverEngine()
    result = ExperimentResult(
        "E2", "end-to-end delay vs hops (chain, one flow, 10 ms frame)",
        ["hops", "ilp_ms", "tree_ms", "naive_ms", "adversarial_ms",
         "ilp_wraps", "adversarial_wraps"])
    for hops in hop_counts:
        topology = chain_topology(hops + 1)
        route = tuple((i, i + 1) for i in range(hops))
        demands = {link: 1 for link in route}
        conflicts = solver.conflict_index(topology, hops=2,
                                          links=demands.keys()).graph
        slot_ms = frame_duration_s * 1000 / frame_slots

        ilp = solver.solve(SchedulingProblem(
            conflicts, demands, frame_slots,
            delay_constraints=[DelayConstraint("f", route, frame_slots)],
            minimize_max_delay=True))
        tree = gateway_tree(topology, 0)
        schedules = {
            "ilp": ilp.schedule,
            "tree": schedule_from_order(
                conflicts, demands, frame_slots,
                min_delay_tree_order(tree, 0)),
            "naive": schedule_from_order(
                conflicts, demands, frame_slots, naive_tree_order(tree, 0)),
            "adversarial": schedule_from_order(
                conflicts, demands, frame_slots,
                adversarial_tree_order(tree, 0)),
        }
        delays_ms = {name: path_delay_slots(sched, route) * slot_ms
                     for name, sched in schedules.items()}
        result.rows.append([
            hops, delays_ms["ilp"], delays_ms["tree"], delays_ms["naive"],
            delays_ms["adversarial"],
            path_wraps(schedules["ilp"], route),
            path_wraps(schedules["adversarial"], route)])
    return result


# ---------------------------------------------------------------------------
# E3: delay vs frame duration
# ---------------------------------------------------------------------------

def e03_delay_vs_frame(frame_durations_ms: Sequence[float] = (4, 8, 10, 16,
                                                              20, 32, 40),
                       hops: int = 6,
                       frame_slots: int = 16) -> ExperimentResult:
    """Worst-case delay scales linearly with frame duration; the slope is
    (wraps + 1), so ordering quality sets the line a flow lives on."""
    topology = chain_topology(hops + 1)
    route = tuple((i, i + 1) for i in range(hops))
    demands = {link: 1 for link in route}
    conflicts = SolverEngine().conflict_index(
        topology, hops=2, links=demands.keys()).graph
    tree = gateway_tree(topology, 0)
    good = schedule_from_order(conflicts, demands, frame_slots,
                               min_delay_tree_order(tree, 0))
    bad = schedule_from_order(conflicts, demands, frame_slots,
                              adversarial_tree_order(tree, 0))
    good_slots = path_delay_slots(good, route)
    bad_slots = path_delay_slots(bad, route)

    result = ExperimentResult(
        "E3", f"delay vs frame duration ({hops}-hop chain, {frame_slots} "
        "slots/frame)",
        ["frame_ms", "min_delay_order_ms", "adversarial_order_ms",
         "worst_case_bound_ms"])
    for frame_ms in frame_durations_ms:
        slot_ms = frame_ms / frame_slots
        result.rows.append([
            frame_ms, good_slots * slot_ms, bad_slots * slot_ms,
            (path_wraps(bad, route) + 1) * frame_ms + frame_ms])
    return result


# ---------------------------------------------------------------------------
# E4: emulation overhead -- guard time vs drift and resync interval
# ---------------------------------------------------------------------------

def e04_overhead(drift_ppms: Sequence[float] = (5, 10, 20, 50),
                 resync_intervals_s: Sequence[float] = (0.1, 0.5, 1.0, 5.0,
                                                        10.0),
                 frame: Optional[MeshFrameConfig] = None) -> ExperimentResult:
    """Required guard and the slot capacity left after paying for it.

    Expected shape: guard grows linearly in drift x resync interval; the
    usable fraction of a slot falls accordingly, collapsing to zero once
    the guard approaches the slot length.
    """
    base = frame or default_frame_config()
    result = ExperimentResult(
        "E4", "guard time and usable slot fraction vs drift / resync period",
        ["drift_ppm", "resync_s", "guard_us", "overhead_frac",
         "slot_capacity_bits"])
    from repro.dot11.params import DATA_HEADER_BITS

    for drift in drift_ppms:
        for interval in resync_intervals_s:
            guard = required_guard_s(drift, interval,
                                     sync_residual_s=10 * US)
            if guard >= base.data_slot_s:
                capacity = 0
                overhead = 1.0
            else:
                mac_bits = base.phy.bits_in(base.data_slot_s - guard)
                capacity = max(0, mac_bits - DATA_HEADER_BITS
                               - base.shim_overhead_bits)
                overhead = slot_overhead_fraction(
                    base.data_slot_s, guard, base.phy.plcp_overhead_s)
            result.rows.append([drift, interval, guard * 1e6, overhead,
                                capacity])
    return result


# ---------------------------------------------------------------------------
# E5: VoIP capacity -- TDMA emulation vs DCF
# ---------------------------------------------------------------------------

def e05_voip_capacity(call_counts: Sequence[int] = (2, 4, 6, 8, 10),
                      duration_s: float = 2.0, seed: int = 11,
                      codec: VoipCodec = G729,
                      delay_target_s: float = 0.05,
                      loss_target: float = 0.02,
                      topology: Optional[MeshTopology] = None
                      ) -> ExperimentResult:
    """Calls meeting QoS targets as offered load grows.

    Expected shape: TDMA admission control caps the number of carried
    calls at the schedulability limit, and every *admitted* call meets its
    target; DCF carries all offered calls but degrades them collectively
    once contention kicks in, with a sharp knee after which almost no call
    meets the target.
    """
    topology = topology or grid_topology(3, 3)
    frame = default_frame_config()
    result = ExperimentResult(
        "E5", "VoIP calls meeting QoS (p95 delay / loss targets) vs load",
        ["offered_calls", "tdma_admitted", "tdma_ok", "dcf_ok",
         "tdma_loss", "dcf_loss", "dcf_collisions"])
    for count in call_counts:
        rngs = RngRegistry(seed=seed)
        flows = make_voip_flows(topology, count, rngs, codec=codec,
                                gateway=0, delay_budget_s=delay_target_s)
        admitted, schedule = admit_flows(topology, flows, frame)
        tdma = run_tdma_scenario(topology, admitted, frame, schedule,
                                 duration_s, rngs.spawn("tdma"),
                                 codec=codec)
        tdma_ok = sum(q.meets(max_delay_s=delay_target_s,
                              max_loss=loss_target)
                      for q in tdma.qos.values())
        dcf = run_dcf_scenario(topology, flows, duration_s,
                               rngs.spawn("dcf"), codec=codec)
        dcf_ok = sum(q.meets(max_delay_s=delay_target_s,
                             max_loss=loss_target)
                     for q in dcf.qos.values())
        result.rows.append([count, len(admitted), tdma_ok, dcf_ok,
                            tdma.total_loss_fraction(),
                            dcf.total_loss_fraction(),
                            dcf.extras["collisions"]])
    return result


# ---------------------------------------------------------------------------
# E6: delay distribution -- TDMA bounded, DCF heavy-tailed
# ---------------------------------------------------------------------------

def e06_delay_cdf(num_calls: int = 6, duration_s: float = 4.0,
                  seed: int = 13, codec: VoipCodec = G729) -> ExperimentResult:
    """Delay percentiles across all packets of all calls, per stack.

    Expected shape: the TDMA column is capped near (wraps + 1) frames and
    nearly flat from p50 to max; the DCF column spreads by orders of
    magnitude between median and tail under contention.
    """
    topology = grid_topology(3, 3)
    frame = default_frame_config()
    rngs = RngRegistry(seed=seed)
    flows = make_voip_flows(topology, num_calls, rngs, codec=codec,
                            gateway=0, delay_budget_s=0.1)
    schedule = schedule_for_flows(topology, flows, frame, method="ilp")
    tdma = run_tdma_scenario(topology, flows, frame, schedule, duration_s,
                             rngs.spawn("tdma"), codec=codec)
    dcf = run_dcf_scenario(topology, flows, duration_s, rngs.spawn("dcf"),
                           codec=codec)

    result = ExperimentResult(
        "E6", f"delay distribution, {num_calls} calls on 3x3 grid",
        ["percentile", "tdma_ms", "dcf_ms"])
    for metric in ("p50_delay_s", "p95_delay_s", "p99_delay_s",
                   "max_delay_s"):
        tdma_value = max(getattr(q, metric) for q in tdma.qos.values())
        dcf_value = max(getattr(q, metric) for q in dcf.qos.values())
        result.rows.append([metric.replace("_delay_s", ""),
                            tdma_value * 1e3, dcf_value * 1e3])
    result.notes = (f"tdma loss {tdma.total_loss_fraction():.4f}, "
                    f"dcf loss {dcf.total_loss_fraction():.4f}")
    return result


# ---------------------------------------------------------------------------
# E7: ordering policies across topologies
# ---------------------------------------------------------------------------

def e07_ordering_compare(seed: int = 17) -> ExperimentResult:
    """Max wraps over all gateway flows, per ordering policy and topology.

    Expected shape: ILP == tree algorithm == 0 wraps on trees; greedy and
    random orders wrap roughly once per hop in the worst case.  On the
    grid (non-tree routes) the ILP still reaches 0; the tree order only
    covers tree links so it is skipped there.
    """
    cases: list[tuple[str, MeshTopology]] = [
        ("chain8", chain_topology(8)),
        ("btree3", binary_tree_topology(3)),
        ("grid3x3", grid_topology(3, 3)),
    ]
    frame_slots = 24
    rngs = RngRegistry(seed=seed)
    solver = SolverEngine()
    result = ExperimentResult(
        "E7", "max wraps across gateway flows, per ordering policy",
        ["topology", "flows", "ilp", "tree", "greedy", "random"])
    for name, topology in cases:
        tree = gateway_tree(topology, 0)
        # One uplink flow from every leaf-most node to the gateway.
        leaves = [n for n in topology.nodes
                  if n != 0 and tree.out_degree(n) == 0]
        flows = FlowSet()
        for i, leaf in enumerate(leaves):
            flows.add(Flow(f"up{i}", leaf, 0, rate_bps=8000,
                           delay_budget_s=1.0))
        flows = route_all(topology, flows)
        routes = [f.route for f in flows]
        demands: dict = {}
        for route in routes:
            for link in route:
                demands[link] = demands.get(link, 0) + 1
        conflicts = solver.conflict_index(topology, hops=2,
                                          links=demands.keys()).graph

        def max_wraps(schedule) -> int:
            return max(path_wraps(schedule, route) for route in routes)

        ilp = solver.solve(SchedulingProblem(
            conflicts, demands, frame_slots,
            delay_constraints=[DelayConstraint(f"r{i}", r, 10 * frame_slots)
                               for i, r in enumerate(routes)],
            minimize_max_delay=True))
        row: list = [name, len(routes), max_wraps(ilp.schedule)]
        on_tree = all(tree.has_edge(b, a) or tree.has_edge(a, b)
                      for route in routes for a, b in route)
        if on_tree:
            tree_sched = schedule_from_order(
                conflicts, demands, frame_slots, min_delay_tree_order(tree, 0))
            row.append(max_wraps(tree_sched))
        else:
            row.append(None)
        row.append(max_wraps(greedy_schedule(conflicts, demands,
                                             frame_slots=frame_slots)))
        row.append(max_wraps(greedy_schedule(
            conflicts, demands, frame_slots=frame_slots, strategy="random",
            rng=rngs.stream(f"rand/{name}"))))
        result.rows.append(row)
    return result


# ---------------------------------------------------------------------------
# E8: synchronization error over time
# ---------------------------------------------------------------------------

def e08_sync_error(duration_s: float = 5.0, drift_ppm: float = 10.0,
                   seed: int = 19) -> ExperimentResult:
    """Max clock error vs the gateway: sync on / off / with skew discipline.

    Expected shape: without sync the error grows linearly at the drift
    rate (~drift_ppm us per second); with beacon sync it plateaus at the
    jitter-per-hop floor; skew compensation lowers the plateau further.
    Slot collisions stay zero while the error is below the guard.
    """
    topology = grid_topology(3, 3)
    frame = default_frame_config()
    rngs = RngRegistry(seed=seed)
    flows = make_voip_flows(topology, 2, rngs, codec=G729, gateway=0,
                            delay_budget_s=0.1)
    schedule = schedule_for_flows(topology, flows, frame, method="ilp")

    arms = [
        ("sync_off", SyncConfig(enabled=False)),
        ("sync_on", SyncConfig(enabled=True)),
        ("sync_skewcomp", SyncConfig(enabled=True, skew_compensation=True)),
    ]
    result = ExperimentResult(
        "E8", f"max sync error vs gateway over {duration_s:.0f}s "
        f"(3x3 grid, {drift_ppm:.0f} ppm)",
        ["arm", "max_error_us", "final_error_us", "slot_collisions",
         "guard_us"])
    for name, sync_config in arms:
        run = run_tdma_scenario(
            topology, flows, frame, schedule, duration_s,
            RngRegistry(seed=seed).spawn(name), drift_ppm=drift_ppm,
            sync_config=sync_config, codec=G729)
        samples = run.extras["sync_error_samples"]
        result.rows.append([
            name, run.extras["max_sync_error_s"] * 1e6,
            (samples[-1] * 1e6) if samples else 0.0,
            run.extras["slot_collisions"], frame.guard_s * 1e6])
    return result


# ---------------------------------------------------------------------------
# E9: goodput efficiency vs slot length
# ---------------------------------------------------------------------------

def e09_goodput_efficiency(slot_durations_us: Sequence[float] = (300, 400,
                                                                 525, 800,
                                                                 1200, 2000),
                           guard_us: float = 60.0) -> ExperimentResult:
    """Fraction of raw channel rate delivered as payload, per slot length.

    Expected shape: efficiency rises with slot length (fixed guard + PLCP
    amortized over more payload), asymptoting to ~1 - small residual; very
    short slots are dominated by overhead, quantifying why the emulation
    cannot use 802.16-sized minislots directly on WiFi PHYs.
    """
    frame_ms = 10.0
    phy = default_frame_config().phy
    result = ExperimentResult(
        "E9", "TDMA slot efficiency vs slot duration (802.11b, 60 us guard)",
        ["slot_us", "data_slots_per_frame", "capacity_bits",
         "efficiency", "overhead_frac"])
    for slot_us in slot_durations_us:
        slot_s = slot_us * US
        data_slots = int((frame_ms * MS - 4 * 400 * US) / slot_s)
        if data_slots < 1:
            continue
        config = MeshFrameConfig(
            frame_duration_s=4 * 400 * US + data_slots * slot_s,
            control_slots=4, control_slot_s=400 * US,
            data_slots=data_slots, guard_s=guard_us * US, phy=phy)
        result.rows.append([
            slot_us, data_slots, config.data_slot_capacity_bits,
            config.slot_efficiency,
            slot_overhead_fraction(config.data_slot_s, config.guard_s,
                                   phy.plcp_overhead_s)])
    return result


# ---------------------------------------------------------------------------
# E10: solver scaling
# ---------------------------------------------------------------------------

def e10_solver_scaling(grid_sizes: Sequence[tuple[int, int]] = ((2, 2),
                                                                (2, 3),
                                                                (3, 3),
                                                                (3, 4)),
                       seed: int = 23) -> ExperimentResult:
    """ILP size/time vs network size; Bellman-Ford recovery cost.

    Expected shape: ILP time grows quickly with links (binary order
    variables are quadratic in conflicting links); the Bellman-Ford
    recovery from a fixed order stays in the millisecond range -- the
    reason the paper advocates order-then-recover over re-solving.

    The warm arm reruns both searches through one fresh
    :class:`~repro.core.engine.SolverEngine`, seeding the binary search
    with the linear winner's order: Bellman-Ford certifies every probe
    the cold arm paid an ILP for, and the canonical re-solve of the
    winner hits the problem cache.  ``warm_identical`` asserts the
    engine contract -- identical slots, probe log and schedule table.
    """
    import time as time_mod

    frame = default_frame_config()
    result = ExperimentResult(
        "E10", "scheduler cost vs mesh size (gateway VoIP workload)",
        ["grid", "links_demanded", "ilp_vars", "ilp_seconds",
         "bf_seconds", "min_slots", "linear_probes", "binary_probes",
         "cold_ilp_solves", "warm_ilp_solves", "bf_shortcuts",
         "warm_identical"])
    for rows_, cols in grid_sizes:
        topology = grid_topology(rows_, cols)
        rngs = RngRegistry(seed=seed)
        flows = make_voip_flows(topology, max(2, rows_ * cols // 2), rngs,
                                codec=G729, gateway=0, delay_budget_s=0.1)
        demands = flows.link_demands(frame.frame_duration_s,
                                     frame.data_slot_capacity_bits)
        cold = SolverEngine(warm_start=False, max_indexes=0, max_problems=0)
        conflicts = cold.conflict_index(topology, hops=2,
                                        links=demands.keys()).graph
        problem = SchedulingProblem(
            conflicts, demands, frame.data_slots,
            delay_constraints=delay_constraints_for(flows, frame),
            minimize_max_delay=True)
        ilp = cold.solve(problem)
        order = ilp.order
        started = time_mod.perf_counter()
        schedule_from_order(conflicts, demands, frame.data_slots, order)
        bf_seconds = time_mod.perf_counter() - started
        constraints = delay_constraints_for(flows, frame)
        linear = minimum_slots(conflicts, demands, frame.data_slots,
                               delay_constraints=constraints, engine=cold)
        binary = minimum_slots(conflicts, demands, frame.data_slots,
                               delay_constraints=constraints,
                               search="binary", engine=cold)
        assert binary.slots == linear.slots  # both searches are exact

        warm = SolverEngine()
        warm_linear = minimum_slots(conflicts, demands, frame.data_slots,
                                    delay_constraints=constraints,
                                    engine=warm)
        warm_binary = minimum_slots(conflicts, demands, frame.data_slots,
                                    delay_constraints=constraints,
                                    search="binary", engine=warm,
                                    warm_order=warm_linear.order)
        warm_identical = (
            warm_linear.slots == linear.slots
            and warm_binary.slots == binary.slots
            and warm_linear.probes == linear.probes
            and warm_binary.probes == binary.probes
            and warm_linear.schedule.to_dict() == linear.schedule.to_dict()
            and warm_binary.schedule.to_dict()
            == binary.schedule.to_dict())
        result.rows.append([
            f"{rows_}x{cols}", len(demands), ilp.num_variables,
            ilp.solve_seconds, bf_seconds, linear.slots,
            linear.iterations, binary.iterations,
            linear.iterations + binary.iterations,
            warm.stats["ilp_solves"], warm.stats["bf_shortcuts"],
            warm_identical])
    return result


# ---------------------------------------------------------------------------
# E11: spatial reuse under the k-hop conflict model
# ---------------------------------------------------------------------------

def e11_spatial_reuse(chain_lengths: Sequence[int] = (4, 6, 8, 10, 12, 16),
                      ) -> ExperimentResult:
    """Slots needed for all-links demand on chains, 1-hop vs 2-hop model.

    Expected shape: required slots saturate (at ~3 for 1-hop, ~4-5 for
    2-hop) once the chain outgrows the conflict distance, while total
    demand keeps growing linearly: the schedule reuses slots spatially,
    and utilization (demand/slots) exceeds 1.
    """
    solver = SolverEngine()
    result = ExperimentResult(
        "E11", "slots for all-links demand on chains: spatial reuse",
        ["chain_nodes", "directed_links", "slots_1hop", "slots_2hop",
         "utilization_2hop"])
    for n in chain_lengths:
        topology = chain_topology(n)
        demands = {link: 1 for link in topology.links}
        slots = {}
        for hops in (1, 2):
            conflicts = solver.conflict_index(topology, hops=hops).graph
            search = minimum_slots(conflicts, demands,
                                   frame_slots=len(demands),
                                   engine=solver)
            slots[hops] = search.slots
        result.rows.append([
            n, len(demands), slots[1], slots[2],
            len(demands) / slots[2] if slots[2] else float("nan")])
    return result


# ---------------------------------------------------------------------------
# E12: VoIP MOS at and over the DCF knee
# ---------------------------------------------------------------------------

def e12_voip_mos(call_counts: Sequence[int] = (4, 8), duration_s: float = 2.0,
                 seed: int = 29, codec: VoipCodec = G729) -> ExperimentResult:
    """Worst-call E-model MOS per stack at moderate and heavy load.

    Expected shape: TDMA (with admission control) keeps every *admitted*
    call near the codec's intrinsic MOS ceiling; DCF's worst call collapses
    below 3.0 ("many users dissatisfied") once past the knee.
    """
    topology = grid_topology(3, 3)
    frame = default_frame_config()
    result = ExperimentResult(
        "E12", "worst-call MOS (E-model), TDMA emulation vs DCF",
        ["offered_calls", "tdma_admitted", "tdma_worst_mos", "dcf_worst_mos",
         "tdma_mean_mos", "dcf_mean_mos"])
    for count in call_counts:
        rngs = RngRegistry(seed=seed)
        flows = make_voip_flows(topology, count, rngs, codec=codec,
                                gateway=0, delay_budget_s=0.1)
        admitted, schedule = admit_flows(topology, flows, frame)
        tdma = run_tdma_scenario(topology, admitted, frame, schedule,
                                 duration_s, rngs.spawn("tdma"), codec=codec)
        dcf = run_dcf_scenario(topology, flows, duration_s,
                               rngs.spawn("dcf"), codec=codec)
        tdma_mos = [q.mos(codec) for q in tdma.qos.values()]
        dcf_mos = [q.mos(codec) for q in dcf.qos.values()]
        result.rows.append([
            count, len(admitted), min(tdma_mos), min(dcf_mos),
            sum(tdma_mos) / len(tdma_mos), sum(dcf_mos) / len(dcf_mos)])
    return result


# ---------------------------------------------------------------------------
# E13: channel errors -- ARQ-less TDMA vs DCF's MAC-layer ARQ
# ---------------------------------------------------------------------------

def e13_channel_errors(error_rates: Sequence[float] = (0.0, 0.01, 0.03,
                                                       0.05, 0.10),
                       num_calls: int = 3, duration_s: float = 2.0,
                       seed: int = 31, codec: VoipCodec = G729
                       ) -> ExperimentResult:
    """Loss and delay under random channel errors, per stack.

    The plain emulated TDMA MAC has no ARQ (broadcast frames are never
    acknowledged), so per-hop channel error rate p compounds to
    ~1-(1-p)^hops end-to-end loss; DCF retransmits and converts most
    channel errors into extra delay instead.  The third arm runs the
    slot-level-ARQ extension (the paper line's future-work item): receivers
    micro-ACK every fragment inside its slot and unacked fragments retry in
    the link's next slot, recovering the loss at a bounded, schedule-shaped
    delay cost.
    """
    topology = grid_topology(3, 3)
    frame = default_frame_config()
    result = ExperimentResult(
        "E13", "VoIP loss/delay vs channel error rate "
        "(TDMA / TDMA+slot-ARQ / DCF)",
        ["per_hop_error", "tdma_loss", "tdma_arq_loss", "dcf_loss",
         "tdma_p95_ms", "tdma_arq_p95_ms", "dcf_p95_ms", "arq_retx",
         "dcf_retries"])
    rngs0 = RngRegistry(seed=seed)
    flows = make_voip_flows(topology, num_calls, rngs0, codec=codec,
                            gateway=0, delay_budget_s=0.1, min_hops=2)
    schedule = schedule_for_flows(topology, flows, frame, method="ilp")
    # The ARQ arm pays the PLCP preamble twice per slot, so it runs on a
    # coarser frame (8 fat slots instead of 16) whose per-slot capacity
    # still fits a whole VoIP packet beside the micro-ACK.
    arq_frame = default_frame_config(data_slots=8)
    arq_schedule = schedule_for_flows(topology, flows, arq_frame,
                                      method="ilp")
    for rate in error_rates:
        rngs = RngRegistry(seed=seed)
        tdma = run_tdma_scenario(topology, flows, frame, schedule,
                                 duration_s, rngs.spawn("tdma"),
                                 codec=codec, channel_error_rate=rate)
        tdma_arq = run_tdma_scenario(topology, flows, arq_frame,
                                     arq_schedule,
                                     duration_s, rngs.spawn("tdma"),
                                     codec=codec, channel_error_rate=rate,
                                     arq=True)
        dcf = run_dcf_scenario(topology, flows, duration_s,
                               rngs.spawn("dcf"), codec=codec,
                               channel_error_rate=rate)
        result.rows.append([
            rate, tdma.total_loss_fraction(),
            tdma_arq.total_loss_fraction(), dcf.total_loss_fraction(),
            max(q.p95_delay_s for q in tdma.qos.values()) * 1e3,
            max(q.p95_delay_s for q in tdma_arq.qos.values()) * 1e3,
            max(q.p95_delay_s for q in dcf.qos.values()) * 1e3,
            tdma_arq.extras["arq_retransmissions"],
            dcf.trace.count("mac.retry")])
    return result


# ---------------------------------------------------------------------------
# E14: distributed (DSCH handshake) vs centralized (ILP) scheduling
# ---------------------------------------------------------------------------

def e14_distributed_vs_centralized() -> ExperimentResult:
    """Slots and signalling cost: local negotiation vs global ILP.

    The distributed handshake works against exact interference (it only
    protects receivers it can actually disturb), so it can pack *tighter*
    than the conservative 2-hop centralized model on sparse demands -- but
    it cannot backtrack, so on loaded frames it strands demand the ILP
    would have served.  Three messages per link is its fixed signalling
    price; the ILP's price is central computation (E10).
    """
    from repro.mesh16.distributed import DistributedScheduler

    cases = [
        ("chain6/all", chain_topology(6), None),
        ("grid3x3/all", grid_topology(3, 3), None),
        ("btree3/all", binary_tree_topology(3), None),
    ]
    solver = SolverEngine()
    result = ExperimentResult(
        "E14", "distributed DSCH handshake vs centralized ILP",
        ["case", "links", "central_slots", "distributed_makespan",
         "served", "messages", "opportunities"])
    for name, topology, ____ in cases:
        demands = {link: 1 for link in topology.links}
        conflicts = solver.conflict_index(topology, hops=2).graph
        frame = 2 * len(demands)
        # binary search with a probe budget: all-links instances make the
        # infeasible probes near the optimum expensive, and a near-optimal
        # central answer is enough for the comparison
        central = minimum_slots(conflicts, demands, frame, search="binary",
                                time_limit_per_probe=5.0, engine=solver)
        outcome = DistributedScheduler(topology, frame, max_cycles=32,
                                       engine=solver).run(demands)
        result.rows.append([
            name, len(demands), central.slots,
            outcome.schedule.makespan(),
            f"{len(demands) - len(outcome.unserved)}/{len(demands)}",
            outcome.messages, outcome.opportunities_used])
    return result


# ---------------------------------------------------------------------------
# E15: control-plane ablation -- roster vs distributed mesh election
# ---------------------------------------------------------------------------

def e15_control_plane(duration_s: float = 3.0, drift_ppm: float = 10.0,
                      seed: int = 37) -> ExperimentResult:
    """Synchronization quality under the two control-plane designs.

    The deterministic roster gives every node a turn in strict rotation;
    distributed election (802.16's actual mechanism) decentralizes
    ownership at the cost of holdoff-idled opportunities, recovering some
    density through control-slot *reuse* where the topology allows it.
    Expected shape: decentralization costs beacon density (the roster
    packs every opportunity; election idles some during holdoffs, with the
    sparse chain recovering more than the compact grid), but NOT sync
    quality -- both arms hold the mesh an order of magnitude under the
    guard with zero control collisions and zero loss.
    """
    from repro.mesh16.election import ElectionControlPlane
    from repro.mesh16.network import ControlPlane
    from repro.net.forwarding import SourceRoutedForwarder  # noqa: F401

    frame = default_frame_config()
    result = ExperimentResult(
        "E15", "control plane: roster vs distributed election "
        f"({drift_ppm:.0f} ppm, {duration_s:.0f}s)",
        ["topology", "plane", "max_sync_error_us", "beacons_sent",
         "beacons_per_s", "control_collisions", "voip_loss"])

    cases = [("grid3x3", grid_topology(3, 3)),
             ("chain10", chain_topology(10))]
    arms = [("roster", ControlPlane), ("election", ElectionControlPlane)]
    for topo_name, topology in cases:
        rngs0 = RngRegistry(seed=seed)
        flows = make_voip_flows(topology, 2, rngs0, codec=G729, gateway=0,
                                delay_budget_s=0.1)
        schedule = schedule_for_flows(topology, flows, frame)
        for label, plane_cls in arms:
            # run_tdma_scenario builds its own roster plane, so assemble this
            # run manually to swap the control plane implementation
            from repro.overlay.emulation import TdmaOverlay
            from repro.overlay.sync import SyncConfig, SyncDaemon
            from repro.phy.channel import BroadcastChannel
            from repro.sim.clock import DriftingClock
            from repro.sim.engine import Simulator
            from repro.sim.trace import Trace
            from repro.traffic.sink import SinkRegistry
            from repro.traffic.sources import CbrSource
            from repro.units import ppm as ppm_ratio

            rngs = RngRegistry(seed=seed).spawn(label)
            sim = Simulator()
            trace = Trace(capacity=100_000)
            channel = BroadcastChannel(sim, topology, frame.phy, trace)
            clocks, daemons = {}, {}
            for node in topology.nodes:
                skew = 0.0 if node == 0 else float(
                    rngs.stream(f"k{node}").uniform(-ppm_ratio(drift_ppm),
                                                    ppm_ratio(drift_ppm)))
                clocks[node] = DriftingClock(skew=skew)
                daemons[node] = SyncDaemon(node, 0, clocks[node], SyncConfig(),
                                           rngs.stream(f"s{node}"), trace)
            sinks = SinkRegistry()
            overlay = TdmaOverlay(
                sim, topology, channel, frame,
                plane_cls(topology, 0, frame), schedule, clocks, daemons,
                on_packet=lambda n, p: forwarder.packet_arrived(n, p, sim.now),
                trace=trace)
            forwarder = SourceRoutedForwarder(overlay, sinks.on_delivered,
                                              trace)
            sources = {
                flow.name: CbrSource.for_codec(sim, flow, forwarder.originate,
                                               G729, stop_s=duration_s)
                for flow in flows}
            overlay.start()
            errors = []

            def sample(overlay=overlay, errors=errors):
                errors.append(overlay.max_sync_error_s())
                if sim.now + 0.1 < duration_s:
                    sim.schedule(0.1, sample)

            sim.schedule(0.05, sample)
            sim.run(until=duration_s + 0.2)

            sent = sum(s.sent for s in sources.values())
            received = sum(sinks.sink(name).received for name in sources)
            beacons = trace.count("sync.beacon")
            control_collisions = sum(
                1 for r in trace.records("tdma.rx_corrupt")
                if r["kind"] in ("beacon", "control"))
            result.rows.append([
                topo_name, label, max(errors) * 1e6 if errors else 0.0,
                beacons, beacons / duration_s, control_collisions,
                1.0 - received / sent if sent else 0.0])
    return result


# ---------------------------------------------------------------------------
# E16: multi-service -- best-effort capacity left over vs guaranteed load
# ---------------------------------------------------------------------------

def e16_two_class(call_counts: Sequence[int] = (0, 1, 2, 3, 4, 5, 6),
                  seed: int = 41, codec: VoipCodec = G711
                  ) -> ExperimentResult:
    """Best-effort slots remaining as the guaranteed class grows.

    The NET-COOP multi-service picture: each admitted VoIP call enlarges
    the minimum guaranteed region, squeezing the elastic class.  Expected
    shape: the best-effort grant fraction decreases monotonically (to 0 as
    the region approaches the frame), while every guaranteed call keeps a
    feasible delay-bounded schedule.
    """
    from repro.qos import ServiceClass, ServiceFlow, ServiceFlowSet
    from repro.qos.planner import schedule_service_classes

    topology = grid_topology(3, 3)
    frame = default_frame_config()
    # a constant elastic backlog: bulk transfers on two cross-mesh routes
    bulk = route_all(topology, FlowSet([
        Flow("bulk0", 6, 2, rate_bps=800_000),
        Flow("bulk1", 2, 6, rate_bps=800_000),
    ]))
    be_demands = bulk.link_demands(frame.frame_duration_s,
                                   frame.data_slot_capacity_bits)
    solver = SolverEngine()

    result = ExperimentResult(
        "E16", "best-effort capacity vs guaranteed VoIP load (3x3 grid)",
        ["calls", "guaranteed_region", "be_region", "be_slots_granted",
         "be_grant_fraction"])
    for count in call_counts:
        rngs = RngRegistry(seed=seed)
        voip = make_voip_flows(topology, count, rngs, codec=codec,
                               gateway=0, delay_budget_s=0.1)
        # the two legacy classes expressed as 802.16 service flows:
        # delay-bounded VoIP is rtPS, the elastic bulk transfers are BE
        service = ServiceFlowSet(
            [ServiceFlow.from_flow(f, ServiceClass.RTPS) for f in voip]
            + [ServiceFlow.from_flow(f, ServiceClass.BE) for f in bulk])
        g_demands = service.guaranteed_flow_set().link_demands(
            frame.frame_duration_s, frame.data_slot_capacity_bits)
        all_links = set(g_demands) | set(be_demands)
        conflicts = solver.conflict_index(topology, hops=2,
                                          links=all_links).graph
        try:
            two = schedule_service_classes(conflicts, service, frame)
        except InfeasibleScheduleError:
            result.rows.append([count, None, None, None, None])
            continue
        result.rows.append([
            count, two.guaranteed_region, two.best_effort_region,
            sum(two.best_effort_grants.values()),
            two.grant_fraction(be_demands)])
    return result


def e17_churn(churn_rates: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
              num_calls: int = 3, horizon_s: float = 240.0,
              seed: int = 43, codec: VoipCodec = G729) -> ExperimentResult:
    """Repair-vs-resolve convergence and guarantee compliance under churn.

    A 3x3 gateway mesh carries VoIP calls while a seeded Poisson fault plan
    (:class:`repro.faults.FaultPlan`) kills links and non-gateway nodes at
    ``churn_rate`` events/minute and recovers them after an exponential
    downtime.  Every topology event is pushed through the
    :class:`repro.faults.FaultInjector` into the online
    :class:`repro.core.repair.RepairEngine`; for each event the table
    accounts the convergence window of the strategy actually used against
    the full-re-solve baseline (:meth:`RepairEngine.peek_resolve`).

    Convergence windows are counted in *frames*, the natural deterministic
    unit (wall-clock would break bitwise reproducibility across --jobs):
    one frame per ILP probe (E10 measures probes at seconds each, so one
    frame per probe *under*-states the re-solve's cost), plus the
    distribution flood margin ``depth * ceil(nodes / control_slots) + 1``
    from :mod:`repro.overlay.distribution`, plus one frame-boundary
    activation.  A local Bellman-Ford repair spends zero probes, so its
    window is strictly smaller whenever a detour exists.  Lost packets are
    the affected flows' packets due during the window.  After every event
    the live schedule must pass the S8 conflict validator and every carried
    call the S30 guarantee checker -- the ``conflict_ok``/``guarantee_ok``
    columns assert the paper's claim survives the churn.
    """
    gateway = 0
    frame = default_frame_config()
    result = ExperimentResult(
        "E17", "schedule repair vs full re-solve under fault churn "
        "(3x3 gateway mesh)",
        ["churn_per_min", "events", "local", "resolve", "repair_frames",
         "resolve_frames", "lost_repair", "lost_resolve", "parked",
         "conflict_ok", "guarantee_ok"])

    def flood_margin(alive: MeshTopology) -> int:
        depth = max((alive.hop_distance(gateway, n) for n in alive.nodes
                     if n != gateway), default=1)
        return depth * math.ceil(alive.num_nodes()
                                 / frame.control_slots) + 1

    for rate in churn_rates:
        rngs = RngRegistry(seed=seed)
        topology = grid_topology(3, 3)
        flows = make_voip_flows(topology, num_calls, rngs, codec=codec,
                                gateway=gateway, delay_budget_s=0.1,
                                min_hops=2)
        engine = RepairEngine(topology, frame, gateway=gateway)
        engine.install(flows)
        per_s = rate / 60.0
        plan = FaultPlan.stochastic(
            topology, rngs.stream("faults/plan"), horizon_s,
            node_crash_rate=0.3 * per_s, link_down_rate=0.7 * per_s,
            mean_downtime_s=10.0, protect_nodes=[gateway])
        injector = FaultInjector(plan, topology, listeners=[engine])

        events = local = resolve = parked = 0
        repair_frames: list[int] = []
        resolve_frames: list[int] = []
        lost_repair = lost_resolve = 0
        conflict_ok = guarantee_ok = True
        for event in injector.plan:
            injector.apply(event)
            outcome = engine.history[-1]
            if not outcome.changed:
                continue
            events += 1
            parked += len(outcome.parked)
            margin = flood_margin(engine.alive)
            baseline_probes = max(1, engine.peek_resolve().iterations)
            frames_resolve = 1 + baseline_probes + margin
            if outcome.strategy == "local":
                local += 1
                frames_repair = 1 + margin
            else:
                resolve += 1
                frames_repair = 1 + max(1, outcome.ilp_probes) + margin
            repair_frames.append(frames_repair)
            resolve_frames.append(frames_resolve)
            affected = len(set(outcome.rerouted) | set(outcome.parked)
                           | set(outcome.readmitted))
            per_window = lambda frames: affected * math.ceil(
                frames * frame.frame_duration_s / codec.packet_interval_s)
            lost_repair += per_window(frames_repair)
            lost_resolve += per_window(frames_resolve)
            # criterion (b): the live schedule stays conflict-free and
            # every carried call keeps its guarantee after every event
            # (through the repair engine's own conflict-index cache)
            conflicts = engine.engine.conflict_index(
                engine.alive, hops=engine.hops,
                links=engine.schedule.links()).graph
            conflict_ok &= not engine.schedule.violations(conflicts)
            for flow in engine.carried_flows:
                if flow.delay_budget_s is None:
                    continue
                report = check_guarantees(engine.schedule, flow, frame,
                                          codec.packet_bits)
                guarantee_ok &= report.meets_budget(flow.delay_budget_s)
        mean = lambda xs: round(sum(xs) / len(xs), 2) if xs else 0.0
        result.rows.append([
            rate, events, local, resolve, mean(repair_frames),
            mean(resolve_frames), lost_repair, lost_resolve, parked,
            conflict_ok, guarantee_ok])
    result.notes = ("repair_frames/resolve_frames are mean convergence "
                    "windows (compute + flood + activation) in frames; "
                    "windows use one frame per ILP probe, an underestimate "
                    "of the re-solve's real cost (E10)")
    return result


# ---------------------------------------------------------------------------
# E18: control-frame loss -- resilient dissemination vs fire-and-forget
# ---------------------------------------------------------------------------

def e18_control_loss(loss_rates: Sequence[float] = (0.0, 0.1, 0.2, 0.3),
                     duration_s: float = 6.0, drift_ppm: float = 50.0,
                     seed: int = 53) -> ExperimentResult:
    """Schedule safety under a lossy control subframe (S33).

    A 3x3 gateway mesh runs the full emulation while control receptions
    (beacons and MSH-DSCH announcements) are dropped at an ambient
    ``loss_rate``, and a scripted ``control_loss`` fault additionally
    blacks out the victim corner node's links (rate 0.999) for two
    seconds mid-run.  The victim's oscillator is pinned at exactly
    ``+drift_ppm`` so its clock walks away from the gateway at the worst
    admissible rate while beacons cannot reach it.  Against this the
    gateway floods three schedule versions whose pairwise unions
    *conflict*, so any node stranded on a stale map transmits into the
    new map's slots.

    Each loss rate runs two arms.  The **resilient** arm enables the S33
    machinery: implicit-ack coverage commit with epoch re-floods and
    make-before-break transition versions in the distributor, plus the
    :class:`~repro.resilience.health.HealthMonitor`'s guard widening and
    fail-safe mute in the MAC.  The **legacy** arm is the pre-S33
    fire-and-forget flood with no health gating.  Every 20 ms the union
    of the slot maps actually being executed is checked with the S8
    conflict validator, and every transmission is checked against the
    gateway-clock slot boundaries (``overlay.guard_violations``).
    Expected shape: the resilient arm holds **zero** S8 violations and
    zero guard violations at every loss rate (the victim widens its
    guard, then mutes, and the make-before-break construction keeps
    every concurrently applied pair of maps conflict-free by
    construction); the legacy arm desyncs -- stale maps collide and the
    drifted victim transmits outside its slots.  The distributed-mode
    handshake (E14) is re-run at the same loss rate as a side table:
    retries grow with loss but the outcome stays conflict-free and
    fully served.
    """
    from repro.core.schedule import Schedule, SlotBlock
    from repro.faults.events import FaultEvent
    from repro.mesh16.distributed import DistributedScheduler
    from repro.mesh16.network import ControlPlane
    from repro.net.forwarding import SourceRoutedForwarder
    from repro.overlay.distribution import ScheduleDistributor
    from repro.overlay.emulation import TdmaOverlay
    from repro.overlay.sync import SyncConfig, SyncDaemon
    from repro.phy.channel import BroadcastChannel
    from repro.resilience import HealthMonitor, ResilienceConfig
    from repro.sim.clock import DriftingClock
    from repro.sim.engine import Simulator
    from repro.sim.trace import Trace
    from repro.traffic.sink import SinkRegistry
    from repro.traffic.sources import CbrSource
    from repro.units import ppm as ppm_ratio
    from repro import obs as obs_api

    gateway, victim = 0, 8
    topology = grid_topology(3, 3)
    frame = default_frame_config()
    codec = G729
    flows = route_all(topology, FlowSet([
        Flow("up8", victim, gateway, rate_bps=codec.wire_rate_bps,
             delay_budget_s=0.1),
        Flow("dn4", gateway, 4, rate_bps=codec.wire_rate_bps,
             delay_budget_s=0.1),
    ]))
    schedule_a = schedule_for_flows(topology, flows, frame, method="greedy")
    # A deliberately conflicting sibling: same links, blocks shifted, so
    # the union of the two maps violates the conflict graph and a node
    # stranded on one while neighbours run the other transmits into them.
    shift = 2
    schedule_b = Schedule(frame.data_slots)
    for link, block in schedule_a.items():
        schedule_b.assign(link, SlotBlock(
            (block.start + shift) % (frame.data_slots - block.length + 1),
            block.length))
    all_links = set(dict(schedule_a.items())) | set(dict(schedule_b.items()))
    conflicts = SolverEngine().conflict_index(topology, hops=2,
                                              links=all_links).graph

    blackout_links = [tuple(sorted((victim, n)))
                      for n in topology.neighbors(victim)]
    result = ExperimentResult(
        "E18", "control-frame loss: resilient dissemination vs "
        f"fire-and-forget ({drift_ppm:.0f} ppm victim, "
        "2 s blackout, conflicting floods)",
        ["loss_rate", "resilient", "mixed_samples", "s8_violations",
         "guard_violations", "mute_events", "commits", "refloods",
         "stale_rejected", "transitions", "mean_commit_s",
         "stale_nodes_end", "dsch16_retries", "dsch16_unserved"])

    for loss in loss_rates:
        # the distributed handshake under the same per-leg loss (E14 redux)
        demands = {link: 1 for link in sorted(topology.links)[::3]}
        dsch16 = DistributedScheduler(
            topology, frame.data_slots, max_cycles=64,
            loss_rate=loss, seed=seed + 1).run(demands)

        for resilient in (True, False):
            label = "resilient" if resilient else "legacy"
            rngs = RngRegistry(seed=seed).spawn(f"r{loss}/{label}")
            sim = Simulator()
            trace = Trace(capacity=200_000)
            channel = BroadcastChannel(sim, topology, frame.phy, trace)
            channel.set_control_error_model(rngs.stream("control_loss"),
                                            default_error_rate=loss)
            clocks, daemons = {}, {}
            for node in topology.nodes:
                skew = 0.0 if node == gateway else float(
                    rngs.stream(f"k{node}").uniform(
                        -ppm_ratio(drift_ppm), ppm_ratio(drift_ppm)))
                if node == victim:
                    skew = ppm_ratio(drift_ppm)  # worst admissible drift
                clocks[node] = DriftingClock(skew=skew)
                daemons[node] = SyncDaemon(node, gateway, clocks[node],
                                           SyncConfig(),
                                           rngs.stream(f"s{node}"), trace)
            rcfg = ResilienceConfig(drift_bound_ppm=drift_ppm,
                                    sync_residual_s=20 * US,
                                    reflood_interval_frames=8,
                                    mute_guard_multiple=2.0)
            health = (HealthMonitor(frame, rcfg, root=gateway, trace=trace)
                      if resilient else None)
            sinks = SinkRegistry()
            overlay = TdmaOverlay(
                sim, topology, channel, frame,
                ControlPlane(topology, gateway, frame), schedule_a,
                clocks, daemons,
                on_packet=lambda n, p: forwarder.packet_arrived(n, p,
                                                                sim.now),
                trace=trace, health=health)
            forwarder = SourceRoutedForwarder(overlay, sinks.on_delivered,
                                              trace)
            distributor = ScheduleDistributor(
                overlay, gateway, rebroadcasts=2,
                resilience=rcfg if resilient else None,
                conflicts=conflicts if resilient else None)
            overlay.attach_distributor(distributor)
            for flow in flows:
                CbrSource.for_codec(sim, flow, forwarder.originate, codec,
                                    stop_s=duration_s)
            overlay.start()

            def announce(sched, at_s):
                target = int(at_s / frame.frame_duration_s) + 15
                sim.schedule_at(at_s, lambda: distributor.announce(sched,
                                                                   target))

            announce(schedule_b, 1.0)
            announce(schedule_a, 2.0)   # mid-blackout: must not strand
            announce(schedule_b, 4.5)
            plan = FaultPlan.scripted(
                [FaultEvent(at_s=1.5, kind="control_loss", link=link,
                            value=0.999) for link in blackout_links]
                + [FaultEvent(at_s=3.5, kind="control_loss", link=link,
                              value=loss) for link in blackout_links],
                topology=topology)
            FaultInjector(plan, topology, sim=sim, channel=channel).arm()

            mixed_samples = 0
            s8_violations = 0

            def sample():
                nonlocal mixed_samples, s8_violations
                executed = Schedule(frame.data_slots)
                versions = set()
                for node in topology.nodes:
                    if channel.node_is_down(node):
                        continue
                    versions.add(distributor.applied_version[node])
                    for link, block in distributor.applied_assignments[node]:
                        if link[0] == node:
                            executed.assign(link, block)
                if len(versions) > 1:
                    mixed_samples += 1
                s8_violations += len(executed.violations(conflicts))
                if sim.now + 0.02 < duration_s:
                    sim.schedule(0.02, sample)

            sim.schedule(0.5, sample)
            with obs_api.use_registry(obs_api.MetricsRegistry()) as registry:
                sim.run(until=duration_s + 0.2)
            counters = registry.snapshot()["counters"]
            commit_lags = [distributor.commit_times[v]
                           - distributor.announce_times[v]
                           for v in distributor.commit_times
                           if v in distributor.announce_times]
            top_version = max(distributor.applied_version.values())
            stale_end = sum(
                1 for node in topology.nodes
                if not channel.node_is_down(node)
                and distributor.applied_version[node] < top_version)
            result.rows.append([
                loss, resilient, mixed_samples, s8_violations,
                counters.get("overlay.guard_violations", 0),
                counters.get("resilience.mute_events", 0),
                counters.get("resilience.dsch.commits", 0),
                counters.get("resilience.dsch.refloods", 0),
                counters.get("resilience.dsch.stale_rejected", 0),
                counters.get("resilience.dsch.transition_versions", 0),
                round(sum(commit_lags) / len(commit_lags), 3)
                if commit_lags else 0.0,
                stale_end, dsch16.retries, len(dsch16.unserved)])
    result.notes = ("mixed_samples counts 20 ms instants with >1 applied "
                    "version on air (expected >0 in BOTH arms during "
                    "floods; safe only when the union stays conflict-free); "
                    "s8_violations sums conflict-validator hits over the "
                    "executed union maps")
    return result


def _e19_workload(frame: MeshFrameConfig):
    """The mixed-class saturating workload E19 runs (3-node chain).

    Rates are expressed in data-slot units (one slot-grant per frame
    carries ``data_slot_capacity_bits``), so the load pattern is exact
    regardless of the PHY behind the frame config.  The mix is the one
    the WiMAX scheduling studies use: VoIP (UGS), bursty video above its
    reservation (rtPS), a rate-floored stream (nrtPS), and saturating
    bulk transfers (BE) -- total ask well beyond the 16-slot frame.
    """
    from repro.qos import ServiceClass, ServiceFlow, ServiceFlowSet, \
        TrafficContract

    cap = frame.data_slot_capacity_bits
    slot_rate = cap / frame.frame_duration_s

    def make(name, src, cls, min_slots, sustained_slots, latency=None,
             jitter=None, pkt=None):
        contract = TrafficContract(
            min_reserved_rate_bps=min_slots * slot_rate,
            max_sustained_rate_bps=(None if sustained_slots is None
                                    else sustained_slots * slot_rate),
            max_latency_s=latency, tolerated_jitter_s=jitter)
        return ServiceFlow(name, src, 0, cls, contract,
                           packet_bits=pkt if pkt else cap)

    return ServiceFlowSet([
        make("voip0", 1, ServiceClass.UGS, 2, 2, latency=0.05,
             jitter=0.02, pkt=cap // 2),
        make("video0", 2, ServiceClass.RTPS, 2, 4, latency=0.1),
        make("stream0", 1, ServiceClass.NRTPS, 1, 2),
        make("bulk0", 2, ServiceClass.BE, 0, 4, pkt=cap // 2),
        make("bulk1", 1, ServiceClass.BE, 0, 4),
    ])


def e19_scheduler_bakeoff(disciplines: Sequence[str] = ("strict", "wrr",
                                                        "drr", "edf"),
                          num_frames: int = 400) -> ExperimentResult:
    """Intra-node scheduler bake-off over a mixed-class saturating load.

    A 3-node chain toward the gateway carries all four 802.16 classes;
    the grant schedule reserves the guaranteed minimums and water-fills
    the leftover toward the (over-)offered rates, so every discipline
    sees the same saturated grant map and differs only in which flow
    rides each grant.  Expected dominance ordering: strict-priority and
    EDF meet the rtPS latency contract (zero violations) where WRR/DRR
    trade latency for fairness (violations > 0, higher flow-level Jain
    index, no starved BE flow); under strict-priority (and EDF) the
    multi-hop BE flow starves outright.
    """
    from repro.qos import grant_schedule_for, simulate_service_flows

    frame = default_frame_config()
    topology = chain_topology(3)
    flows = _e19_workload(frame)
    schedule, routed = grant_schedule_for(topology, flows, frame)

    result = ExperimentResult(
        "E19", "service-flow scheduler bake-off at saturating load "
        "(3-node chain, UGS+rtPS+nrtPS+BE)",
        ["discipline", "ugs_viol", "rtps_viol", "rtps_p95_ms",
         "nrtps_min_met", "be_share", "be_starved", "jain_flow",
         "max_be_age_s", "idle_grants"])
    for discipline in disciplines:
        res = simulate_service_flows(routed, schedule, frame, discipline,
                                     num_frames=num_frames)
        from repro.qos import ServiceClass
        ugs = res.stats_for(ServiceClass.UGS)
        rtps = res.stats_for(ServiceClass.RTPS)
        nrtps = res.stats_for(ServiceClass.NRTPS)
        be = res.stats_for(ServiceClass.BE)
        rtps_p95_ms = max(
            res.per_flow[f.name].p95_delay_s
            for f in routed.by_class(ServiceClass.RTPS)) * 1000.0
        be_starved = sum(
            1 for f in routed.by_class(ServiceClass.BE)
            if res.per_flow[f.name].received == 0)
        result.rows.append([
            discipline, ugs.latency_violations, rtps.latency_violations,
            round(rtps_p95_ms, 3), int(nrtps.min_rate_met),
            round(be.share, 4), be_starved,
            round(res.flow_jain_index, 4),
            round(be.max_queue_age_s, 3), res.grants_idle])
    result.notes = ("saturating ask ~2x the 16-slot frame; grants fixed "
                    "across disciplines (reservations + water-filled "
                    "leftover), only the per-grant arbitration differs")
    return result


# ---------------------------------------------------------------------------
# E20: QoS under mobility -- validity, goodput and repair load vs node speed
# ---------------------------------------------------------------------------

def e20_mobility(speeds: Sequence[float] = (0.0, 5.0, 10.0, 20.0, 30.0),
                 num_nodes: int = 36, area_m: float = 900.0,
                 radio_range_m: float = 220.0, horizon_s: float = 30.0,
                 dt_s: float = 0.25, num_flows: int = 2,
                 seed: int = 61) -> ExperimentResult:
    """Guaranteed QoS while the mesh itself moves (S36).

    ``num_nodes`` nodes walk a seeded random waypoint over an
    ``area_m``-square field at each swept speed (every speed shares the
    same t=0 layout: starts are drawn before any leg).  A
    :class:`~repro.mobility.TopologyStream` debounces pairwise distances
    through a hysteretic disk radio model into timestamped link/node
    deltas, lowers them onto the fault vocabulary, and
    :func:`~repro.mobility.run_mobility` replays them with one
    :class:`~repro.core.repair.RepairEngine` retarget per ``dt_s``
    sample batch.  Two gateway-bound flows ride the mesh from the
    farthest union nodes -- deliberately the flakiest vantage points.

    Every speed runs **two arms** over identical streams: the *delta*
    arm answers conflict-index misses incrementally
    (``SolverEngine(delta_updates=True)``,
    :func:`~repro.core.engine.updated_conflict_edges`) and the *rebuild*
    arm always rebuilds.  The arms must agree step-for-step
    (``arms_identical``) while the delta arm performs strictly fewer
    full index builds -- the equivalence-plus-savings claim, asserted
    per-row by the benchmark.

    Expected shape: schedules stay S8-conflict-free and inside delay
    budgets at *every* speed (``conflict_ok``/``guarantee_ok``); the
    gateway re-selection rate climbs steeply with speed; goodput is
    ragged rather than monotone because it is dominated by how long the
    far flows' endpoints stay attached, not by repair latency; and the
    delta arm's build savings shrink as speed grows (faster motion
    dirties a larger fraction of the mesh per tick).
    """
    from repro.mobility import (
        RadioRangeModel,
        RandomWaypointModel,
        TopologyStream,
        run_mobility,
    )

    gateway = 0
    frame = default_frame_config()
    result = ExperimentResult(
        "E20", "QoS under mobility: validity, goodput, repair load and "
        f"gateway re-selection vs node speed ({num_nodes}-node random "
        "waypoint)",
        ["speed_mps", "batches", "events", "local", "resolve",
         "repair_frames", "reselect", "goodput", "conflict_ok",
         "guarantee_ok", "builds_delta", "delta_updates",
         "builds_rebuild", "arms_identical"])
    for speed in speeds:
        motion = RandomWaypointModel(num_nodes, area_m, speed, horizon_s,
                                     seed=seed)
        stream = TopologyStream(
            motion, RadioRangeModel(radio_range_m, hysteresis=0.15),
            dt=dt_s)
        world = stream.fault_plan(gateway)
        topology = world.topology
        # deterministic endpoints: the farthest union node doubles as the
        # secondary gateway candidate, the next-farthest carry the flows
        far = sorted((n for n in topology.nodes if n != gateway),
                     key=lambda n: (topology.hop_distance(gateway, n), n))
        second_gateway = far[-1]
        sources = [n for n in far if n != second_gateway][-num_flows:]
        flows = [Flow(f"mob{i}", src, gateway, rate_bps=80_000,
                      delay_budget_s=0.3)
                 for i, src in enumerate(sources)]
        runs = {}
        for delta_arm in (True, False):
            engine = SolverEngine(delta_updates=delta_arm)
            runs[delta_arm] = run_mobility(
                stream, flows, frame, gateway=gateway,
                gateways=(gateway, second_gateway), engine=engine)
        delta_run, rebuild_run = runs[True], runs[False]
        result.rows.append([
            speed, len(delta_run.steps),
            sum(s.events for s in delta_run.steps),
            delta_run.local, delta_run.resolve,
            delta_run.mean_repair_frames, delta_run.reselections,
            round(delta_run.goodput_fraction, 4),
            delta_run.conflict_ok, delta_run.guarantee_ok,
            delta_run.engine_stats["index_builds"],
            delta_run.engine_stats["delta_updates"],
            rebuild_run.engine_stats["index_builds"],
            delta_run.steps == rebuild_run.steps])
    result.notes = ("both arms replay identical streams; goodput charges "
                    "parked time and convergence windows against a 20 ms "
                    "packet cadence, so it tracks endpoint attachment of "
                    "the far flows rather than repair latency")
    return result


# ---------------------------------------------------------------------------
# E21: city-scale zoned scheduling
# ---------------------------------------------------------------------------

def _e21_instance(num_nodes: int, num_flows: int, seed: int,
                  engine: SolverEngine):
    """One city-scale random-disk mesh with local unit-slot flows.

    Nodes go down at ~7 neighbours mean degree; flows run between
    random pairs at most three hops apart (city-scale traffic is
    local -- metro-wide pairs would pile demand onto a few transit
    links and the clique bound, not the solver, would dominate).  The
    frame is sized from the measured clique lower bound (three times
    plus headroom, 525 us slots as in E9) and every flow's rate is set
    to exactly one slot per frame per link, with a lax
    ``(route + 3) x frame`` delay budget.
    """
    import networkx as nx

    radio_range = 100.0
    area = radio_range * math.sqrt(num_nodes * math.pi / 7.0)
    topology = random_disk_topology(num_nodes, radio_range=radio_range,
                                    area=area, seed=seed + num_nodes)
    graph = topology.graph
    nodes = sorted(topology.nodes)
    rng = RngRegistry(seed=seed).stream(f"e21/pairs/{num_nodes}")
    pairs: list[tuple[int, int]] = []
    seen: set[tuple[int, int]] = set()
    tries = 0
    while len(pairs) < num_flows and tries < num_flows * 50:
        tries += 1
        src = nodes[int(rng.integers(len(nodes)))]
        near = sorted(v for v, hops in nx.single_source_shortest_path_length(
            graph, src, cutoff=3).items() if hops > 0)
        if not near:
            continue
        dst = near[int(rng.integers(len(near)))]
        if (src, dst) in seen:
            continue
        seen.add((src, dst))
        pairs.append((src, dst))

    # Pass 1: unit-rate routing fixes the per-link slot counts (one slot
    # per flow per link) and each route's length.
    provisional = route_all(topology, FlowSet(
        [Flow(f"c{i}", src=src, dst=dst, rate_bps=1)
         for i, (src, dst) in enumerate(pairs)]))
    counts: dict = {}
    for flow in provisional:
        for link in flow.route:
            counts[link] = counts.get(link, 0) + 1
    index = engine.conflict_index(topology, hops=2, links=sorted(counts))
    lower = demand_lower_bound(index.graph, counts)

    # Pass 2: size the frame from the clique bound, then set rates so
    # each flow needs exactly the one slot per frame pass 1 counted.
    slot_s = 525 * US
    data_slots = 3 * lower + 16
    phy = default_frame_config().phy
    frame = MeshFrameConfig(
        frame_duration_s=4 * 400 * US + data_slots * slot_s,
        control_slots=4, control_slot_s=400 * US,
        data_slots=data_slots, guard_s=60 * US, phy=phy)
    rate = int(0.9 * frame.data_slot_capacity_bits
               / frame.frame_duration_s)
    flows = route_all(topology, FlowSet(
        [Flow(f"c{i}", src=flow.src, dst=flow.dst, rate_bps=rate,
              delay_budget_s=(len(flow.route) + 3)
              * frame.frame_duration_s)
         for i, flow in enumerate(provisional)]))
    demands = flows.link_demands(frame.frame_duration_s,
                                 frame.data_slot_capacity_bits)
    return topology, flows, frame, index, demands, lower


def e21_zoned_scaling(sizes: Sequence[tuple[int, int]] = ((24, 16),
                                                          (60, 45),
                                                          (120, 90),
                                                          (240, 180),
                                                          (480, 400),
                                                          (1000, 1500)),
                      seed: int = 29,
                      exact_link_cap: int = 120,
                      max_zone_links: int = 32) -> ExperimentResult:
    """Zoned/greedy solver arms vs the exact ILP on city-scale meshes.

    Expected shape: the exact ILP stops being runnable past a few
    hundred demanded links (``dnf-size`` beyond ``exact_link_cap``,
    chosen so the tractable rows stay minutes, not hours); the zoned
    and greedy arms keep solving through the largest mesh in seconds to
    a few minutes, with optimality gap <= 10% against the exact optimum
    where one exists and a bounded factor over the clique lower bound
    everywhere.  Every emitted schedule is validated conflict-free
    against the full conflict graph (S8) and every flow's deterministic
    delay bound is checked against its budget (S30).

    The three wall-clock columns come last so the deterministic prefix
    of each row is directly comparable between serial and sharded runs
    (the E21 CI smoke diffs exactly that prefix).
    """
    import time as time_mod

    result = ExperimentResult(
        "E21", "city-scale zoned scheduling (random disk, local flows)",
        ["nodes", "flows", "links", "conflicts", "lower",
         "exact_slots", "zoned_slots", "greedy_slots", "zones",
         "zoned_gap_pct", "greedy_gap_pct", "s8_ok", "s30_ok",
         "exact_status", "exact_s", "zoned_s", "greedy_s"])
    for num_nodes, num_flows in sizes:
        engine = SolverEngine()
        topology, flows, frame, index, demands, lower = _e21_instance(
            num_nodes, num_flows, seed, engine)
        constraints = delay_constraints_for(flows, frame)

        exact = None
        exact_status = "dnf-size"
        exact_s = 0.0
        if len(demands) <= exact_link_cap:
            started = time_mod.perf_counter()
            exact = minimum_slots(
                index.graph, demands, frame.data_slots, constraints,
                engine=engine,
                policy=SolverPolicy(mode="exact", search="binary",
                                    time_limit_per_probe=30.0))
            exact_s = time_mod.perf_counter() - started
            exact_status = "ok" if exact.slots is not None else "dnf"

        started = time_mod.perf_counter()
        zoned = zoned_minimum_slots(
            index, demands, frame.data_slots, constraints, engine=engine,
            policy=SolverPolicy(mode="zoned",
                                max_zone_links=max_zone_links))
        zoned_s = time_mod.perf_counter() - started
        started = time_mod.perf_counter()
        greedy = greedy_minimum_slots(index, demands, frame.data_slots,
                                      constraints, engine=engine)
        greedy_s = time_mod.perf_counter() - started

        # S8 + S30 on every schedule an arm actually emitted.
        s8_ok = True
        s30_ok = True
        for arm in (exact, zoned, greedy):
            if arm is None or arm.schedule is None:
                continue
            s8_ok &= arm.schedule.violations(index.graph) == []
            for flow in flows:
                report = check_guarantees(arm.schedule, flow, frame,
                                          G729.packet_bits)
                s30_ok &= report.stable
                s30_ok &= report.meets_budget(flow.delay_budget_s)

        baseline = (exact.slots if exact is not None
                    and exact.slots is not None else lower)

        def gap_pct(arm) -> Optional[float]:
            if arm.slots is None or baseline <= 0:
                return None
            return round(100.0 * (arm.slots - baseline) / baseline, 1)

        result.rows.append([
            num_nodes, num_flows, len(demands),
            index.graph.number_of_edges(), lower,
            exact.slots if exact is not None else None,
            zoned.slots, greedy.slots,
            (zoned.meta or {}).get("num_zones"),
            gap_pct(zoned), gap_pct(greedy), s8_ok, s30_ok,
            exact_status, round(exact_s, 3), round(zoned_s, 3),
            round(greedy_s, 3)])
    result.notes = ("gap columns compare against the exact optimum where "
                    "one was computed, the clique lower bound otherwise; "
                    "wall-clock columns are last so serial and sharded "
                    "tables agree on everything before them")
    return result


def e22_chaos_sweep(intensities: Sequence[float] = (0.0, 0.3, 0.6, 1.0),
                    seed: int = 11,
                    num_tasks: int = 10,
                    retries: int = 3) -> ExperimentResult:
    """Robustness contract of the execution runtime under fault injection.

    For each chaos intensity, a fixed batch of scheduling probe tasks
    (:func:`repro.runtime.chaos.chaos_probe`) runs through
    :func:`repro.runtime.pool.run_tasks` while a seeded
    :class:`~repro.runtime.chaos.ChaosPolicy` injects worker crashes,
    hangs, transient failures, torn cache writes, a simulated full
    disk, and torn ledger appends.  The policy stops injecting after
    attempt 2 and ``retries`` exceeds that, so the contract under test
    is: *every* row, at *every* intensity, must be bitwise identical to
    the chaos-free baseline (``identical``), with the damage visible
    only in the fault counters and the quarantine directory -- never in
    the results.

    Each intensity runs twice, once against a JSONL ledger and once
    against a sqlite ledger; ``ledgers_agree`` checks the two backends
    recorded the same per-task (outcome, attempts) history, which also
    re-checks that the chaos schedule itself is deterministic.

    Chaos decisions are content-keyed (pure functions of seed, task
    key, and attempt), so this table is reproducible at any ``--jobs``
    value; the CI smoke step diffs serial vs ``--jobs 2`` output of
    exactly this experiment.
    """
    import pathlib
    import shutil
    import tempfile

    from repro import obs as obs_mod
    from repro.runtime.cache import ResultCache
    from repro.runtime.chaos import ChaosPolicy
    from repro.runtime.ledger import RunLedger
    from repro.runtime.pool import run_tasks
    from repro.runtime.tasks import make_task

    tasks = [make_task("repro.runtime.chaos:chaos_probe",
                       {"x": x, "seed": seed}) for x in range(num_tasks)]
    baseline = run_tasks(tasks, jobs=1)
    baseline_values = [r.value for r in baseline]

    result = ExperimentResult(
        "E22", "runtime chaos sweep (fault injection vs result fidelity)",
        ["intensity", "tasks", "crashes", "hangs", "transients",
         "torn_cache", "torn_ledger", "enospc", "retried", "quarantined",
         "identical", "ledgers_agree"])
    for level in intensities:
        chaos = ChaosPolicy.at_intensity(level, seed=seed, max_attempt=2)
        root = pathlib.Path(tempfile.mkdtemp(prefix="repro-e22-"))
        try:
            histories = {}
            counters: dict[str, int] = {}
            values = None
            for backend, filename in (("jsonl", "ledger.jsonl"),
                                      ("sqlite", "ledger.sqlite")):
                cache = ResultCache(root / f"cache-{backend}")
                ledger = RunLedger(root / filename, backend=backend)
                with obs_mod.use_registry(
                        obs_mod.MetricsRegistry()) as registry:
                    out = run_tasks(tasks, jobs=1, retries=retries,
                                    backoff_s=0.01, jitter=0.5,
                                    retry_timeouts=True, chaos=chaos,
                                    cache=cache, ledger=ledger,
                                    clock=lambda: 0.0,
                                    sleep=lambda _s: None)
                    # Warm read-back: torn entries quarantine here.
                    for task in tasks:
                        cache.get(task)
                histories[backend] = sorted(
                    (e["key"], e.get("outcome"), e.get("attempts"))
                    for e in ledger.entries())
                ledger.close()
                if backend == "jsonl":
                    values = [r.value for r in out]
                    counters = dict(
                        registry.snapshot().get("counters", {}))
            quarantined = sum(
                1 for d in root.glob("cache-*/quarantine/*")
                if d.is_file())
            result.rows.append([
                level, num_tasks,
                counters.get("runtime.chaos.crashes", 0),
                counters.get("runtime.chaos.hangs", 0),
                counters.get("runtime.chaos.transients", 0),
                counters.get("runtime.chaos.torn_cache_writes", 0),
                counters.get("runtime.chaos.torn_ledger_writes", 0),
                counters.get("runtime.chaos.enospc", 0),
                sum(1 for r in out if r.attempts > 1),
                quarantined,
                values == baseline_values,
                histories["jsonl"] == histories["sqlite"]])
        finally:
            shutil.rmtree(root, ignore_errors=True)
    result.notes = ("chaos stops injecting after attempt 2 and the retry "
                    "budget exceeds that, so 'identical' must hold at "
                    "every intensity; fault counters come from the jsonl "
                    "arm (the sqlite arm repeats the same schedule)")
    return result


# ---------------------------------------------------------------------------
# E23: interference backends -- protocol model vs SINR ground truth
# ---------------------------------------------------------------------------

def e23_interference_backends(
        cs_multipliers: Sequence[float] = (1.0, 1.5, 2.0, 2.5),
        num_nodes: int = 8, spacing_m: float = 90.0,
        num_calls: int = 4, duration_s: float = 2.0,
        seed: int = 37, codec: VoipCodec = G729) -> ExperimentResult:
    """Protocol-model abstraction vs SINR physical ground truth (S39).

    One chain mesh, node spacing chosen so SINR-audible interference
    reaches ~3 hops while the 802.16-mandated 2-hop protocol model only
    sees 2.  Per carrier-sense range multiplier, the row reports:

    - conflict-graph size under each backend and the pairs the protocol
      abstraction leaves *uncovered* against the SINR truth
      (:func:`repro.phy.interference.uncovered_interference` with
      ``truth=``) -- nonzero here is the headline: a 2-hop-clean
      schedule can still collide in SINR terms;
    - hidden-node pairs (conflicting non-adjacent links whose
      transmitters cannot carrier-sense each other) -- these shrink as
      the cs range grows and hit zero once cs covers the whole audible
      range;
    - minimum guaranteed slots under each backend (the slot price of
      scheduling against the wider physical graph), S8 checks both ways
      (the protocol schedule's violation count against the SINR graph,
      and the SINR schedule's cleanliness against its own graph), and
      the per-link adaptive-MCS mix;
    - the DCF baseline run twice, on the graph-perfect channel and on
      the physically-coupled one (carrier sense past radio neighbours +
      hidden-node jamming) -- the jam count is the hidden-node tax the
      protocol abstraction hides, and it shrinks as cs deferral widens.

    Expected shape: uncovered pairs are constant (the SINR audible range
    does not depend on cs), hidden pairs and DCF jams fall
    monotonically with the multiplier, and the SINR backend pays a few
    extra slots for physical-truth safety.
    """
    from repro.phy.interference import uncovered_interference
    from repro.phy.models import SinrModel

    topology = chain_topology(num_nodes, spacing=spacing_m)
    frame = default_frame_config()
    engine = SolverEngine()
    result = ExperimentResult(
        "E23", "interference backends: 2-hop protocol model vs SINR "
        f"physical truth (chain{num_nodes} @ {spacing_m:g} m)",
        ["cs_mult", "cs_range_m", "proto_edges", "sinr_edges",
         "uncovered", "hidden", "proto_slots", "sinr_slots",
         "proto_viol_vs_sinr", "sinr_s8_ok", "mcs_mix",
         "dcf_collisions", "dcf_phys_collisions", "dcf_jams"])
    for mult in cs_multipliers:
        sinr = SinrModel(cs_multiplier=mult)
        rngs = RngRegistry(seed=seed)
        flows = make_voip_flows(topology, num_calls, rngs, codec=codec,
                                gateway=0, delay_budget_s=0.1, min_hops=2)
        demands = flows.link_demands(frame.frame_duration_s,
                                     frame.data_slot_capacity_bits)
        links = sorted(demands)
        proto_graph = engine.conflict_index(topology, hops=2,
                                            links=links).graph
        sinr_graph = engine.conflict_index(topology, interference=sinr,
                                           links=links).graph
        uncovered = uncovered_interference(topology, hops=2, truth=sinr)
        hidden = sinr.hidden_node_pairs(topology)
        proto = minimum_slots(proto_graph, demands, frame.data_slots,
                              delay_constraints=delay_constraints_for(
                                  flows, frame), engine=engine)
        phys = minimum_slots(None, demands, frame.data_slots,
                             delay_constraints=delay_constraints_for(
                                 flows, frame), engine=engine,
                             topology=topology, interference=sinr)
        # S8 both ways: the protocol schedule audited against the SINR
        # truth (nonzero = the abstraction's blind spot, scheduled), and
        # the SINR schedule against its own graph (must be clean).
        proto_viol = (len(proto.schedule.violations(sinr_graph))
                      if proto.schedule is not None else None)
        sinr_ok = (phys.schedule is not None
                   and phys.schedule.violations(sinr_graph) == [])
        rates = sinr.link_rates(topology, links=links)
        mix: dict[str, int] = {}
        for entry in rates.values():
            mix[entry.name] = mix.get(entry.name, 0) + 1
        mcs_mix = "/".join(f"{name}:{count}"
                           for name, count in sorted(mix.items()))
        dcf_plain = run_dcf_scenario(topology, flows, duration_s,
                                     rngs.spawn("dcf"), codec=codec)
        dcf_phys = run_dcf_scenario(topology, flows, duration_s,
                                    rngs.spawn("dcf-phys"), codec=codec,
                                    interference=sinr)
        result.rows.append([
            mult, round(sinr.carrier_sense_range_m(), 1),
            proto_graph.number_of_edges(), sinr_graph.number_of_edges(),
            len(uncovered), len(hidden),
            proto.slots, phys.slots, proto_viol, sinr_ok, mcs_mix,
            dcf_plain.extras["collisions"], dcf_phys.extras["collisions"],
            dcf_phys.extras["jams"]])
    result.notes = ("uncovered pairs compare the 2-hop graph with the "
                    "SINR truth over the full link set and do not depend "
                    "on the cs multiplier; hidden pairs fall as carrier "
                    "sense widens; DCF jam damage only drops once the cs "
                    "range passes the audible (jamming) range, because "
                    "jam energy itself already busies the victim's "
                    "medium; both DCF arms replay the same seeded "
                    "workload")
    return result


ALL_EXPERIMENTS = {
    "E1": e01_min_slots,
    "E2": e02_delay_vs_hops,
    "E3": e03_delay_vs_frame,
    "E4": e04_overhead,
    "E5": e05_voip_capacity,
    "E6": e06_delay_cdf,
    "E7": e07_ordering_compare,
    "E8": e08_sync_error,
    "E9": e09_goodput_efficiency,
    "E10": e10_solver_scaling,
    "E11": e11_spatial_reuse,
    "E12": e12_voip_mos,
    "E13": e13_channel_errors,
    "E14": e14_distributed_vs_centralized,
    "E15": e15_control_plane,
    "E16": e16_two_class,
    "E17": e17_churn,
    "E18": e18_control_loss,
    "E19": e19_scheduler_bakeoff,
    "E20": e20_mobility,
    "E21": e21_zoned_scaling,
    "E22": e22_chaos_sweep,
    "E23": e23_interference_backends,
}
