"""Small statistics helpers for experiment replication."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as scipy_stats

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float


def summarize(samples: Sequence[float]) -> Summary:
    if not samples:
        raise ConfigurationError("cannot summarize an empty sample")
    array = np.asarray(samples, dtype=float)
    return Summary(n=len(array), mean=float(array.mean()),
                   std=float(array.std(ddof=1)) if len(array) > 1 else 0.0,
                   minimum=float(array.min()), maximum=float(array.max()))


def mean_confidence_interval(samples: Sequence[float],
                             confidence: float = 0.95
                             ) -> tuple[float, float, float]:
    """(mean, low, high) Student-t confidence interval for the mean."""
    if not samples:
        raise ConfigurationError("cannot build a CI from an empty sample")
    if not 0 < confidence < 1:
        raise ConfigurationError("confidence must be in (0, 1)")
    array = np.asarray(samples, dtype=float)
    mean = float(array.mean())
    if len(array) < 2:
        return mean, mean, mean
    sem = float(array.std(ddof=1)) / math.sqrt(len(array))
    if sem == 0.0:
        return mean, mean, mean
    half = sem * float(scipy_stats.t.ppf((1 + confidence) / 2, len(array) - 1))
    return mean, mean - half, mean + half
