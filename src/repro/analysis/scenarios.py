"""End-to-end packet-level scenario runners.

Two symmetric entry points run the *same* routed workload over the two
stacks the paper compares:

- :func:`run_tdma_scenario` -- the WiMAX-mesh-over-WiFi emulation: raw
  broadcast MACs driven by per-node drifting clocks, a TDMA schedule, and
  the beacon synchronization protocol;
- :func:`run_dcf_scenario` -- native 802.11 DCF.

Both return a :class:`ScenarioResult` carrying per-flow QoS and the shared
trace, so experiments diff exactly one variable (the MAC).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.schedule import Schedule
from repro.dot11.dcf import DcfMac
from repro.dot11.params import DOT11B_PARAMS, Dot11Params
from repro.errors import ConfigurationError, SolverError
from repro.mesh16.frame import MeshFrameConfig
from repro.mesh16.network import ControlPlane
from repro.net.flows import Flow, FlowSet
from repro.net.forwarding import SourceRoutedForwarder
from repro.net.packet import Packet
from repro.net.routing import route_all
from repro.net.topology import MeshTopology
from repro.overlay.emulation import TdmaOverlay
from repro.overlay.sync import SyncConfig, SyncDaemon
from repro.phy.channel import BroadcastChannel
from repro.sim.clock import DriftingClock
from repro.sim.engine import Simulator
from repro.sim.random import RngRegistry, resolve_rngs
from repro.sim.trace import Trace
from repro.traffic.qos import FlowQoS
from repro.traffic.sink import SinkRegistry
from repro.traffic.sources import CbrSource
from repro.traffic.voip import G711, VoipCodec
from repro.units import ppm as ppm_ratio


@dataclass
class ScenarioResult:
    """Outcome of one packet-level run."""

    qos: dict[str, FlowQoS]
    trace: Trace
    duration_s: float
    #: scenario-specific extras (sync errors, queue stats, ...)
    extras: dict[str, object] = field(default_factory=dict)

    def worst_flow(self, metric: str = "p95_delay_s") -> FlowQoS:
        return max(self.qos.values(), key=lambda q: getattr(q, metric))

    def total_loss_fraction(self) -> float:
        sent = sum(q.sent for q in self.qos.values())
        received = sum(q.received for q in self.qos.values())
        if sent == 0:
            return 0.0
        return 1.0 - received / sent


def delay_constraints_for(flows: FlowSet,
                          frame_config: MeshFrameConfig) -> list:
    """DelayConstraints for every guaranteed flow, budgets in data slots.

    A budget of ``delay_budget_s`` translates to whole data slots of the
    frame; the frame-slot unit is what the ILP reasons in.
    """
    from repro.core.ilp import DelayConstraint

    slot_s = frame_config.frame_duration_s / frame_config.data_slots
    constraints = []
    for flow in flows.guaranteed():
        budget = int(flow.delay_budget_s / slot_s)
        if budget < 1:
            raise ConfigurationError(
                f"flow {flow.name}: budget below one slot")
        constraints.append(DelayConstraint(flow.name, flow.route, budget))
    return constraints


def schedule_for_flows(topology: MeshTopology, flows: FlowSet,
                       frame_config: MeshFrameConfig,
                       method: str = "ilp",
                       enforce_delay: bool = True,
                       gateway: int = 0,
                       engine=None, interference=None) -> Schedule:
    """Build a conflict-free TDMA schedule carrying ``flows``.

    Methods: ``"ilp"`` (delay-aware joint ILP, min-max delay objective),
    ``"greedy"`` (first-fit decreasing; delay-oblivious baseline),
    ``"tree"`` (wrap-free ordering on the gateway tree + Bellman-Ford,
    valid when all routes follow tree links).  ``engine`` optionally
    shares a :class:`~repro.core.engine.SolverEngine` (conflict index +
    solved-problem cache) across calls.  ``interference=`` swaps the
    conflict backend (default: the 2-hop protocol model).
    """
    from repro.core.engine import SolverEngine
    from repro.core.greedy import greedy_schedule
    from repro.core.ilp import SchedulingProblem
    from repro.core.ordering import schedule_from_order
    from repro.core.tree_order import min_delay_tree_order
    from repro.net.routing import gateway_tree

    eng = engine if engine is not None else SolverEngine()
    demands = flows.link_demands(frame_config.frame_duration_s,
                                 frame_config.data_slot_capacity_bits)
    conflicts = eng.conflict_index(topology,
                                   hops=None if interference else 2,
                                   interference=interference,
                                   links=demands.keys()).graph
    slots = frame_config.data_slots

    if method == "greedy":
        return greedy_schedule(conflicts, demands, frame_slots=slots)
    if method == "tree":
        order = min_delay_tree_order(gateway_tree(topology, gateway),
                                     gateway)
        return schedule_from_order(conflicts, demands, slots, order)
    if method != "ilp":
        raise ConfigurationError(f"unknown schedule method {method!r}")

    constraints = (delay_constraints_for(flows, frame_config)
                   if enforce_delay else [])
    problem = SchedulingProblem(
        conflicts=conflicts, demands=demands, frame_slots=slots,
        delay_constraints=constraints,
        minimize_max_delay=bool(constraints))
    result = eng.solve(problem)
    if not result.feasible:
        raise ConfigurationError(
            f"no feasible schedule for {len(flows)} flows in {slots} slots "
            f"({result.solver_status})")
    return result.schedule


def admit_flows(topology: MeshTopology, flows: FlowSet,
                frame_config: MeshFrameConfig,
                time_limit_s: float = 20.0,
                engine=None,
                interference=None) -> tuple[FlowSet, Schedule]:
    """Greedy admission: keep each flow only if the set stays schedulable.

    This is how the emulated mesh handles offered load beyond capacity:
    excess calls are *rejected* so admitted calls keep their guarantees --
    the behavioural contrast with DCF, which degrades everyone.  Returns
    the admitted subset and its schedule.  One shared
    :class:`~repro.core.engine.SolverEngine` (``engine``, or a private
    one per call) serves every candidate check, so the conflict index is
    built per distinct link set rather than per candidate.
    """
    from repro.core.engine import SolverEngine
    from repro.core.ilp import SchedulingProblem

    eng = engine if engine is not None else SolverEngine()
    admitted = FlowSet()
    schedule: Optional[Schedule] = None
    for flow in flows:
        candidate = FlowSet(list(admitted) + [flow])
        demands = candidate.link_demands(frame_config.frame_duration_s,
                                         frame_config.data_slot_capacity_bits)
        conflicts = eng.conflict_index(topology,
                                       hops=None if interference else 2,
                                       interference=interference,
                                       links=demands.keys()).graph
        problem = SchedulingProblem(
            conflicts=conflicts, demands=demands,
            frame_slots=frame_config.data_slots,
            delay_constraints=delay_constraints_for(candidate, frame_config))
        try:
            result = eng.solve(problem, time_limit=time_limit_s)
        except SolverError:
            continue  # undecided within the time limit: reject the call
        if result.feasible:
            admitted = candidate
            schedule = result.schedule
    if schedule is None:
        raise ConfigurationError("no flow could be admitted at all")
    return admitted, schedule


def make_voip_flows(topology: MeshTopology, num_calls: int,
                    rngs: Optional[RngRegistry] = None,
                    codec: VoipCodec = G711,
                    gateway: Optional[int] = None,
                    delay_budget_s: float = 0.1,
                    min_hops: int = 1,
                    seed: Optional[int] = None) -> FlowSet:
    """Random unidirectional VoIP calls, routed via shortest paths.

    Randomness follows the standard ``rngs=``/``seed=`` pair (a registry
    for stream sharing, or an integer seed for a self-contained call).

    With ``gateway`` set, every call runs between the gateway and a random
    node (half up, half down), modelling voice trunked through the mesh's
    internet gateway; otherwise endpoints are arbitrary distinct nodes at
    least ``min_hops`` apart.
    """
    rngs = resolve_rngs(rngs, seed, what="make_voip_flows")
    rng = rngs.stream("workload/voip")
    nodes = topology.nodes
    flows = FlowSet()
    attempts = 0
    while len(flows) < num_calls:
        attempts += 1
        if attempts > 100 * (num_calls + 1):
            raise ConfigurationError(
                "could not draw enough distinct call endpoints; "
                "relax min_hops or shrink num_calls")
        index = len(flows)
        if gateway is not None:
            other = int(rng.choice([n for n in nodes if n != gateway]))
            src, dst = ((gateway, other) if index % 2 == 0
                        else (other, gateway))
        else:
            src, dst = (int(n) for n in rng.choice(nodes, size=2,
                                                   replace=False))
        if topology.hop_distance(src, dst) < min_hops:
            continue
        flows.add(Flow(name=f"voip{index}", src=src, dst=dst,
                       rate_bps=codec.wire_rate_bps,
                       delay_budget_s=delay_budget_s))
    return route_all(topology, flows)


def run_tdma_scenario(topology: MeshTopology, flows: FlowSet,
                      frame_config: MeshFrameConfig, schedule: Schedule,
                      duration_s: float,
                      rngs: Optional[RngRegistry] = None,
                      gateway: int = 0,
                      drift_ppm: float = 10.0,
                      sync_config: Optional[SyncConfig] = None,
                      start_synced: bool = True,
                      initial_offset_bound_s: float = 0.0,
                      codec: VoipCodec = G711,
                      warmup_s: float = 0.5,
                      channel_error_rate: float = 0.0,
                      arq: bool = False,
                      seed: Optional[int] = None) -> ScenarioResult:
    """Run the routed ``flows`` over the TDMA emulation.

    Randomness follows the standard ``rngs=``/``seed=`` pair.

    Parameters
    ----------
    schedule:
        Conflict-free TDMA schedule over exactly the links the flows use;
        ``schedule.frame_slots`` must match ``frame_config.data_slots``.
    drift_ppm:
        Per-node oscillator skews are drawn uniformly in +-``drift_ppm``.
    start_synced:
        If true, clocks start with zero offset (the steady-state regime);
        otherwise offsets start uniform in +-``initial_offset_bound_s`` and
        the sync protocol must acquire lock first.
    """
    rngs = resolve_rngs(rngs, seed, what="run_tdma_scenario")
    sim = Simulator()
    trace = Trace(capacity=200_000)
    channel = BroadcastChannel(sim, topology, frame_config.phy, trace)
    if channel_error_rate > 0.0:
        channel.set_error_model(rngs.stream("channel_error"),
                                channel_error_rate)
    sync_config = sync_config or SyncConfig()
    clock_rng = rngs.stream("clocks")

    clocks: dict[int, DriftingClock] = {}
    daemons: dict[int, SyncDaemon] = {}
    for node in topology.nodes:
        if node == gateway:
            skew, offset = 0.0, 0.0
        else:
            skew = float(clock_rng.uniform(-ppm_ratio(drift_ppm),
                                           ppm_ratio(drift_ppm)))
            offset = (0.0 if start_synced else float(
                clock_rng.uniform(-initial_offset_bound_s,
                                  initial_offset_bound_s)))
        clocks[node] = DriftingClock(skew=skew, offset=offset)
        daemons[node] = SyncDaemon(node, gateway, clocks[node], sync_config,
                                   rngs.stream(f"sync/{node}"), trace)

    control_plane = ControlPlane(topology, gateway, frame_config)
    sinks = SinkRegistry()
    overlay = TdmaOverlay(sim, topology, channel, frame_config,
                          control_plane, schedule, clocks, daemons,
                          on_packet=lambda node, packet: forwarder
                          .packet_arrived(node, packet, sim.now),
                          trace=trace, arq=arq)
    forwarder = SourceRoutedForwarder(overlay, sinks.on_delivered, trace)

    sources = {}
    jitter_rng = rngs.stream("workload/phase")
    for flow in flows:
        start = float(jitter_rng.uniform(0.0, codec.packet_interval_s))
        sources[flow.name] = CbrSource.for_codec(
            sim, flow, forwarder.originate, codec, start_s=start,
            stop_s=duration_s)

    overlay.start()
    sync_samples: list[float] = []

    def sample_sync() -> None:
        sync_samples.append(overlay.max_sync_error_s())
        if sim.now + 0.1 < duration_s:
            sim.schedule(0.1, sample_sync)

    sim.schedule(0.05, sample_sync)
    sim.run(until=duration_s + 0.2)

    qos = {name: sinks.sink(name).qos(sent=src.sent, warmup_s=warmup_s)
           for name, src in sources.items()}
    return ScenarioResult(
        qos=qos, trace=trace, duration_s=duration_s,
        extras={
            "max_sync_error_s": max(sync_samples) if sync_samples else 0.0,
            "sync_error_samples": sync_samples,
            "slot_collisions": trace.count("tdma.rx_corrupt"),
            "arq_retransmissions": trace.count("tdma.arq_retx"),
            "arq_drops": trace.count("tdma.arq_drop"),
        })


def run_dcf_scenario(topology: MeshTopology, flows: FlowSet,
                     duration_s: float,
                     rngs: Optional[RngRegistry] = None,
                     params: Dot11Params = DOT11B_PARAMS,
                     codec: VoipCodec = G711,
                     warmup_s: float = 0.5,
                     channel_error_rate: float = 0.0,
                     seed: Optional[int] = None,
                     interference=None) -> ScenarioResult:
    """Run the routed ``flows`` over native 802.11 DCF.

    Randomness follows the standard ``rngs=``/``seed=`` pair.  With
    ``interference=`` an :class:`~repro.phy.models.SinrModel`, the
    channel is widened with that model's physical couplings
    (:meth:`~repro.phy.models.SinrModel.channel_couplings`): carrier
    sense reaches past radio neighbours and hidden-node transmitters
    corrupt in-flight receptions (counted in the ``"jams"`` extra).
    """
    rngs = resolve_rngs(rngs, seed, what="run_dcf_scenario")
    sim = Simulator()
    trace = Trace(capacity=200_000)
    channel = BroadcastChannel(sim, topology, params.phy, trace)
    if interference is not None:
        channel.set_physical_couplings(
            interference.channel_couplings(topology))
    if channel_error_rate > 0.0:
        channel.set_error_model(rngs.stream("channel_error"),
                                channel_error_rate)
    sinks = SinkRegistry()

    macs: dict[int, DcfMac] = {}

    class _DcfAdapter:
        """MacAdapter over the per-node DCF MACs."""

        def transmit(self, node: int, packet: Packet) -> bool:
            link = packet.current_link
            if link is None:  # pragma: no cover - forwarder guards this
                raise ConfigurationError("packet already delivered")
            return macs[node].send(link[1], packet, packet.size_bits)

    forwarder = SourceRoutedForwarder(_DcfAdapter(), sinks.on_delivered,
                                      trace)

    def deliver(node: int, payload: object) -> None:
        if isinstance(payload, Packet):
            forwarder.packet_arrived(node, payload, sim.now)

    for node in topology.nodes:
        macs[node] = DcfMac(sim, channel, node, params,
                            rngs.stream(f"dcf/{node}"), deliver, trace)

    sources = {}
    jitter_rng = rngs.stream("workload/phase")
    for flow in flows:
        start = float(jitter_rng.uniform(0.0, codec.packet_interval_s))
        sources[flow.name] = CbrSource.for_codec(
            sim, flow, forwarder.originate, codec, start_s=start,
            stop_s=duration_s)

    sim.run(until=duration_s + 0.2)

    qos = {name: sinks.sink(name).qos(sent=src.sent, warmup_s=warmup_s)
           for name, src in sources.items()}
    return ScenarioResult(
        qos=qos, trace=trace, duration_s=duration_s,
        extras={
            "collisions": trace.count("phy.rx_collision"),
            "jams": trace.count("phy.jam"),
            "mac_drops": trace.count("mac.drop"),
            "queue_drops": trace.count("mac.queue_drop"),
        })
