"""Multi-seed replication with confidence intervals.

Packet-level results depend on the seed (backoff draws, clock skews, call
placement); a single run is an anecdote.  :func:`replicate` re-runs a
scenario function across derived seeds and condenses each numeric metric
into mean and Student-t confidence interval -- the standard presentation
for simulation studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.analysis.stats import mean_confidence_interval
from repro.errors import ConfigurationError, SimulationError
from repro.sim.random import RngRegistry


@dataclass(frozen=True)
class ReplicatedMetric:
    """Mean and confidence interval of one metric across replications."""

    name: str
    mean: float
    ci_low: float
    ci_high: float
    samples: tuple[float, ...]

    @property
    def half_width(self) -> float:
        return (self.ci_high - self.ci_low) / 2

    def __str__(self) -> str:
        return f"{self.name}: {self.mean:.4g} +- {self.half_width:.2g}"


def replicate(scenario: Callable[[RngRegistry], Mapping[str, float]] | str,
              seeds: Sequence[int],
              confidence: float = 0.95,
              jobs: int | None = 1) -> dict[str, ReplicatedMetric]:
    """Run ``scenario`` once per seed and summarize each metric.

    Parameters
    ----------
    scenario:
        Callable taking a fresh :class:`RngRegistry` and returning a flat
        mapping of metric name to numeric value, or a
        ``"module:function"`` path naming one.  Every replication must
        return the same metric names.
    seeds:
        Root seeds, one per replication (e.g. ``range(10)``).
    jobs:
        Worker processes for the replications; ``1`` (the default) runs
        serially in-process, ``None`` uses one per CPU.  Each replication
        derives its own :class:`RngRegistry` from its seed -- no state is
        shared -- so the summary is bitwise-identical for every ``jobs``
        value.  For ``jobs > 1`` the scenario must be a module-level
        callable (it crosses a process boundary).

    Returns
    -------
    dict
        Metric name -> :class:`ReplicatedMetric`, in the order metrics
        appeared in the first replication.
    """
    if not seeds:
        raise ConfigurationError("need at least one seed")
    runs: list[Mapping[str, float]] = []
    if jobs is None or jobs > 1:
        from repro.runtime.pool import run_tasks
        from repro.runtime.tasks import make_task

        tasks = [make_task(scenario, seed=int(seed)) for seed in seeds]
        for outcome in run_tasks(tasks, jobs=jobs):
            if not outcome.ok:
                raise SimulationError(
                    f"replication seed={outcome.task.seed} "
                    f"{outcome.outcome}: {outcome.error}")
            runs.append(outcome.value)
    else:
        if isinstance(scenario, str):
            from repro.runtime.tasks import make_task, resolve_target

            scenario = resolve_target(make_task(scenario))
        runs.extend(scenario(RngRegistry(seed=int(seed)))
                    for seed in seeds)
    for result in runs[1:]:
        if set(result) != set(runs[0]):
            raise ConfigurationError(
                "replications returned differing metric sets: "
                f"{sorted(set(result) ^ set(runs[0]))}")

    summary: dict[str, ReplicatedMetric] = {}
    for name in runs[0]:
        samples = tuple(float(run[name]) for run in runs)
        mean, low, high = mean_confidence_interval(samples, confidence)
        summary[name] = ReplicatedMetric(name=name, mean=mean, ci_low=low,
                                         ci_high=high, samples=samples)
    return summary
