"""Experiment harness, statistics and reporting (system S22 in DESIGN.md)."""

from repro.analysis.replication import ReplicatedMetric, replicate
from repro.analysis.reporting import format_table
from repro.analysis.stats import mean_confidence_interval, summarize
from repro.analysis.visualize import render_schedule, render_two_class

__all__ = [
    "ReplicatedMetric",
    "format_table",
    "mean_confidence_interval",
    "render_schedule",
    "render_two_class",
    "replicate",
    "summarize",
]
