"""Plain-text table rendering for experiment output.

Benchmarks print the same rows the paper's tables/figures report; keeping
the renderer dependency-free makes ``pytest benchmarks/ --benchmark-only``
output self-contained.
"""

from __future__ import annotations

from typing import Sequence


def format_cell(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        magnitude = abs(value)
        if magnitude != 0 and (magnitude < 1e-3 or magnitude >= 1e6):
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned monospace table."""
    cells = [[format_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
