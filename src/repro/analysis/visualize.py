"""ASCII rendering of TDMA schedules.

A quick way to *see* a schedule in a terminal or a test failure message:
one row per directed link, one column per data slot, ``#`` where the link
transmits.  Conflicting links sharing a column jump out immediately, as
does spatial reuse (multiple ``#`` in one column on far-apart links).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.schedule import Schedule
from repro.net.topology import Link


def render_schedule(schedule: Schedule,
                    links: Optional[Sequence[Link]] = None,
                    mark: str = "#", empty: str = ".") -> str:
    """Render ``schedule`` as an aligned slot grid.

    >>> from repro.core.schedule import Schedule, SlotBlock
    >>> s = Schedule(6, {(0, 1): SlotBlock(0, 2), (2, 3): SlotBlock(3, 1)})
    >>> print(render_schedule(s))
    slot   012345
    0->1   ##....
    2->3   ...#..
    """
    chosen = list(links) if links is not None else schedule.links()
    label_of = {link: f"{link[0]}->{link[1]}" for link in chosen}
    width = max([len("slot")] + [len(v) for v in label_of.values()])
    header = "slot".ljust(width) + "   " + "".join(
        str(slot % 10) for slot in range(schedule.frame_slots))
    lines = [header]
    for link in chosen:
        cells = [empty] * schedule.frame_slots
        if link in schedule:
            for slot in schedule.block(link).slots():
                cells[slot] = mark
        lines.append(label_of[link].ljust(width) + "   " + "".join(cells))
    return "\n".join(lines)


def render_two_class(two, links: Optional[Sequence[Link]] = None) -> str:
    """Render a :class:`~repro.core.besteffort.TwoClassSchedule`.

    Guaranteed blocks print as ``G``, best-effort blocks as ``b``, and the
    region boundary is marked in the header row.
    """
    frame_slots = two.frame_slots
    chosen = (list(links) if links is not None
              else sorted({l for l, ____ in two.items()}))
    label_of = {link: f"{link[0]}->{link[1]}" for link in chosen}
    width = max([len("slot")] + [len(v) for v in label_of.values()])
    boundary = ["|" if slot == two.guaranteed_region else str(slot % 10)
                for slot in range(frame_slots)]
    lines = ["slot".ljust(width) + "   " + "".join(boundary)]
    for link in chosen:
        cells = ["."] * frame_slots
        if link in two.guaranteed:
            for slot in two.guaranteed.block(link).slots():
                cells[slot] = "G"
        if link in two.best_effort:
            for slot in two.best_effort.block(link).slots():
                cells[slot] = "b"
        lines.append(label_of[link].ljust(width) + "   " + "".join(cells))
    return "\n".join(lines)
