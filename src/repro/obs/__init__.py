"""repro.obs -- unified metrics and tracing for the whole stack (S33).

One seam through every hot path: the solvers (:mod:`repro.core`), the event
kernel (:mod:`repro.sim`), the emulation MAC (:mod:`repro.overlay`) and the
execution runtime (:mod:`repro.runtime`) all report into the *current*
:class:`MetricsRegistry`.  Collection is off by default and costs one
``enabled`` check per call site; nothing here touches any RNG, so enabling
it never changes experiment results.

Typical use::

    from repro import obs

    with obs.use_registry(obs.MetricsRegistry()) as reg:
        scenario.schedule()               # instrumented code runs normally
    print(reg.snapshot()["counters"])     # deterministic logical counts
    print(obs.format_profile(reg))        # wall-clock, for humans

CLI: ``python -m repro E1 --metrics out.json --trace out.jsonl --profile``.
See ``docs/observability.md`` for the metric name inventory.
"""

from repro.obs.metrics import (
    COUNT_EDGES,
    TIME_EDGES_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimerStat,
    counter,
    format_profile,
    gauge,
    get_registry,
    histogram,
    set_registry,
    span,
    timer,
    use_registry,
    write_metrics_json,
)
from repro.obs.fairness import FairnessMeter, jains_index, throughput_shares
from repro.obs.tracing import TraceWriter, read_trace

__all__ = [
    "COUNT_EDGES",
    "TIME_EDGES_S",
    "Counter",
    "FairnessMeter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TimerStat",
    "TraceWriter",
    "counter",
    "format_profile",
    "gauge",
    "get_registry",
    "histogram",
    "jains_index",
    "read_trace",
    "set_registry",
    "span",
    "throughput_shares",
    "timer",
    "use_registry",
    "write_metrics_json",
]
