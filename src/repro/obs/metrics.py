"""Zero-dependency metrics: counters, gauges, histograms, timed spans.

The paper's claims are quantitative -- ILP probes per admission, Bellman-Ford
relaxation passes per repair, events dispatched per emulated second -- but
until now the solvers and the sim engine exposed none of it.  This module is
the measurement substrate: a :class:`MetricsRegistry` holding named

- **counters** (monotone event counts: probes, relaxation passes, corrupt
  receptions),
- **gauges** (last-written level samples: variables in the current ILP),
- **histograms** with *fixed* bucket edges chosen at creation, so two
  identical runs produce byte-identical snapshots, and
- **timers** (wall-clock aggregates fed by :meth:`MetricsRegistry.span`).

Determinism contract
--------------------
:meth:`MetricsRegistry.snapshot` (and :meth:`to_json`) exclude wall-clock
timings by default: counters, gauges and histograms observe only *logical*
quantities, so the default snapshot of a seeded run is reproducible
byte-for-byte.  Timings live in a separate ``timings`` section included only
on request (``snapshot(timings=True)``) -- that is what ``--profile`` reads.

Instrumented code never imports this registry directly; it calls the
module-level helpers (:func:`counter`, :func:`histogram`, :func:`span`, ...)
which delegate to the *current* registry.  The default current registry is
disabled: every helper then returns a shared no-op instrument, so the cost
of instrumentation in production paths is one attribute lookup and one
``enabled`` check.  Enable collection for a region of code with
:func:`use_registry`::

    with obs.use_registry(obs.MetricsRegistry()) as reg:
        minimum_slots(...)
    print(reg.snapshot()["counters"]["core.minslots.probes"])

Everything here is standard library only (``repro.obs`` must be importable
from the lowest layers -- ``core``, ``sim`` -- without cycles).
"""

from __future__ import annotations

import bisect
import contextlib
import json
import math
import time
from typing import Any, Iterator, Mapping, Optional, Sequence

__all__ = [
    "COUNT_EDGES",
    "TIME_EDGES_S",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TimerStat",
    "counter",
    "format_profile",
    "gauge",
    "get_registry",
    "histogram",
    "set_registry",
    "span",
    "timer",
    "use_registry",
    "write_metrics_json",
]

#: Default bucket edges for dimensionless counts (probes, passes, sizes):
#: a 1-2-5 decade ladder.  Fixed edges are what make snapshots stable.
COUNT_EDGES: tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000)

#: Default bucket edges for durations in seconds: 1 us .. 100 s decades.
TIME_EDGES_S: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0)


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A level sample; remembers the last value set and the extrema seen."""

    __slots__ = ("name", "value", "min", "max", "samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.samples = 0

    def set(self, value: float) -> None:
        self.value = value
        self.samples += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value


class Histogram:
    """A fixed-edge histogram: ``len(edges) + 1`` buckets.

    ``counts[i]`` counts observations ``v <= edges[i]``; the final bucket
    is the overflow (``v > edges[-1]``).  Edges are fixed at creation so a
    snapshot's shape never depends on the data.
    """

    __slots__ = ("name", "edges", "counts", "count", "sum")

    def __init__(self, name: str, edges: Sequence[float]) -> None:
        if not edges or list(edges) != sorted(edges):
            raise ValueError(f"histogram {name!r}: edges must be a "
                             "non-empty ascending sequence")
        self.name = name
        self.edges = tuple(float(e) for e in edges)
        self.counts = [0] * (len(self.edges) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        self.counts[bisect.bisect_left(self.edges, value)] += 1


class TimerStat:
    """Wall-clock aggregate of one span name (count/total/min/max)."""

    __slots__ = ("name", "count", "total_s", "min_s", "max_s")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.min_s = math.inf
        self.max_s = 0.0

    def add(self, duration_s: float) -> None:
        self.count += 1
        self.total_s += duration_s
        if duration_s < self.min_s:
            self.min_s = duration_s
        if duration_s > self.max_s:
            self.max_s = duration_s

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


class _NullInstrument:
    """Shared no-op stand-in for every instrument when collection is off."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def add(self, duration_s: float) -> None:
        pass

    def __enter__(self) -> "_NullInstrument":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL = _NullInstrument()


class _Span:
    """Context manager timing one block into a :class:`TimerStat`.

    On exit the duration is folded into the registry's timer of the same
    name and, when a trace sink is attached, appended to the JSONL trace.
    """

    __slots__ = ("_registry", "name", "attrs", "_t0")

    def __init__(self, registry: "MetricsRegistry", name: str,
                 attrs: Optional[dict]) -> None:
        self._registry = registry
        self.name = name
        self.attrs = attrs
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        ended = time.perf_counter()
        duration = ended - self._t0
        registry = self._registry
        registry.timer(self.name).add(duration)
        sink = registry.trace_sink
        if sink is not None:
            sink.record(self.name, ended, duration, self.attrs)


class MetricsRegistry:
    """Named instruments plus an optional trace sink.

    Instruments are created on first use and looked up by name after; a
    histogram's edges are fixed by its first creation (a later lookup with
    different edges is an error -- silent edge drift would corrupt merged
    snapshots).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._timers: dict[str, TimerStat] = {}
        #: object with ``record(name, ended_at, duration_s, attrs)`` --
        #: see :class:`repro.obs.tracing.TraceWriter`
        self.trace_sink: Optional[Any] = None

    # -- instruments --------------------------------------------------------

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str,
                  edges: Sequence[float] = COUNT_EDGES) -> Histogram:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, edges)
        elif instrument.edges != tuple(float(e) for e in edges):
            raise ValueError(
                f"histogram {name!r} already exists with different edges")
        return instrument

    def timer(self, name: str) -> TimerStat:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        instrument = self._timers.get(name)
        if instrument is None:
            instrument = self._timers[name] = TimerStat(name)
        return instrument

    def span(self, name: str, **attrs: Any) -> "_Span":
        """Time a ``with`` block into ``timer(name)`` (and the trace)."""
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        return _Span(self, name, attrs or None)

    # -- export -------------------------------------------------------------

    def snapshot(self, timings: bool = False) -> dict:
        """A plain-dict view, deterministically ordered by name.

        Without ``timings`` the snapshot contains only logical quantities
        (counters, gauges, histograms) and is byte-stable across identical
        runs; with ``timings`` a wall-clock section is appended.
        """
        snap: dict[str, Any] = {
            "counters": {name: c.value
                         for name, c in sorted(self._counters.items())},
            "gauges": {name: {"value": g.value, "min": g.min, "max": g.max,
                              "samples": g.samples}
                       for name, g in sorted(self._gauges.items())
                       if g.samples},
            "histograms": {name: {"edges": list(h.edges),
                                  "counts": list(h.counts),
                                  "count": h.count, "sum": h.sum}
                           for name, h in sorted(self._histograms.items())},
        }
        if timings:
            snap["timings"] = {
                name: {"count": t.count, "total_s": t.total_s,
                       "min_s": t.min_s if t.count else 0.0,
                       "max_s": t.max_s}
                for name, t in sorted(self._timers.items())}
        return snap

    def to_json(self, timings: bool = False) -> str:
        """Canonical JSON encoding of :meth:`snapshot` (sorted, compact)."""
        return json.dumps(self.snapshot(timings=timings), sort_keys=True,
                          separators=(",", ":"))

    def merge_snapshot(self, snap: Optional[Mapping[str, Any]]) -> None:
        """Fold another registry's snapshot into this one.

        Counters and histogram buckets add; gauges keep the extrema and the
        *maximum* last value (the only order-independent choice); timers
        combine count/total/min/max.  Merging in a fixed order over inputs
        keeps float sums deterministic.
        """
        if not snap or not self.enabled:
            return
        for name, value in snap.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, g in snap.get("gauges", {}).items():
            gauge = self.gauge(name)
            had_samples = gauge.samples > 0
            gauge.samples += int(g.get("samples", 1))
            gauge.value = (max(gauge.value, float(g["value"]))
                           if had_samples else float(g["value"]))
            gauge.min = min(gauge.min, float(g.get("min", g["value"])))
            gauge.max = max(gauge.max, float(g.get("max", g["value"])))
        for name, h in snap.get("histograms", {}).items():
            histogram = self.histogram(name, h["edges"])
            histogram.count += int(h["count"])
            histogram.sum += float(h["sum"])
            for i, bucket in enumerate(h["counts"]):
                histogram.counts[i] += int(bucket)
        for name, t in snap.get("timings", {}).items():
            stat = self.timer(name)
            if int(t["count"]) == 0:
                continue
            stat.count += int(t["count"])
            stat.total_s += float(t["total_s"])
            stat.min_s = min(stat.min_s, float(t["min_s"]))
            stat.max_s = max(stat.max_s, float(t["max_s"]))

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._timers.clear()


# -- current-registry plumbing ----------------------------------------------

#: The disabled default: instrumentation costs one ``enabled`` check.
_DISABLED = MetricsRegistry(enabled=False)
_current = _DISABLED


def get_registry() -> MetricsRegistry:
    """The registry instrumented code is currently writing into."""
    return _current


def set_registry(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install ``registry`` (None restores the disabled default).

    Returns the previously installed registry so callers can restore it;
    prefer :func:`use_registry` which does that automatically.
    """
    global _current
    previous = _current
    _current = registry if registry is not None else _DISABLED
    return previous


@contextlib.contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scope ``registry`` as current for a ``with`` block."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


def counter(name: str) -> Counter:
    return _current.counter(name)


def gauge(name: str) -> Gauge:
    return _current.gauge(name)


def histogram(name: str, edges: Sequence[float] = COUNT_EDGES) -> Histogram:
    return _current.histogram(name, edges)


def timer(name: str) -> TimerStat:
    return _current.timer(name)


def span(name: str, **attrs: Any) -> _Span:
    return _current.span(name, **attrs)


# -- rendering ---------------------------------------------------------------

def write_metrics_json(path: str, registry: MetricsRegistry,
                       timings: bool = False) -> None:
    """Write a snapshot to ``path`` as canonical JSON plus a newline."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(registry.to_json(timings=timings))
        handle.write("\n")


def format_profile(registry: MetricsRegistry, top: int = 20) -> str:
    """A per-stage timing table plus the busiest counters.

    Stages (timer names) sort by total wall time, which is the "where did
    the run go" question ``--profile`` answers.  Rendered with no imports
    from :mod:`repro.analysis` to keep ``obs`` at the bottom of the layer
    graph.
    """
    lines = [f"{'stage':<36} {'calls':>8} {'total_s':>10} "
             f"{'mean_ms':>10} {'max_ms':>10}"]
    stats = sorted(registry._timers.values(),
                   key=lambda t: t.total_s, reverse=True)
    if not stats:
        lines.append("  (no spans recorded)")
    for stat in stats[:top]:
        lines.append(f"{stat.name:<36} {stat.count:>8} "
                     f"{stat.total_s:>10.3f} {stat.mean_s * 1e3:>10.3f} "
                     f"{stat.max_s * 1e3:>10.3f}")
    counters = sorted(registry._counters.values(),
                      key=lambda c: c.value, reverse=True)
    if counters:
        lines.append("")
        lines.append(f"{'counter':<52} {'value':>12}")
        lines.extend(f"{c.name:<52} {c.value:>12}" for c in counters[:top])
    return "\n".join(lines)
