"""Fairness and starvation instruments (S-QoS).

The WiMAX scheduling literature (arXiv:1009.6091) treats fairness and
starvation as first-class outputs next to throughput and delay: a
discipline that meets every latency contract by starving best effort is
not "better", it sits elsewhere on the trade-off curve.  This module
provides the two pure computations -- Jain's fairness index and
normalized throughput shares -- plus a :class:`FairnessMeter` that
publishes them into the current metrics registry under the same
deterministic-snapshot contract as every other instrument (no wall
clock, no RNG; identical runs produce identical snapshots).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.obs.metrics import counter, gauge


def jains_index(values: Sequence[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    1.0 when all values are equal; ``1/n`` when one value monopolizes.
    An empty or all-zero population is perfectly fair by convention.
    """
    xs = [float(v) for v in values]
    if not xs:
        return 1.0
    square_sum = sum(x * x for x in xs)
    if square_sum == 0.0:
        return 1.0
    total = sum(xs)
    return (total * total) / (len(xs) * square_sum)


def throughput_shares(delivered: Mapping[str, float]) -> dict[str, float]:
    """Each key's fraction of the total delivered volume (sums to 1.0)."""
    total = float(sum(delivered.values()))
    if total <= 0.0:
        return {key: 0.0 for key in delivered}
    return {key: value / total for key, value in delivered.items()}


class FairnessMeter:
    """Publish fairness/starvation readings for one scheduling domain.

    ``prefix`` namespaces the metric names (e.g. ``qos``); readings land
    in the *current* registry so experiments wrap themselves in
    :func:`repro.obs.use_registry` exactly like the solver instruments.
    """

    def __init__(self, prefix: str = "qos") -> None:
        self.prefix = prefix

    def record_shares(self, delivered_bits: Mapping[str, float]) -> None:
        """Per-class throughput shares and the cross-class Jain index."""
        shares = throughput_shares(delivered_bits)
        for name, share in shares.items():
            gauge(f"{self.prefix}.share.{name}").set(share)
        gauge(f"{self.prefix}.fairness.jain_index").set(
            jains_index(list(delivered_bits.values())))

    def record_flow_fairness(self, satisfaction: Mapping[str, float]) -> None:
        """Jain index over per-flow satisfaction (delivered/offered)."""
        gauge(f"{self.prefix}.fairness.flow_jain_index").set(
            jains_index(list(satisfaction.values())))

    def record_starvation(self, service_class: str,
                          max_queue_age_s: float) -> None:
        gauge(f"{self.prefix}.starvation.max_queue_age_s."
              f"{service_class}").set(max_queue_age_s)

    def count_violation(self, service_class: str, kind: str,
                        amount: int = 1) -> None:
        """Contract-violation counter, e.g. kind=``latency``/``jitter``."""
        counter(f"{self.prefix}.contract.{kind}_violations."
                f"{service_class}").inc(amount)
