"""JSONL span traces off the monotonic clock.

A :class:`TraceWriter` is the pluggable trace sink of a
:class:`~repro.obs.metrics.MetricsRegistry`: every ``span(...)`` block that
closes while the sink is attached appends one JSON line

    {"name": "core.ilp.solve", "t_s": 0.0412, "dur_s": 0.0389, ...attrs}

where ``t_s`` is the span's *start*, in seconds since the writer was opened
(monotonic -- :func:`time.perf_counter` -- so spans order correctly even
across wall-clock adjustments).  The format is line-delimited and
append-only for the same reasons as the run ledger: tolerant of crashes and
trivially greppable / loadable with one ``json.loads`` per line.

This module is stdlib-only, like everything in ``repro.obs``.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Optional


class TraceWriter:
    """Append spans to a JSONL file; usable as a context manager."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = os.fspath(path)
        self._handle = open(self.path, "w", encoding="utf-8")
        self._epoch = time.perf_counter()
        self.spans_written = 0

    def record(self, name: str, ended_at: float, duration_s: float,
               attrs: Optional[dict[str, Any]]) -> None:
        """Append one span.  ``ended_at`` is a ``perf_counter`` reading."""
        if self._handle is None:
            return
        entry: dict[str, Any] = {
            "name": name,
            "t_s": round(ended_at - duration_s - self._epoch, 9),
            "dur_s": round(duration_s, 9),
        }
        if attrs:
            for key, value in attrs.items():
                entry.setdefault(key, _plain(value))
        self._handle.write(json.dumps(entry) + "\n")
        self.spans_written += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _plain(value: Any) -> Any:
    """Coerce a span attribute to something JSON can hold."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    return repr(value)


def read_trace(path: str | os.PathLike) -> list[dict]:
    """Load every well-formed span line; silently skip torn ones."""
    spans: list[dict] = []
    try:
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    spans.append(json.loads(line))
                except json.JSONDecodeError:
                    continue
    except OSError:
        return []
    return spans
