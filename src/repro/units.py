"""Unit helpers used throughout the library.

Internally the simulator keeps *time in seconds* (floats) and *data sizes in
bits* (ints).  These helpers exist so that call sites read naturally
(``milliseconds(20)``) instead of being littered with magic scale factors,
and so that unit mistakes are grep-able.
"""

from __future__ import annotations

#: One microsecond, in seconds.
US = 1e-6
#: One millisecond, in seconds.
MS = 1e-3

#: One kilobit per second, in bits per second.
KBPS = 1e3
#: One megabit per second, in bits per second.
MBPS = 1e6


def microseconds(value: float) -> float:
    """Convert *value* microseconds to seconds."""
    return value * US


def milliseconds(value: float) -> float:
    """Convert *value* milliseconds to seconds."""
    return value * MS


def seconds(value: float) -> float:
    """Identity helper for symmetry; *value* is already in seconds."""
    return float(value)


def kbps(value: float) -> float:
    """Convert *value* kilobits/second to bits/second."""
    return value * KBPS


def mbps(value: float) -> float:
    """Convert *value* megabits/second to bits/second."""
    return value * MBPS


def bytes_to_bits(num_bytes: int) -> int:
    """Convert a byte count to bits."""
    return int(num_bytes) * 8


def bits_to_bytes(num_bits: int) -> float:
    """Convert a bit count to (possibly fractional) bytes."""
    return num_bits / 8


def ppm(value: float) -> float:
    """Convert parts-per-million to a dimensionless ratio.

    Clock drift rates are conventionally quoted in ppm; a 10 ppm oscillator
    gains or loses at most ``ppm(10) * elapsed`` seconds over ``elapsed``
    seconds of true time.
    """
    return value * 1e-6
