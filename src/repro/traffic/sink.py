"""Per-flow delivery records."""

from __future__ import annotations

from typing import Optional

from repro.net.packet import Packet
from repro.traffic.qos import FlowQoS


class FlowSink:
    """Collects per-packet delivery data for one flow."""

    def __init__(self, flow_name: str) -> None:
        self.flow_name = flow_name
        #: (seq, created_s, delivered_s) for every delivered packet
        self.deliveries: list[tuple[int, float, float]] = []
        self._seen: set[int] = set()

    def record(self, packet: Packet, now: float) -> None:
        if packet.seq in self._seen:
            return  # duplicate delivery (should not happen; be safe)
        self._seen.add(packet.seq)
        self.deliveries.append((packet.seq, packet.created_s, now))

    @property
    def received(self) -> int:
        return len(self.deliveries)

    def delays(self) -> list[float]:
        return [done - created for ____, created, done in self.deliveries]

    def qos(self, sent: int, warmup_s: float = 0.0) -> FlowQoS:
        """Summarize this flow's QoS given how many packets were offered.

        Packets created before ``warmup_s`` are excluded from delay stats
        (they hit the cold-start transient) but still count for loss.
        """
        delays = [done - created for ____, created, done in self.deliveries
                  if created >= warmup_s]
        return FlowQoS.from_samples(self.flow_name, sent=sent,
                                    received=self.received, delays=delays)


class SinkRegistry:
    """All sinks of a simulation, keyed by flow name."""

    def __init__(self) -> None:
        self._sinks: dict[str, FlowSink] = {}

    def sink(self, flow_name: str) -> FlowSink:
        if flow_name not in self._sinks:
            self._sinks[flow_name] = FlowSink(flow_name)
        return self._sinks[flow_name]

    def on_delivered(self, packet: Packet, now: float) -> None:
        """Forwarder callback: route the record to the flow's sink."""
        self.sink(packet.flow).record(packet, now)

    def get(self, flow_name: str) -> Optional[FlowSink]:
        return self._sinks.get(flow_name)

    def flows(self) -> list[str]:
        return sorted(self._sinks)
