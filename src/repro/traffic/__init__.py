"""Workloads and QoS metrics (system S21 in DESIGN.md)."""

from repro.traffic.qos import FlowQoS, e_model_r_factor, mos_from_r
from repro.traffic.sink import FlowSink, SinkRegistry
from repro.traffic.sources import CbrSource, OnOffVoipSource, PoissonSource
from repro.traffic.voip import G711, G723, G729, VoipCodec

__all__ = [
    "CbrSource",
    "FlowQoS",
    "FlowSink",
    "G711",
    "G723",
    "G729",
    "OnOffVoipSource",
    "PoissonSource",
    "SinkRegistry",
    "VoipCodec",
    "e_model_r_factor",
    "mos_from_r",
]
