"""VoIP codec models.

A codec is characterized by its packetization: every ``packet_interval_s``
it emits one packet of ``payload_bytes`` of voice, to which RTP/UDP/IP
headers (40 bytes, uncompressed) are added.  The ``ie`` / ``bpl``
parameters are the ITU-T G.113 equipment-impairment inputs the E-model
(:mod:`repro.traffic.qos`) uses to score calls.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import bytes_to_bits

#: RTP (12) + UDP (8) + IPv4 (20) headers.
RTP_UDP_IP_BYTES = 40


@dataclass(frozen=True)
class VoipCodec:
    """One voice codec's packetization and E-model parameters."""

    name: str
    payload_bytes: int
    packet_interval_s: float
    #: ITU-T G.113 equipment impairment factor
    ie: float
    #: ITU-T G.113 packet-loss robustness factor
    bpl: float

    def __post_init__(self) -> None:
        if self.payload_bytes <= 0 or self.packet_interval_s <= 0:
            raise ConfigurationError("codec parameters must be positive")

    @property
    def packet_bits(self) -> int:
        """On-wire packet size (voice payload + RTP/UDP/IP)."""
        return bytes_to_bits(self.payload_bytes + RTP_UDP_IP_BYTES)

    @property
    def packets_per_second(self) -> float:
        return 1.0 / self.packet_interval_s

    @property
    def voice_rate_bps(self) -> float:
        """Codec bit rate (payload only)."""
        return bytes_to_bits(self.payload_bytes) / self.packet_interval_s

    @property
    def wire_rate_bps(self) -> float:
        """On-wire rate including RTP/UDP/IP overhead."""
        return self.packet_bits / self.packet_interval_s


#: G.711, 64 kb/s, 20 ms packetization: 160 B voice -> 200 B on wire.
G711 = VoipCodec(name="G.711", payload_bytes=160, packet_interval_s=0.020,
                 ie=0.0, bpl=4.3)

#: G.729A, 8 kb/s, 20 ms packetization: 20 B voice -> 60 B on wire.
G729 = VoipCodec(name="G.729", payload_bytes=20, packet_interval_s=0.020,
                 ie=11.0, bpl=19.0)

#: G.723.1, 6.3 kb/s, 30 ms packetization: 24 B voice -> 64 B on wire.
G723 = VoipCodec(name="G.723.1", payload_bytes=24, packet_interval_s=0.030,
                 ie=15.0, bpl=16.1)
