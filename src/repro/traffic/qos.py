"""QoS metrics: delay statistics, jitter, loss, and the ITU-T E-model.

The E-model (ITU-T G.107) condenses delay and loss into a scalar
transmission rating ``R`` (0-100), mapped to a Mean Opinion Score.  We use
the standard simplified form for VoIP planning:

    ``R = R0 - Id(d) - Ie_eff(loss)``

with ``R0 = 93.2``, the delay impairment ``Id = 0.024 d + 0.11 (d - 177.3)
H(d - 177.3)`` (``d`` = one-way mouth-to-ear delay in ms), and the
effective equipment impairment ``Ie_eff = Ie + (95 - Ie) * Ppl / (Ppl +
Bpl)`` from the codec's G.113 parameters.  Mouth-to-ear delay adds codec
lookahead + jitter-buffer allowance (default 35 ms) to the measured
network delay.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import ConfigurationError
from repro.traffic.voip import VoipCodec

#: default codec + jitter buffer allowance added to network delay (seconds)
DEFAULT_EQUIPMENT_DELAY_S = 0.035


def e_model_r_factor(one_way_delay_s: float, loss_fraction: float,
                     codec: VoipCodec) -> float:
    """Transmission rating R for the given delay/loss operating point."""
    if one_way_delay_s < 0:
        raise ConfigurationError("delay must be non-negative")
    if not 0.0 <= loss_fraction <= 1.0:
        raise ConfigurationError("loss must be a fraction in [0, 1]")
    delay_ms = one_way_delay_s * 1000.0
    delay_impairment = 0.024 * delay_ms
    if delay_ms > 177.3:
        delay_impairment += 0.11 * (delay_ms - 177.3)
    loss_percent = loss_fraction * 100.0
    ie_eff = codec.ie + (95.0 - codec.ie) * loss_percent / (loss_percent
                                                            + codec.bpl)
    return 93.2 - delay_impairment - ie_eff


def mos_from_r(r_factor: float) -> float:
    """ITU-T G.107 mapping from R to Mean Opinion Score (1.0-4.5)."""
    if r_factor <= 0:
        return 1.0
    if r_factor >= 100:
        return 4.5
    mos = (1.0 + 0.035 * r_factor
           + 7e-6 * r_factor * (r_factor - 60.0) * (100.0 - r_factor))
    # the G.107 cubic dips slightly below 1 for small positive R; MOS is
    # defined on [1, 4.5]
    return min(4.5, max(1.0, mos))


def rfc3550_jitter(delays: Sequence[float]) -> float:
    """RFC 3550 interarrival jitter estimate from per-packet delays."""
    jitter = 0.0
    for previous, current in zip(delays, delays[1:]):
        jitter += (abs(current - previous) - jitter) / 16.0
    return jitter


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile on pre-sorted data."""
    if not sorted_values:
        raise ConfigurationError("no samples")
    rank = max(0, min(len(sorted_values) - 1,
                      math.ceil(q / 100.0 * len(sorted_values)) - 1))
    return sorted_values[rank]


@dataclass(frozen=True)
class FlowQoS:
    """Per-flow QoS summary."""

    flow_name: str
    sent: int
    received: int
    mean_delay_s: float
    p50_delay_s: float
    p95_delay_s: float
    p99_delay_s: float
    max_delay_s: float
    jitter_s: float
    #: False when no packet was delivered: every delay statistic is NaN
    #: and must serialize as null, not as the non-strict-JSON token NaN.
    has_samples: bool = True

    @classmethod
    def from_samples(cls, flow_name: str, sent: int, received: int,
                     delays: Sequence[float]) -> "FlowQoS":
        if not delays:
            nan = float("nan")
            return cls(flow_name, sent, received, nan, nan, nan, nan, nan,
                       nan, has_samples=False)
        ordered = sorted(delays)
        return cls(
            flow_name=flow_name,
            sent=sent,
            received=received,
            mean_delay_s=sum(ordered) / len(ordered),
            p50_delay_s=_percentile(ordered, 50),
            p95_delay_s=_percentile(ordered, 95),
            p99_delay_s=_percentile(ordered, 99),
            max_delay_s=ordered[-1],
            jitter_s=rfc3550_jitter(list(delays)),
            has_samples=True,
        )

    def to_dict(self) -> dict:
        """Strict-JSON-safe mapping: delay fields are ``None`` when the
        flow delivered nothing (``json.dumps`` would otherwise emit the
        non-standard ``NaN`` token and break snapshot byte-stability)."""
        def _field(value: float):
            return value if self.has_samples else None

        return {
            "flow_name": self.flow_name,
            "sent": self.sent,
            "received": self.received,
            "has_samples": self.has_samples,
            "mean_delay_s": _field(self.mean_delay_s),
            "p50_delay_s": _field(self.p50_delay_s),
            "p95_delay_s": _field(self.p95_delay_s),
            "p99_delay_s": _field(self.p99_delay_s),
            "max_delay_s": _field(self.max_delay_s),
            "jitter_s": _field(self.jitter_s),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FlowQoS":
        nan = float("nan")
        fields = {key: (nan if value is None else value)
                  for key, value in data.items()}
        return cls(**fields)

    @property
    def loss_fraction(self) -> float:
        if self.sent == 0:
            return 0.0
        return max(0.0, 1.0 - self.received / self.sent)

    def r_factor(self, codec: VoipCodec,
                 equipment_delay_s: float = DEFAULT_EQUIPMENT_DELAY_S,
                 delay_metric: str = "p95") -> float:
        """E-model rating using this flow's measured delay and loss.

        ``delay_metric`` picks which delay statistic stands in for the
        one-way delay ("mean", "p50", "p95", "p99", "max"): VoIP planning
        conventionally uses a high percentile, since the jitter buffer must
        cover it.
        """
        delay = {
            "mean": self.mean_delay_s,
            "p50": self.p50_delay_s,
            "p95": self.p95_delay_s,
            "p99": self.p99_delay_s,
            "max": self.max_delay_s,
        }.get(delay_metric)
        if delay is None:
            raise ConfigurationError(f"unknown delay metric {delay_metric!r}")
        if math.isnan(delay):
            return 0.0  # nothing delivered: worst possible call
        return e_model_r_factor(delay + equipment_delay_s,
                                self.loss_fraction, codec)

    def mos(self, codec: VoipCodec,
            equipment_delay_s: float = DEFAULT_EQUIPMENT_DELAY_S,
            delay_metric: str = "p95") -> float:
        return mos_from_r(self.r_factor(codec, equipment_delay_s,
                                        delay_metric))

    def meets(self, max_delay_s: Optional[float] = None,
              max_loss: Optional[float] = None,
              delay_metric: str = "p95") -> bool:
        """Check this flow against hard QoS targets."""
        if max_delay_s is not None:
            delay = {"mean": self.mean_delay_s, "p50": self.p50_delay_s,
                     "p95": self.p95_delay_s, "p99": self.p99_delay_s,
                     "max": self.max_delay_s}[delay_metric]
            if math.isnan(delay) or delay > max_delay_s:
                return False
        if max_loss is not None and self.loss_fraction > max_loss:
            return False
        return True
