"""Traffic sources: simulation processes that originate packets.

Every source drives a routed :class:`~repro.net.flows.Flow` through an
``originate(packet, now)`` callable (normally
:meth:`~repro.net.forwarding.SourceRoutedForwarder.originate`).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.net.flows import Flow
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.traffic.voip import VoipCodec

Originate = Callable[[Packet, float], bool]


class _SourceBase:
    """Common bookkeeping: sequence numbers and the sent counter.

    ``priority`` is stamped on every packet (0 = guaranteed class); flows
    without a delay budget default to the elastic class (priority 1).
    """

    def __init__(self, sim: Simulator, flow: Flow, originate: Originate,
                 stop_s: Optional[float] = None,
                 priority: Optional[int] = None) -> None:
        if not flow.is_routed:
            raise ConfigurationError(f"flow {flow.name} must be routed")
        self.sim = sim
        self.flow = flow
        self.originate = originate
        self.stop_s = stop_s
        if priority is None:
            priority = 0 if flow.delay_budget_s is not None else 1
        self.priority = priority
        self.sent = 0

    def _emit(self, size_bits: int) -> None:
        now = self.sim.now
        if self.stop_s is not None and now >= self.stop_s:
            return
        packet = Packet(flow=self.flow.name, seq=self.sent,
                        size_bits=size_bits, created_s=now,
                        route=self.flow.route, priority=self.priority)
        self.sent += 1
        self.originate(packet, now)


class CbrSource(_SourceBase):
    """Constant-bit-rate source: one fixed-size packet per interval.

    ``start_s`` staggers flows so they do not beat against the TDMA frame
    in lockstep; give each flow a distinct phase within one interval.
    """

    def __init__(self, sim: Simulator, flow: Flow, originate: Originate,
                 packet_bits: int, interval_s: float,
                 start_s: float = 0.0, stop_s: Optional[float] = None) -> None:
        super().__init__(sim, flow, originate, stop_s)
        if packet_bits <= 0 or interval_s <= 0:
            raise ConfigurationError("packet size and interval must be positive")
        self.packet_bits = packet_bits
        self.interval_s = interval_s
        sim.schedule(start_s, self._tick)

    def _tick(self) -> None:
        if self.stop_s is not None and self.sim.now >= self.stop_s:
            return
        self._emit(self.packet_bits)
        self.sim.schedule(self.interval_s, self._tick)

    @classmethod
    def for_codec(cls, sim: Simulator, flow: Flow, originate: Originate,
                  codec: VoipCodec, start_s: float = 0.0,
                  stop_s: Optional[float] = None) -> "CbrSource":
        """A steady (no silence suppression) VoIP stream for ``codec``."""
        return cls(sim, flow, originate, codec.packet_bits,
                   codec.packet_interval_s, start_s, stop_s)


class PoissonSource(_SourceBase):
    """Poisson arrivals of fixed-size packets (best-effort background)."""

    def __init__(self, sim: Simulator, flow: Flow, originate: Originate,
                 packet_bits: int, rate_pps: float,
                 rng: np.random.Generator,
                 start_s: float = 0.0, stop_s: Optional[float] = None) -> None:
        super().__init__(sim, flow, originate, stop_s)
        if packet_bits <= 0 or rate_pps <= 0:
            raise ConfigurationError("packet size and rate must be positive")
        self.packet_bits = packet_bits
        self.rate_pps = rate_pps
        self.rng = rng
        sim.schedule(start_s + self._gap(), self._tick)

    def _gap(self) -> float:
        return float(self.rng.exponential(1.0 / self.rate_pps))

    def _tick(self) -> None:
        if self.stop_s is not None and self.sim.now >= self.stop_s:
            return
        self._emit(self.packet_bits)
        self.sim.schedule(self._gap(), self._tick)


class OnOffVoipSource(_SourceBase):
    """VoIP with silence suppression: exponential talk-spurt/silence cycles.

    During a talk spurt the source behaves like :class:`CbrSource` for its
    codec; during silence it emits nothing.  The classic Brady model uses
    ~1.0 s mean talk and ~1.35 s mean silence (~42 % activity).
    """

    def __init__(self, sim: Simulator, flow: Flow, originate: Originate,
                 codec: VoipCodec, rng: np.random.Generator,
                 mean_talk_s: float = 1.0, mean_silence_s: float = 1.35,
                 start_s: float = 0.0, stop_s: Optional[float] = None) -> None:
        super().__init__(sim, flow, originate, stop_s)
        if mean_talk_s <= 0 or mean_silence_s <= 0:
            raise ConfigurationError("spurt durations must be positive")
        self.codec = codec
        self.rng = rng
        self.mean_talk_s = mean_talk_s
        self.mean_silence_s = mean_silence_s
        self._talking = False
        self._spurt_end = 0.0
        sim.schedule(start_s, self._start_talk)

    def _start_talk(self) -> None:
        if self.stop_s is not None and self.sim.now >= self.stop_s:
            return
        self._talking = True
        self._spurt_end = self.sim.now + float(
            self.rng.exponential(self.mean_talk_s))
        self._tick()

    def _tick(self) -> None:
        if self.stop_s is not None and self.sim.now >= self.stop_s:
            return
        if self.sim.now >= self._spurt_end:
            self._talking = False
            self.sim.schedule(float(self.rng.exponential(self.mean_silence_s)),
                              self._start_talk)
            return
        self._emit(self.codec.packet_bits)
        self.sim.schedule(self.codec.packet_interval_s, self._tick)
