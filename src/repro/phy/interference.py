"""Cross-validation between conflict models and channel/SINR physics.

The scheduler's conflict graph (:mod:`repro.core.conflict`, or any
:class:`~repro.phy.models.InterferenceModel`) is an *abstraction* of the
channel: two links it declares non-conflicting must genuinely be unable
to corrupt each other's receptions.  This module is the **containment
validator** between backends -- it derives a ground-truth "can actually
interfere" relation and checks the abstraction against it:

- with no ``truth=``, the ground truth is the broadcast channel's exact
  collision rule (:func:`interference_graph`) -- the safety argument for
  running the 2-hop protocol model on this PHY (asserted by the test
  suite for every generator topology, interpreted by E11);
- with ``truth=`` an :class:`~repro.phy.models.SinrModel`, the ground
  truth is physical-model interference, and
  :func:`uncovered_interference` lists the hidden-node-style pairs the
  protocol abstraction misses (E23's headline column).

Under the channel's rules, simultaneous transmissions on directed links
``a = (ta, ra)`` and ``b = (tb, rb)`` damage at least one *intended*
reception iff any of:

- the links share a node (a radio cannot do two things at once);
- ``tb`` is a radio neighbour of ``ra`` (b's signal collides at a's
  receiver);
- ``ta`` is a radio neighbour of ``rb`` (symmetrically).
"""

from __future__ import annotations

from typing import Optional, Union

import networkx as nx

from repro.core.conflict import conflict_graph
from repro.net.topology import Link, MeshTopology

ModelLike = Union[int, "InterferenceModel", None]  # noqa: F821


def interference_graph(topology: MeshTopology) -> nx.Graph:
    """The exact link-interference relation implied by the channel model.

    Built from the node -> links incidence maps, so the work is
    proportional to the actual interference edges (the old
    all-pairs double loop was O(L^2) regardless of the answer --
    ``test_bench_micro_interference_graph`` tracks the difference).
    Vertex set, edge set and insertion order are identical to the
    pairwise scan's.
    """
    links = topology.links  # sorted directed links
    graph = nx.Graph()
    graph.add_nodes_from(links)
    out_links: dict[int, list[Link]] = {}
    in_links: dict[int, list[Link]] = {}
    for link in links:
        out_links.setdefault(link[0], []).append(link)
        in_links.setdefault(link[1], []).append(link)
    for ta, ra in links:
        link_a = (ta, ra)
        candidates: set[Link] = set()
        for node in (ta, ra):  # shared-radio conflicts
            candidates.update(out_links.get(node, ()))
            candidates.update(in_links.get(node, ()))
        for nb in topology.graph[ra]:  # tb in N(ra): collides at a's receiver
            candidates.update(out_links.get(nb, ()))
        for nb in topology.graph[ta]:  # ta in N(rb): collides at b's receiver
            candidates.update(in_links.get(nb, ()))
        # Emit each undirected edge once, from its smaller endpoint, in
        # sorted order -- the exact insertion order of an i < j pairwise
        # scan over the sorted link list.
        for link_b in sorted(c for c in candidates if c > link_a):
            graph.add_edge(link_a, link_b)
    return graph


def _model_graph(topology: MeshTopology, hops: int,
                 model: ModelLike) -> nx.Graph:
    """The abstraction under test: k-hop by default, or any model."""
    if model is None:
        return conflict_graph(topology, hops=hops)
    from repro.phy.models import coerce_interference

    return coerce_interference(model).conflict_graph(topology)


def _truth_graph(topology: MeshTopology,
                 truth: Optional[object]) -> nx.Graph:
    """The ground-truth relation: channel-exact, a model, or a graph."""
    if truth is None:
        return interference_graph(topology)
    if isinstance(truth, nx.Graph):
        return truth
    from repro.phy.models import coerce_interference

    return coerce_interference(truth).conflict_graph(topology)


def uncovered_interference(topology: MeshTopology, hops: int = 2,
                           model: ModelLike = None,
                           truth: Optional[object] = None
                           ) -> list[tuple[Link, Link]]:
    """Interfering link pairs the abstraction fails to separate.

    An empty list certifies that every schedule conflict-free under the
    abstraction (``hops``, or ``model=``) is collision-free under the
    ground truth (the channel rule, or ``truth=`` -- an
    :class:`~repro.phy.models.InterferenceModel`, a bare hops int, or a
    prebuilt conflict graph).  The 1-hop model typically leaves pairs
    uncovered (hidden-terminal style); the 2-hop model covers the
    channel rule on every generator topology -- but *not* necessarily an
    SINR ground truth, whose interference reaches past two hops: those
    uncovered pairs are exactly what E23 measures.
    """
    physical = _truth_graph(topology, truth)
    abstraction = _model_graph(topology, hops, model)
    missing = [tuple(sorted(edge)) for edge in physical.edges
               if not abstraction.has_edge(*edge)]
    return sorted(missing)


def overcautious_pairs(topology: MeshTopology, hops: int = 2,
                       model: ModelLike = None,
                       truth: Optional[object] = None
                       ) -> list[tuple[Link, Link]]:
    """Pairs the abstraction separates although the truth never corrupts.

    This is the price of the abstraction: lost spatial reuse.  E11's
    1-hop vs 2-hop comparison quantifies it in slots; under an SINR
    truth it shows where the protocol model is *conservative* rather
    than unsafe.
    """
    physical = _truth_graph(topology, truth)
    abstraction = _model_graph(topology, hops, model)
    extra = [tuple(sorted(edge)) for edge in abstraction.edges
             if not physical.has_edge(*edge)]
    return sorted(extra)
