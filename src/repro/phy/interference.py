"""Cross-validation between the conflict model and the channel physics.

The scheduler's conflict graph (:mod:`repro.core.conflict`) is an
*abstraction* of the channel (:mod:`repro.phy.channel`): two links it
declares non-conflicting must genuinely be unable to corrupt each other's
receptions.  This module derives the exact "can actually interfere" relation
from the channel's rules and checks containment -- the safety argument for
running the 2-hop model on this PHY (used by the ablation tests and by E11's
interpretation).

Under the channel's physics, simultaneous transmissions on directed links
``a = (ta, ra)`` and ``b = (tb, rb)`` damage at least one *intended*
reception iff any of:

- the links share a node (a radio cannot do two things at once);
- ``tb`` is a radio neighbour of ``ra`` (b's signal collides at a's
  receiver);
- ``ta`` is a radio neighbour of ``rb`` (symmetrically).
"""

from __future__ import annotations

import networkx as nx

from repro.core.conflict import conflict_graph
from repro.net.topology import Link, MeshTopology


def interference_graph(topology: MeshTopology) -> nx.Graph:
    """The exact link-interference relation implied by the channel model."""
    graph = nx.Graph()
    graph.add_nodes_from(topology.links)
    links = topology.links
    neighbor_sets = {node: set(topology.neighbors(node))
                     for node in topology.nodes}
    for i, (ta, ra) in enumerate(links):
        for tb, rb in links[i + 1:]:
            link_a, link_b = (ta, ra), (tb, rb)
            shares_node = bool({ta, ra} & {tb, rb})
            hits_a = tb in neighbor_sets[ra]
            hits_b = ta in neighbor_sets[rb]
            if shares_node or hits_a or hits_b:
                graph.add_edge(link_a, link_b)
    return graph


def uncovered_interference(topology: MeshTopology,
                           hops: int = 2) -> list[tuple[Link, Link]]:
    """Interfering link pairs the k-hop conflict model fails to separate.

    An empty list certifies that every schedule conflict-free under the
    given model is collision-free on this channel.  The 1-hop model
    typically leaves pairs uncovered (hidden-terminal style); the 2-hop
    model must cover everything -- asserted by the test suite for every
    generator topology.
    """
    physical = interference_graph(topology)
    model = conflict_graph(topology, hops=hops)
    missing = [tuple(sorted(edge)) for edge in physical.edges
               if not model.has_edge(*edge)]
    return sorted(missing)


def overcautious_pairs(topology: MeshTopology,
                       hops: int = 2) -> list[tuple[Link, Link]]:
    """Pairs the model separates although the channel never corrupts them.

    This is the price of the k-hop abstraction: lost spatial reuse.  E11's
    1-hop vs 2-hop comparison quantifies it in slots.
    """
    physical = interference_graph(topology)
    model = conflict_graph(topology, hops=hops)
    extra = [tuple(sorted(edge)) for edge in model.edges
             if not physical.has_edge(*edge)]
    return sorted(extra)
