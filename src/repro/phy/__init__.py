"""Radio/PHY substrate (system S3 in DESIGN.md) and the pluggable
interference-model seam (S39)."""

from repro.phy.channel import BroadcastChannel, Reception
from repro.phy.frames import FrameKind, PhyFrame
from repro.phy.interference import (
    interference_graph,
    overcautious_pairs,
    uncovered_interference,
)
from repro.phy.models import (
    ChannelCouplings,
    InterferenceModel,
    McsEntry,
    McsTable,
    PathLossModel,
    ProtocolModel,
    SinrModel,
    coerce_interference,
)
from repro.phy.radio import DOT11A_6M, DOT11B_11M, DOT11G_54M, PhyParams

__all__ = [
    "BroadcastChannel",
    "ChannelCouplings",
    "DOT11A_6M",
    "DOT11B_11M",
    "DOT11G_54M",
    "FrameKind",
    "InterferenceModel",
    "McsEntry",
    "McsTable",
    "PathLossModel",
    "PhyFrame",
    "PhyParams",
    "ProtocolModel",
    "Reception",
    "SinrModel",
    "coerce_interference",
    "interference_graph",
    "overcautious_pairs",
    "uncovered_interference",
]
