"""Radio/PHY substrate (system S3 in DESIGN.md)."""

from repro.phy.channel import BroadcastChannel, Reception
from repro.phy.frames import FrameKind, PhyFrame
from repro.phy.interference import (
    interference_graph,
    overcautious_pairs,
    uncovered_interference,
)
from repro.phy.radio import DOT11A_6M, DOT11B_11M, DOT11G_54M, PhyParams

__all__ = [
    "BroadcastChannel",
    "DOT11A_6M",
    "DOT11B_11M",
    "DOT11G_54M",
    "FrameKind",
    "PhyFrame",
    "PhyParams",
    "Reception",
    "interference_graph",
    "overcautious_pairs",
    "uncovered_interference",
]
