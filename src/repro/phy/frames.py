"""PHY frame model.

A :class:`PhyFrame` is what a radio hands to the channel: a kind, a size in
bits (MAC header + payload), addressing, and an opaque payload that upper
layers interpret (an application packet, a sync beacon's timestamp, a TDMA
shim fragment, ...).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional


class FrameKind(enum.Enum):
    """MAC-level frame classes used by the simulators."""

    DATA = "data"
    ACK = "ack"
    RTS = "rts"
    CTS = "cts"
    BEACON = "beacon"
    CONTROL = "control"


_frame_ids = itertools.count()


@dataclass
class PhyFrame:
    """An on-air frame.

    Parameters
    ----------
    kind:
        Frame class (data, ack, beacon, control).
    src:
        Transmitting node id.
    dst:
        Destination node id, or ``None`` for broadcast.
    size_bits:
        Total MAC-frame size (headers included); determines airtime.
    payload:
        Opaque upper-layer object carried by the frame.
    """

    kind: FrameKind
    src: int
    dst: Optional[int]
    size_bits: int
    payload: Any = None
    #: Unique id for tracing and ACK matching.
    frame_id: int = field(default_factory=lambda: next(_frame_ids))

    @property
    def is_broadcast(self) -> bool:
        return self.dst is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        target = "bcast" if self.is_broadcast else str(self.dst)
        return (f"PhyFrame#{self.frame_id}({self.kind.value}, {self.src}->"
                f"{target}, {self.size_bits}b)")
