"""PHY parameter sets and airtime arithmetic.

Airtime of a frame is the PLCP preamble plus PLCP header plus the MAC frame
at the data rate (plus, for 802.11a/g OFDM, symbol padding -- approximated
here by plain division, which is accurate to one 4 us symbol and irrelevant
to the shapes this library reproduces).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import MBPS, US


@dataclass(frozen=True)
class PhyParams:
    """A radio's physical-layer timing parameters.

    Parameters
    ----------
    name:
        Label for reports ("802.11b/11Mbps", ...).
    data_rate_bps:
        Rate used for data frames.
    basic_rate_bps:
        Rate used for control frames (ACKs, beacons); 802.11 sends these at
        a mandatory basic rate so all stations can decode them.
    plcp_overhead_s:
        Preamble + PLCP header duration prepended to every frame.
    propagation_delay_s:
        One-hop propagation delay (mesh links are < 1 km, so ~1-3 us).
    """

    name: str
    data_rate_bps: float
    basic_rate_bps: float
    plcp_overhead_s: float
    propagation_delay_s: float = 1e-6

    def __post_init__(self) -> None:
        if self.data_rate_bps <= 0 or self.basic_rate_bps <= 0:
            raise ConfigurationError("rates must be positive")
        if self.plcp_overhead_s < 0 or self.propagation_delay_s < 0:
            raise ConfigurationError("overheads must be non-negative")

    def airtime(self, size_bits: int, basic_rate: bool = False) -> float:
        """Time on air for a frame of ``size_bits`` MAC bits."""
        if size_bits < 0:
            raise ConfigurationError(f"negative frame size {size_bits}")
        rate = self.basic_rate_bps if basic_rate else self.data_rate_bps
        return self.plcp_overhead_s + size_bits / rate

    def bits_in(self, duration_s: float, basic_rate: bool = False) -> int:
        """Largest MAC frame (bits) whose airtime fits in ``duration_s``."""
        rate = self.basic_rate_bps if basic_rate else self.data_rate_bps
        usable = duration_s - self.plcp_overhead_s
        if usable <= 0:
            return 0
        return int(usable * rate)


#: 802.11b at 11 Mb/s with long preamble (192 us), control at 1 Mb/s --
#: the hardware class the ICDCS paper's testbed used.
DOT11B_11M = PhyParams(
    name="802.11b/11Mbps",
    data_rate_bps=11 * MBPS,
    basic_rate_bps=1 * MBPS,
    plcp_overhead_s=192 * US,
)

#: 802.11a at 6 Mb/s (20 us preamble), control at 6 Mb/s.
DOT11A_6M = PhyParams(
    name="802.11a/6Mbps",
    data_rate_bps=6 * MBPS,
    basic_rate_bps=6 * MBPS,
    plcp_overhead_s=20 * US,
)

#: 802.11g at 54 Mb/s (20 us preamble), control at 6 Mb/s.
DOT11G_54M = PhyParams(
    name="802.11g/54Mbps",
    data_rate_bps=54 * MBPS,
    basic_rate_bps=6 * MBPS,
    plcp_overhead_s=20 * US,
)
