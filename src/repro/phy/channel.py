"""Shared broadcast medium with protocol-model collisions.

The channel implements the classic protocol interference model on the
topology's connectivity graph: every transmission is heard by all radio
neighbours of the transmitter; two receptions overlapping in time at the
same receiver corrupt each other; a node cannot receive while transmitting
(half-duplex).  By default carrier sense range equals communication range
(the 802.16 mesh 2-hop conflict model in :mod:`repro.core.conflict` is the
scheduling abstraction of exactly this channel);
:meth:`BroadcastChannel.set_physical_couplings` widens the medium with
SINR-derived sense and jamming pairs so the DCF baseline exhibits real
hidden-node collisions (see :mod:`repro.phy.models` and
docs/interference.md).

MAC layers attach a :class:`ChannelClient` per node and get two callbacks:

- ``on_receive(frame, success)`` when a reception finishes;
- ``on_medium_change()`` whenever the busy/idle state at the node may have
  changed (used by CSMA backoff logic, which polls :meth:`BroadcastChannel.
  medium_busy`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError, SimulationError
from repro.net.topology import MeshTopology
from repro.phy.frames import PhyFrame
from repro.phy.radio import PhyParams
from repro.sim.engine import Simulator
from repro.sim.trace import Trace


class ChannelClient:
    """Interface MAC layers implement to hang off the channel."""

    def on_receive(self, frame: PhyFrame, success: bool) -> None:
        """A reception finished at this node (corrupted if not success)."""
        raise NotImplementedError

    def on_medium_change(self) -> None:
        """The busy/idle state at this node may have changed."""
        # Optional for MACs that do not carrier-sense (TDMA overlay).


@dataclass
class Reception:
    """An in-flight reception at one receiver."""

    frame: PhyFrame
    receiver: int
    start: float
    end: float
    corrupted: bool = False
    #: why it was corrupted, for tracing ("collision", "rx_during_tx")
    corrupt_reason: Optional[str] = None

    def overlaps(self, start: float, end: float) -> bool:
        return self.start < end and start < self.end


@dataclass
class _NodeState:
    client: Optional[ChannelClient] = None
    #: active/pending receptions at this node
    receptions: list[Reception] = field(default_factory=list)
    #: (start, end) transmission intervals, pruned lazily
    transmissions: list[tuple[float, float]] = field(default_factory=list)
    #: (start, end) sensed-but-undecodable energy from carrier-sense-range
    #: transmitters (physical couplings); busies the medium, harms nothing
    noise: list[tuple[float, float]] = field(default_factory=list)
    #: (start, end) corrupting energy from out-of-decode-range interferers
    #: (hidden-node couplings); busies the medium *and* corrupts overlapping
    #: receptions
    jam: list[tuple[float, float]] = field(default_factory=list)


class BroadcastChannel:
    """The shared medium for one mesh (one radio, one channel).

    Parameters
    ----------
    sim:
        The event kernel.
    topology:
        Radio connectivity; transmissions reach exactly the graph neighbours.
    phy:
        Timing parameters (propagation delay).
    trace:
        Optional shared trace; emits ``phy.tx``, ``phy.rx_ok``,
        ``phy.rx_collision`` and ``phy.rx_during_tx`` records.
    """

    def __init__(self, sim: Simulator, topology: MeshTopology,
                 phy: PhyParams, trace: Optional[Trace] = None) -> None:
        self.sim = sim
        self.topology = topology
        self.phy = phy
        self.trace = trace if trace is not None else Trace(enabled=False)
        self._nodes: dict[int, _NodeState] = {
            node: _NodeState() for node in topology.nodes}
        #: optional random-loss model; see :meth:`set_error_model`
        self._error_rng = None
        self._error_rates: dict[tuple[int, int], float] = {}
        self._default_error_rate = 0.0
        #: optional control-plane-only loss model; see
        #: :meth:`set_control_error_model`
        self._control_error_rng = None
        self._control_error_rates: dict[tuple[int, int], float] = {}
        self._default_control_error_rate = 0.0
        #: fault-injection state; see :meth:`set_node_down` / :meth:`set_link_down`
        self._down_nodes: set[int] = set()
        self._down_links: set[frozenset[int]] = set()
        #: physical-model couplings beyond the connectivity graph; see
        #: :meth:`set_physical_couplings`
        self._sense_extra: dict[int, set[int]] = {}
        self._jam_extra: dict[int, set[int]] = {}

    def set_physical_couplings(self, couplings=None, *,
                               sense_pairs=None, jam_pairs=None) -> None:
        """Widen the channel beyond the graph with SINR-derived couplings.

        ``couplings`` is a :class:`~repro.phy.models.ChannelCouplings`
        (e.g. from :meth:`~repro.phy.models.SinrModel.channel_couplings`);
        alternatively pass the pair sets directly.  ``sense_pairs`` are
        undirected non-neighbour node pairs within carrier-sense range:
        each hears the other's transmissions as busy medium (so CSMA
        defers) without receiving anything.  ``jam_pairs`` are directed
        ``(interferer, victim)`` pairs whose transmissions additionally
        corrupt receptions overlapping them at the victim -- the
        hidden-node failure mode the 2-hop protocol channel cannot
        express.  Replaces any previously installed couplings; with none
        installed the channel is exactly the protocol-model medium.
        """
        if couplings is not None:
            if sense_pairs is not None or jam_pairs is not None:
                raise ConfigurationError(
                    "pass couplings= or explicit pair sets, not both")
            sense_pairs = couplings.sense_pairs
            jam_pairs = couplings.jam_pairs
        sense: dict[int, set[int]] = {}
        jam: dict[int, set[int]] = {}
        for u, v in (sense_pairs or ()):
            self._state(u), self._state(v)  # validate node ids
            if v in self.topology.graph[u]:
                raise ConfigurationError(
                    f"sense pair ({u}, {v}) are radio neighbours; the "
                    "graph already delivers between them")
            sense.setdefault(u, set()).add(v)
            sense.setdefault(v, set()).add(u)
        for tx, victim in (jam_pairs or ()):
            self._state(tx), self._state(victim)
            if victim in self.topology.graph[tx] or tx == victim:
                raise ConfigurationError(
                    f"jam pair ({tx}, {victim}) are radio neighbours; "
                    "the graph already collides between them")
            jam.setdefault(tx, set()).add(victim)
        self._sense_extra = sense
        self._jam_extra = jam

    def set_error_model(self, rng, default_error_rate: float = 0.0,
                        per_link: Optional[dict[tuple[int, int], float]]
                        = None) -> None:
        """Inject random reception losses (fading, noise bursts).

        Each otherwise-successful reception on directed pair
        ``(transmitter, receiver)`` is independently lost with the pair's
        error rate (``per_link`` overrides the default).  Collisions and
        half-duplex losses are unaffected -- this models channel error on
        top of them, the condition under which the TDMA overlay (no ARQ)
        and DCF (ARQ) diverge (experiment E13).
        """
        if not 0.0 <= default_error_rate < 1.0:
            raise ConfigurationError("error rate must be in [0, 1)")
        for pair, rate in (per_link or {}).items():
            if not 0.0 <= rate < 1.0:
                raise ConfigurationError(f"error rate {rate} for {pair}")
        self._error_rng = rng
        self._default_error_rate = default_error_rate
        self._error_rates = dict(per_link or {})

    def update_link_error_rates(
            self, rates: dict[tuple[int, int], float]) -> None:
        """Step per-link error rates mid-run (fault-injection hook).

        Merges ``rates`` into the per-link overrides installed by
        :meth:`set_error_model`, which must have been called first (the
        channel needs its loss RNG).  Directed pairs; a rate of 0.0 pins
        the pair back to lossless regardless of the default.
        """
        if self._error_rng is None:
            raise ConfigurationError(
                "call set_error_model() before update_link_error_rates() "
                "so the channel has a loss RNG")
        for pair, rate in rates.items():
            if not 0.0 <= rate < 1.0:
                raise ConfigurationError(f"error rate {rate} for {pair}")
        self._error_rates.update(rates)

    #: frame kinds the control-plane loss model applies to
    CONTROL_KINDS = frozenset({"beacon", "control"})

    def set_control_error_model(self, rng,
                                default_error_rate: float = 0.0,
                                per_link: Optional[dict[tuple[int, int],
                                                        float]] = None
                                ) -> None:
        """Inject random losses on *control-plane* receptions only.

        Applies to sync beacons and schedule announcements (frame kinds in
        :data:`CONTROL_KINDS`) on top of -- and independently of -- the
        all-traffic model of :meth:`set_error_model`: a control reception
        survives only both draws.  A dedicated RNG keeps the data-plane
        loss sequence untouched when control loss is swept (E18's axis).
        """
        if not 0.0 <= default_error_rate < 1.0:
            raise ConfigurationError("error rate must be in [0, 1)")
        for pair, rate in (per_link or {}).items():
            if not 0.0 <= rate < 1.0:
                raise ConfigurationError(f"error rate {rate} for {pair}")
        self._control_error_rng = rng
        self._default_control_error_rate = default_error_rate
        self._control_error_rates = dict(per_link or {})

    def update_control_error_rates(
            self, rates: dict[tuple[int, int], float]) -> None:
        """Step per-link *control* error rates mid-run (``control_loss``
        fault hook).

        Merges into the overrides installed by
        :meth:`set_control_error_model`, which must have been called first.
        Directed pairs; 0.0 pins a pair back to lossless control delivery.
        """
        if self._control_error_rng is None:
            raise ConfigurationError(
                "call set_control_error_model() before "
                "update_control_error_rates() so the channel has a "
                "control-loss RNG")
        for pair, rate in rates.items():
            if not 0.0 <= rate < 1.0:
                raise ConfigurationError(f"error rate {rate} for {pair}")
        self._control_error_rates.update(rates)

    # -- fault-injection hooks ---------------------------------------------

    def set_node_down(self, node: int, down: bool = True) -> None:
        """Crash or recover a radio (fault-injection hook).

        A down node radiates nothing when its MAC transmits (the airtime is
        still accounted, so slot timing upstream is unchanged) and hears
        nothing -- no receptions are created at it, so its MAC gets no
        callbacks.  Upper layers need no crash-awareness: the fault lives
        entirely at the PHY, exactly as a powered-off radio would.
        """
        self._state(node)  # validate the node id
        if down:
            self._down_nodes.add(node)
        else:
            self._down_nodes.discard(node)
        self.trace.emit(self.sim.now,
                        "phy.node_down" if down else "phy.node_up",
                        node=node)

    def node_is_down(self, node: int) -> bool:
        return node in self._down_nodes

    def set_link_down(self, pair: tuple[int, int],
                      down: bool = True) -> None:
        """Sever or restore one undirected radio link (fault-injection hook).

        While down, frames simply do not propagate across the pair in either
        direction -- as if the nodes moved out of range.  Both endpoints
        otherwise behave normally.
        """
        u, v = pair
        if not self.topology.has_link((u, v)):
            raise ConfigurationError(
                f"({u}, {v}) is not a link of {self.topology.name}")
        key = frozenset((u, v))
        if down:
            self._down_links.add(key)
        else:
            self._down_links.discard(key)
        self.trace.emit(self.sim.now,
                        "phy.link_down" if down else "phy.link_up",
                        node=u, peer=v)

    def link_is_down(self, pair: tuple[int, int]) -> bool:
        return frozenset(pair) in self._down_links

    def attach(self, node: int, client: ChannelClient) -> None:
        """Register the MAC entity for ``node``."""
        state = self._state(node)
        if state.client is not None:
            raise ConfigurationError(f"node {node} already has a MAC attached")
        state.client = client

    def _state(self, node: int) -> _NodeState:
        try:
            return self._nodes[node]
        except KeyError:
            raise ConfigurationError(f"unknown node {node}") from None

    # -- carrier sense ------------------------------------------------------

    def transmitting(self, node: int) -> bool:
        """True iff ``node`` is on air right now."""
        now = self.sim.now
        return any(start <= now < end
                   for start, end in self._state(node).transmissions)

    def medium_busy(self, node: int) -> bool:
        """Carrier-sense result at ``node``: any energy on air it can hear.

        With physical couplings installed, sensed energy includes noise
        from carrier-sense-range transmitters and jamming interferers --
        not just decodable receptions.
        """
        now = self.sim.now
        if self.transmitting(node):
            return True
        state = self._state(node)
        if any(rec.start <= now < rec.end for rec in state.receptions):
            return True
        return any(start <= now < end
                   for start, end in state.noise) \
            or any(start <= now < end for start, end in state.jam)

    def busy_until(self, node: int) -> float:
        """Latest end time of anything currently on air at ``node``.

        Returns the current time when the medium is idle.
        """
        now = self.sim.now
        latest = now
        state = self._state(node)
        for start, end in state.transmissions:
            if start <= now < end:
                latest = max(latest, end)
        for rec in state.receptions:
            if rec.start <= now < rec.end:
                latest = max(latest, rec.end)
        for start, end in state.noise:
            if start <= now < end:
                latest = max(latest, end)
        for start, end in state.jam:
            if start <= now < end:
                latest = max(latest, end)
        return latest

    # -- transmission ---------------------------------------------------------

    def transmit(self, node: int, frame: PhyFrame,
                 duration: Optional[float] = None) -> float:
        """Put ``frame`` on air from ``node``; returns the airtime used.

        The MAC is responsible for medium access rules; the channel only
        enforces physics (no two simultaneous transmissions from one radio).
        """
        state = self._state(node)
        if frame.src != node:
            raise SimulationError(
                f"frame src {frame.src} transmitted by node {node}")
        if self.transmitting(node):
            raise SimulationError(f"node {node} is already transmitting")
        if duration is None:
            duration = self.phy.airtime(
                frame.size_bits, basic_rate=frame.kind.value != "data")
        now = self.sim.now
        if node in self._down_nodes:
            # Crashed radio: the MAC's transmit attempt consumes its slot
            # time but nothing reaches the air.
            self.trace.emit(now, "phy.tx_suppressed", node=node,
                            frame=frame.frame_id, kind=frame.kind.value)
            return duration
        tx_start, tx_end = now, now + duration
        self._prune(state, now)
        state.transmissions.append((tx_start, tx_end))
        self.trace.emit(now, "phy.tx", node=node, frame=frame.frame_id,
                        kind=frame.kind.value, duration=duration)

        # A transmission corrupts any reception in progress at the
        # transmitter (half-duplex): mark them now.
        for rec in state.receptions:
            if rec.overlaps(tx_start, tx_end) and not rec.corrupted:
                rec.corrupted = True
                rec.corrupt_reason = "rx_during_tx"

        self._notify(node)
        prop = self.phy.propagation_delay_s
        for neighbor in self.topology.neighbors(node):
            if (neighbor in self._down_nodes
                    or frozenset((node, neighbor)) in self._down_links):
                continue
            arrival_start = tx_start + prop
            arrival_end = tx_end + prop
            receiver_state = self._state(neighbor)
            self._prune(receiver_state, now)
            reception = Reception(frame, neighbor, arrival_start, arrival_end)
            # Pairwise collision with any overlapping reception at this
            # receiver: both frames are lost.
            for other in receiver_state.receptions:
                if other.overlaps(arrival_start, arrival_end):
                    other.corrupted = True
                    other.corrupt_reason = other.corrupt_reason or "collision"
                    reception.corrupted = True
                    reception.corrupt_reason = "collision"
            # Jamming energy already on air at this receiver (from an
            # out-of-decode-range interferer) corrupts the new reception.
            if not reception.corrupted:
                for start, end in receiver_state.jam:
                    if reception.overlaps(start, end):
                        reception.corrupted = True
                        reception.corrupt_reason = "interference"
                        self.trace.emit(now, "phy.jam", node=neighbor)
                        break
            receiver_state.receptions.append(reception)
            self.sim.schedule_at(arrival_start, self._notify, neighbor)
            self.sim.schedule_at(arrival_end, self._deliver, reception)
        # Physical couplings beyond the graph: jamming interferers corrupt
        # in-flight receptions at their victims; carrier-sense-range
        # watchers merely see a busy medium.  Both get notify edges so
        # CSMA backoff reacts to the energy appearing and clearing.
        arrival_start, arrival_end = tx_start + prop, tx_end + prop
        for victim in self._jam_extra.get(node, ()):
            if victim in self._down_nodes:
                continue
            victim_state = self._state(victim)
            self._prune(victim_state, now)
            victim_state.jam.append((arrival_start, arrival_end))
            # phy.jam traces actual damage (a reception corrupted by
            # out-of-decode-range energy), not every jam interval -- the
            # E23 jam column would otherwise count harmless energy.
            for rec in victim_state.receptions:
                if rec.overlaps(arrival_start, arrival_end) \
                        and not rec.corrupted:
                    rec.corrupted = True
                    rec.corrupt_reason = "interference"
                    self.trace.emit(now, "phy.jam", node=victim,
                                    source=node)
            self.sim.schedule_at(arrival_start, self._notify, victim)
            self.sim.schedule_at(arrival_end, self._notify, victim)
        for watcher in self._sense_extra.get(node, ()):
            if watcher in self._down_nodes \
                    or watcher in self._jam_extra.get(node, ()):
                continue  # jam energy already busies the victim's medium
            watcher_state = self._state(watcher)
            self._prune(watcher_state, now)
            watcher_state.noise.append((arrival_start, arrival_end))
            self.sim.schedule_at(arrival_start, self._notify, watcher)
            self.sim.schedule_at(arrival_end, self._notify, watcher)
        # Transmitter's own medium goes idle at tx_end.
        self.sim.schedule_at(tx_end, self._notify, node)
        return duration

    # -- internals ---------------------------------------------------------

    def _deliver(self, reception: Reception) -> None:
        state = self._state(reception.receiver)
        if reception in state.receptions:
            state.receptions.remove(reception)
        if reception.receiver in self._down_nodes:
            # The receiver crashed while the frame was in flight: drop it
            # without a MAC callback, as set_node_down() promises.
            self.trace.emit(self.sim.now, "phy.rx_node_down",
                            node=reception.receiver,
                            frame=reception.frame.frame_id,
                            kind=reception.frame.kind.value)
            return
        # Half-duplex: if the receiver transmitted at any point during the
        # reception window, the frame is lost (the mark may have been set by
        # transmit(); re-check for transmissions that started mid-window).
        if not reception.corrupted:
            for start, end in state.transmissions:
                if reception.overlaps(start, end):
                    reception.corrupted = True
                    reception.corrupt_reason = "rx_during_tx"
                    break
        if not reception.corrupted and self._error_rng is not None:
            pair = (reception.frame.src, reception.receiver)
            rate = self._error_rates.get(pair, self._default_error_rate)
            if rate > 0.0 and self._error_rng.random() < rate:
                reception.corrupted = True
                reception.corrupt_reason = "channel_error"
        if (not reception.corrupted
                and self._control_error_rng is not None
                and reception.frame.kind.value in self.CONTROL_KINDS):
            pair = (reception.frame.src, reception.receiver)
            rate = self._control_error_rates.get(
                pair, self._default_control_error_rate)
            if rate > 0.0 and self._control_error_rng.random() < rate:
                reception.corrupted = True
                reception.corrupt_reason = "control_loss"
        success = not reception.corrupted
        category = ("phy.rx_ok" if success
                    else f"phy.rx_{reception.corrupt_reason}")
        self.trace.emit(self.sim.now, category, node=reception.receiver,
                        frame=reception.frame.frame_id,
                        kind=reception.frame.kind.value)
        client = state.client
        self._notify(reception.receiver)
        if client is not None:
            client.on_receive(reception.frame, success)

    def _notify(self, node: int) -> None:
        client = self._state(node).client
        if client is not None:
            client.on_medium_change()

    @staticmethod
    def _prune(state: _NodeState, now: float) -> None:
        """Drop transmission intervals that can no longer affect anything.

        A past transmission only matters while some reception window could
        still overlap it, and no frame stays on air longer than ~20 ms in
        any profile this library models; a 50 ms grace period is generous.
        Keeping more than that makes carrier sense O(history) and grinds
        saturated simulations to a halt.
        """
        horizon = now - 0.05
        if state.transmissions and state.transmissions[0][1] < horizon:
            state.transmissions = [
                (s, e) for s, e in state.transmissions if e >= horizon]
        if state.noise and state.noise[0][1] < horizon:
            state.noise = [(s, e) for s, e in state.noise if e >= horizon]
        if state.jam and state.jam[0][1] < horizon:
            state.jam = [(s, e) for s, e in state.jam if e >= horizon]
