"""Pluggable interference models (S39): protocol vs SINR backends.

The scheduler's conflict abstraction used to be a bare ``hops`` integer
threaded through every layer.  This module turns it into a *seam*: an
:class:`InterferenceModel` produces the conflict graph the
:class:`~repro.core.engine.ConflictIndex` wraps, and everything above the
engine (``Scenario``, ``minimum_slots``, repair, mobility, the DCF
baseline) accepts a model wherever it used to accept ``hops``.

Two backends ship:

- :class:`ProtocolModel` -- the k-hop protocol model of
  :func:`repro.core.conflict.conflict_graph`, **bitwise-identical** to the
  pre-seam path: its :meth:`~ProtocolModel.cache_token` is the bare hops
  integer, so engine cache keys, delta-update lineages and canonical
  problem hashes are unchanged (property-tested in
  ``tests/test_property_interference.py``).
- :class:`SinrModel` -- physical-model interference from node positions:
  a log-distance :class:`PathLossModel` maps TX power to a pairwise RSS
  matrix; two links conflict iff a concurrent transmission drops either
  intended reception below the SINR threshold of that link's current MCS
  (adaptive, from an :class:`McsTable` with hysteresis, as in the SiNE
  emulator line).  A carrier-sense range multiplier wider than the
  communication range yields :meth:`~SinrModel.hidden_node_pairs` and the
  channel couplings the DCF baseline replays
  (:meth:`~SinrModel.channel_couplings`).

:mod:`repro.phy.interference` is the containment validator between the
backends: ``uncovered_interference(topology, hops=2, truth=sinr_model)``
lists the physically interfering pairs the protocol model fails to
separate.  See ``docs/interference.md`` for the full guide.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import networkx as nx

from repro import obs
from repro.core.conflict import conflict_graph
from repro.errors import ConfigurationError
from repro.net.topology import Link, MeshTopology

#: SiNE-style defaults: 100 mW radios, thermal noise floor for a 20 MHz
#: 802.11 channel, carrier-sense range ~2.5x the communication range and
#: 2 dB of rate-adaptation hysteresis.
DEFAULT_TX_POWER_DBM = 20.0
DEFAULT_NOISE_FLOOR_DBM = -96.0
DEFAULT_CS_MULTIPLIER = 2.5
DEFAULT_HYSTERESIS_DB = 2.0


def _dbm_to_mw(dbm: float) -> float:
    return 10.0 ** (dbm / 10.0)


def _mw_to_dbm(mw: float) -> float:
    return 10.0 * math.log10(mw)


class PathLossModel:
    """Log-distance path loss: ``L(d) = L0 + 10 n log10(d / d0)`` dB.

    Parameters
    ----------
    exponent:
        Path-loss exponent ``n`` (2 = free space; 3-4 = urban outdoor).
    ref_loss_db:
        Loss ``L0`` at the reference distance (~40 dB at 1 m for 2.4 GHz).
    ref_distance_m:
        Reference distance ``d0``; receivers closer than this see ``L0``.
    """

    def __init__(self, exponent: float = 3.0, ref_loss_db: float = 40.0,
                 ref_distance_m: float = 1.0) -> None:
        if exponent <= 0:
            raise ConfigurationError(
                f"path-loss exponent must be positive, got {exponent}")
        if ref_distance_m <= 0:
            raise ConfigurationError(
                f"reference distance must be positive, got {ref_distance_m}")
        self.exponent = float(exponent)
        self.ref_loss_db = float(ref_loss_db)
        self.ref_distance_m = float(ref_distance_m)

    def loss_db(self, distance_m: float) -> float:
        """Path loss over ``distance_m`` (clamped at the reference)."""
        d = max(float(distance_m), self.ref_distance_m)
        return (self.ref_loss_db
                + 10.0 * self.exponent * math.log10(d / self.ref_distance_m))

    def rss_dbm(self, tx_power_dbm: float, distance_m: float) -> float:
        """Received signal strength for a transmitter at ``distance_m``."""
        return tx_power_dbm - self.loss_db(distance_m)

    def range_m(self, tx_power_dbm: float, sensitivity_dbm: float) -> float:
        """Largest distance at which RSS still meets ``sensitivity_dbm``."""
        margin_db = tx_power_dbm - self.ref_loss_db - sensitivity_dbm
        if margin_db < 0:
            return 0.0
        return (self.ref_distance_m
                * 10.0 ** (margin_db / (10.0 * self.exponent)))

    def params(self) -> tuple:
        return (self.exponent, self.ref_loss_db, self.ref_distance_m)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PathLossModel(exponent={self.exponent}, "
                f"ref_loss_db={self.ref_loss_db})")


@dataclass(frozen=True)
class McsEntry:
    """One row of an MCS table: a named rate usable above an SINR floor."""

    name: str
    sinr_min_db: float
    rate_bps: int

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise ConfigurationError(
                f"MCS {self.name!r}: rate must be positive")


class McsTable:
    """An ordered modulation/coding table with hysteretic selection.

    Entries are kept sorted by SINR threshold; rates must increase with
    the threshold (a higher MCS that is both slower and more fragile is a
    configuration error).  :meth:`select` implements the SiNE-style
    debounce: a link only *upgrades* once its SINR clears the next
    threshold by ``hysteresis_db``, and only *downgrades* once it falls
    below its current threshold -- oscillation around a boundary holds
    the current rate.
    """

    def __init__(self, entries: Iterable[McsEntry]) -> None:
        ordered = sorted(entries, key=lambda e: e.sinr_min_db)
        if not ordered:
            raise ConfigurationError("MCS table needs at least one entry")
        for lo, hi in zip(ordered, ordered[1:]):
            if hi.sinr_min_db == lo.sinr_min_db:
                raise ConfigurationError(
                    f"duplicate SINR threshold {hi.sinr_min_db} dB "
                    f"({lo.name!r} vs {hi.name!r})")
            if hi.rate_bps <= lo.rate_bps:
                raise ConfigurationError(
                    f"MCS {hi.name!r} is above {lo.name!r} in SINR but "
                    "not in rate; rates must increase with the threshold")
        self.entries: tuple[McsEntry, ...] = tuple(ordered)

    @classmethod
    def from_rows(cls, rows: Iterable[tuple]) -> "McsTable":
        """Build from ``(name, sinr_min_db, rate_bps)`` rows (CSV-style)."""
        return cls(McsEntry(str(n), float(s), int(r)) for n, s, r in rows)

    @classmethod
    def default(cls) -> "McsTable":
        """A compact 802.11a/g-flavoured table (see docs/interference.md)."""
        return cls.from_rows([
            ("6M", 10.0, 6_000_000),
            ("12M", 14.0, 12_000_000),
            ("24M", 18.0, 24_000_000),
            ("36M", 22.0, 36_000_000),
            ("48M", 26.0, 48_000_000),
            ("54M", 28.0, 54_000_000),
        ])

    @property
    def floor_db(self) -> float:
        """The lowest decodable SINR: below this nothing gets through."""
        return self.entries[0].sinr_min_db

    def best(self, sinr_db: float) -> Optional[McsEntry]:
        """The fastest entry usable at ``sinr_db`` (None below the floor)."""
        chosen = None
        for entry in self.entries:
            if sinr_db >= entry.sinr_min_db:
                chosen = entry
            else:
                break
        return chosen

    def select(self, sinr_db: float, current: Optional[McsEntry],
               hysteresis_db: float = DEFAULT_HYSTERESIS_DB
               ) -> Optional[McsEntry]:
        """Hysteretic rate choice given the previous assignment."""
        raw = self.best(sinr_db)
        if current is None or current not in self.entries:
            return raw
        if raw is None:
            return None  # below the floor: nothing decodes, hysteresis or not
        if raw.rate_bps > current.rate_bps:
            # Upgrade only once the *target* threshold clears by the margin.
            if sinr_db >= raw.sinr_min_db + hysteresis_db:
                return raw
            upgraded = current
            for entry in self.entries:
                if (entry.rate_bps > upgraded.rate_bps
                        and sinr_db >= entry.sinr_min_db + hysteresis_db):
                    upgraded = entry
            return upgraded
        if raw.rate_bps < current.rate_bps:
            return raw  # SINR fell below the current threshold: downgrade
        return current

    def params(self) -> tuple:
        return tuple((e.name, e.sinr_min_db, e.rate_bps)
                     for e in self.entries)

    def __len__(self) -> int:
        return len(self.entries)


class InterferenceModel:
    """The seam: anything that can produce a conflict graph for a mesh.

    Implementations provide :meth:`conflict_graph` (same vertex/edge
    conventions as :func:`repro.core.conflict.conflict_graph`: vertices
    are sorted directed links, edges inserted in sorted order) and
    :meth:`cache_token`, the value the engine keys its
    :class:`~repro.core.engine.ConflictIndex` LRU by.  Tokens must change
    whenever the conflict graph could: for :class:`ProtocolModel` the
    bare hops integer suffices (connectivity is already in the key); an
    :class:`SinrModel` folds in its parameters, the node positions and
    the current MCS assignment.
    """

    kind: str = "abstract"

    def conflict_graph(self, topology: MeshTopology,
                       links: Optional[Sequence[Link]] = None) -> nx.Graph:
        raise NotImplementedError

    def cache_token(self, topology: MeshTopology) -> object:
        raise NotImplementedError

    def describe(self) -> str:
        return self.kind


class ProtocolModel(InterferenceModel):
    """The k-hop protocol model, bitwise-identical to the pre-seam path.

    ``ProtocolModel(hops=k)`` and a bare ``hops=k`` are interchangeable
    everywhere: the engine routes both through the same cache key, delta
    lineage and :func:`~repro.core.conflict.conflict_graph` build, so CSR
    arrays, conflict edges and canonical problem hashes are identical to
    the letter (the compatibility contract this refactor is pinned to).
    """

    kind = "protocol"

    def __init__(self, hops: int = 2) -> None:
        if not isinstance(hops, int) or isinstance(hops, bool) or hops < 1:
            raise ConfigurationError(
                f"interference model needs integer hops >= 1, got {hops!r}")
        self.hops = hops

    def conflict_graph(self, topology: MeshTopology,
                       links: Optional[Sequence[Link]] = None) -> nx.Graph:
        return conflict_graph(topology, hops=self.hops, links=links)

    def cache_token(self, topology: MeshTopology) -> object:
        # The bare integer: engine keys stay exactly the pre-seam
        # ("conflict", fingerprint, hops, link_key) tuples.
        return self.hops

    def describe(self) -> str:
        return f"protocol(hops={self.hops})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProtocolModel(hops={self.hops})"


@dataclass(frozen=True)
class ChannelCouplings:
    """Extra node couplings a physical model implies beyond the graph.

    ``sense_pairs`` are undirected non-neighbour pairs within carrier-sense
    range of each other: each senses the other's transmissions as a busy
    medium without decoding them.  ``jam_pairs`` are directed
    ``(interferer, victim)`` non-neighbour pairs whose transmissions
    corrupt receptions in progress at the victim.  Feed them to
    :meth:`repro.phy.channel.BroadcastChannel.set_physical_couplings` to
    run the DCF baseline under physical-model interference.
    """

    sense_pairs: frozenset[tuple[int, int]]
    jam_pairs: frozenset[tuple[int, int]]


class SinrModel(InterferenceModel):
    """Physical-model interference from positions, path loss and SINR.

    Parameters
    ----------
    path_loss:
        The :class:`PathLossModel` (default: exponent-3 log-distance).
    tx_power_dbm, noise_floor_dbm:
        Uniform radio parameters; the pairwise RSS matrix is
        ``tx_power - loss(distance)``.
    mcs:
        The :class:`McsTable` rates adapt over (default:
        :meth:`McsTable.default`).
    hysteresis_db:
        Rate-adaptation debounce margin (see :meth:`McsTable.select`).
    cs_multiplier:
        Carrier-sense range as a multiple of the communication range
        (the SiNE default is 2.5; 1.0 collapses sensing to decode range
        and maximises hidden nodes).

    Two links conflict iff they share a radio, or a concurrent
    transmission drops either intended reception below the SINR
    threshold of that link's *current* MCS.  The topology must carry
    positions (every generator in :mod:`repro.net.topology` records
    them); the connectivity graph stays authoritative for who can
    decode whom -- the model only decides who *interferes*.
    """

    kind = "sinr"

    def __init__(self, path_loss: Optional[PathLossModel] = None,
                 tx_power_dbm: float = DEFAULT_TX_POWER_DBM,
                 noise_floor_dbm: float = DEFAULT_NOISE_FLOOR_DBM,
                 mcs: Optional[McsTable] = None,
                 hysteresis_db: float = DEFAULT_HYSTERESIS_DB,
                 cs_multiplier: float = DEFAULT_CS_MULTIPLIER) -> None:
        if hysteresis_db < 0:
            raise ConfigurationError("hysteresis_db must be non-negative")
        if cs_multiplier < 1.0:
            raise ConfigurationError(
                f"cs_multiplier must be >= 1.0 (sense at least the "
                f"communication range), got {cs_multiplier}")
        self.path_loss = path_loss if path_loss is not None else PathLossModel()
        self.tx_power_dbm = float(tx_power_dbm)
        self.noise_floor_dbm = float(noise_floor_dbm)
        self.mcs = mcs if mcs is not None else McsTable.default()
        self.hysteresis_db = float(hysteresis_db)
        self.cs_multiplier = float(cs_multiplier)
        if self.path_loss.range_m(self.tx_power_dbm,
                                  self.noise_floor_dbm
                                  + self.mcs.floor_db) <= 0:
            raise ConfigurationError(
                "radio cannot decode the lowest MCS at any distance; "
                "raise tx_power_dbm or lower the MCS floor")
        #: Current per-link MCS assignment (the hysteresis state).
        self._assigned: dict[Link, McsEntry] = {}

    # -- geometry ----------------------------------------------------------

    def _require_positions(self, topology: MeshTopology) -> None:
        if not topology.has_positions:
            raise ConfigurationError(
                f"SinrModel needs node positions, but topology "
                f"{topology.name!r} has none (every generator in "
                "repro.net.topology records them; pass positions= to "
                "MeshTopology/from_edges)")

    def rss_dbm(self, topology: MeshTopology, tx: int, rx: int) -> float:
        """Received signal strength of ``tx`` at ``rx``."""
        return self.path_loss.rss_dbm(self.tx_power_dbm,
                                      topology.distance(tx, rx))

    def snr_db(self, topology: MeshTopology, link: Link) -> float:
        """Interference-free SNR of a directed link."""
        return (self.rss_dbm(topology, link[0], link[1])
                - self.noise_floor_dbm)

    def sinr_db(self, topology: MeshTopology, link: Link,
                interferer: int) -> float:
        """SINR at ``link``'s receiver with ``interferer`` transmitting."""
        signal_mw = _dbm_to_mw(self.rss_dbm(topology, link[0], link[1]))
        floor_mw = (_dbm_to_mw(self.noise_floor_dbm)
                    + _dbm_to_mw(self.rss_dbm(topology, interferer,
                                              link[1])))
        return _mw_to_dbm(signal_mw) - _mw_to_dbm(floor_mw)

    def communication_range_m(self) -> float:
        """Distance at which the lowest MCS stops decoding."""
        return self.path_loss.range_m(
            self.tx_power_dbm, self.noise_floor_dbm + self.mcs.floor_db)

    def carrier_sense_range_m(self) -> float:
        return self.cs_multiplier * self.communication_range_m()

    # -- adaptive MCS ------------------------------------------------------

    def link_rates(self, topology: MeshTopology,
                   links: Optional[Sequence[Link]] = None
                   ) -> dict[Link, McsEntry]:
        """Hysteretic per-link MCS assignment from the current geometry.

        Repeated calls carry the previous assignment forward: a link's
        rate only upgrades once its SNR clears the next threshold by
        ``hysteresis_db`` and only downgrades once it falls below the
        current one, so motion near a boundary does not flap the rate.
        Links whose SNR is below the table floor pin to the lowest entry
        (the connectivity graph says they decode; the model charges them
        the most robust rate).  ``phy.sinr.mcs_switches`` counts
        assignment changes; ``phy.sinr.hysteresis_suppressions`` counts
        raw-best choices the debounce overrode.
        """
        self._require_positions(topology)
        link_list = (list(topology.links) if links is None
                     else sorted(set(links)))
        switches = suppressed = 0
        out: dict[Link, McsEntry] = {}
        for link in link_list:
            snr = self.snr_db(topology, link)
            current = self._assigned.get(link)
            chosen = self.mcs.select(snr, current, self.hysteresis_db)
            if chosen is None:
                chosen = self.mcs.entries[0]
            if chosen != self.mcs.best(snr) and self.mcs.best(snr) is not None:
                suppressed += 1
            if current is not None and chosen != current:
                switches += 1
            self._assigned[link] = chosen
            out[link] = chosen
        if switches:
            obs.counter("phy.sinr.mcs_switches").inc(switches)
        if suppressed:
            obs.counter("phy.sinr.hysteresis_suppressions").inc(suppressed)
        return out

    # -- the conflict relation --------------------------------------------

    def conflict_graph(self, topology: MeshTopology,
                       links: Optional[Sequence[Link]] = None) -> nx.Graph:
        """Links that cannot share a slot under physical interference.

        Same conventions as :func:`repro.core.conflict.conflict_graph`:
        sorted link vertices, edges inserted in sorted order, subset
        links validated against the topology.
        """
        self._require_positions(topology)
        if links is None:
            link_list = list(topology.links)
        else:
            link_list = sorted(set(links))
            for link in link_list:
                if not topology.has_link(link):
                    raise ConfigurationError(
                        f"{link} is not a link of the topology")
        rates = self.link_rates(topology, link_list)
        graph = nx.Graph()
        graph.add_nodes_from(link_list)
        edges = 0
        for i, a in enumerate(link_list):
            for b in link_list[i + 1:]:
                if self._conflict(topology, a, b, rates):
                    graph.add_edge(a, b)
                    edges += 1
        obs.counter("phy.sinr.conflict_edges").inc(edges)
        return graph

    def _conflict(self, topology: MeshTopology, a: Link, b: Link,
                  rates: dict[Link, McsEntry]) -> bool:
        if set(a) & set(b):
            return True  # a radio cannot do two things at once
        return (self.sinr_db(topology, a, b[0]) < rates[a].sinr_min_db
                or self.sinr_db(topology, b, a[0]) < rates[b].sinr_min_db)

    def hidden_node_pairs(self, topology: MeshTopology,
                          links: Optional[Sequence[Link]] = None
                          ) -> list[tuple[Link, Link]]:
        """Interfering link pairs whose transmitters cannot sense each other.

        These are the DCF failure mode: carrier sense never defers the
        two transmitters (they are beyond carrier-sense range of each
        other), yet their concurrent transmissions corrupt at least one
        intended reception.  Shrinking ``cs_multiplier`` grows this set;
        E23 sweeps it.  Counted on ``phy.sinr.hidden_pairs``.
        """
        self._require_positions(topology)
        cs_range = self.carrier_sense_range_m()
        pairs = []
        conflicts = self.conflict_graph(topology, links)
        for a, b in conflicts.edges:
            if set(a) & set(b):
                continue
            if topology.distance(a[0], b[0]) > cs_range:
                pairs.append(tuple(sorted((a, b))))
        pairs.sort()
        if pairs:
            obs.counter("phy.sinr.hidden_pairs").inc(len(pairs))
        return pairs

    def channel_couplings(self, topology: MeshTopology) -> ChannelCouplings:
        """The extra sense/jam node pairs the DCF channel should replay.

        Derived from the same physics as :meth:`conflict_graph`:
        non-neighbour node pairs within carrier-sense range become
        ``sense_pairs``; for every physically conflicting link pair, the
        non-neighbour transmitter that drops an intended reception below
        its MCS threshold becomes a directed ``jam_pair`` against that
        receiver.  Transmissions between graph neighbours already
        collide natively in the channel, so only the extras appear here.
        """
        self._require_positions(topology)
        cs_range = self.carrier_sense_range_m()
        nodes = topology.nodes
        sense: set[tuple[int, int]] = set()
        for i, u in enumerate(nodes):
            for v in nodes[i + 1:]:
                if v in topology.graph[u]:
                    continue
                if topology.distance(u, v) <= cs_range:
                    sense.add((u, v))
        rates = self.link_rates(topology)
        jam: set[tuple[int, int]] = set()
        for link in topology.links:
            threshold = rates[link].sinr_min_db
            receiver = link[1]
            neighbours = set(topology.graph[receiver]) | {receiver}
            for interferer in nodes:
                if interferer in neighbours:
                    continue
                if self.sinr_db(topology, link, interferer) < threshold:
                    jam.add((interferer, receiver))
        return ChannelCouplings(sense_pairs=frozenset(sense),
                                jam_pairs=frozenset(jam))

    # -- mobility unification ---------------------------------------------

    def radio_range_model(self, hysteresis: float = 0.1):
        """The :class:`~repro.mobility.stream.RadioRangeModel` this
        physics implies: disk connectivity at the communication range,
        debounced.  ``TopologyStream(motion, radio=sinr_model)`` calls
        this, so motion and SINR share one path-loss model.
        """
        from repro.mobility.stream import RadioRangeModel

        return RadioRangeModel.from_path_loss(
            self.path_loss, self.tx_power_dbm,
            self.noise_floor_dbm + self.mcs.floor_db,
            hysteresis=hysteresis)

    # -- engine integration ------------------------------------------------

    def params(self) -> tuple:
        return ("sinr", self.path_loss.params(), self.tx_power_dbm,
                self.noise_floor_dbm, self.mcs.params(),
                self.hysteresis_db, self.cs_multiplier)

    def cache_token(self, topology: MeshTopology) -> object:
        """Content token for the engine's index cache.

        Folds in the model parameters, the node positions (the topology
        fingerprint in the cache key covers connectivity only) and the
        current hysteretic MCS assignment, so a cached index is only
        served while the physics that built it still hold.
        """
        self._require_positions(topology)
        digest = hashlib.sha256()
        digest.update(repr(self.params()).encode())
        digest.update(repr(sorted(topology.positions.items())).encode())
        assignment = self.link_rates(topology)
        digest.update(repr([(link, entry.name)
                            for link, entry in sorted(assignment.items())
                            ]).encode())
        return ("sinr", digest.hexdigest()[:16])

    def describe(self) -> str:
        return (f"sinr(n={self.path_loss.exponent}, "
                f"tx={self.tx_power_dbm}dBm, cs={self.cs_multiplier}x)")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SinrModel({self.describe()})"


def coerce_interference(value, default_hops: int = 2) -> InterferenceModel:
    """Map the public ``interference=`` argument onto a model.

    ``None`` -> the default :class:`ProtocolModel`; a bare integer -> a
    :class:`ProtocolModel` with that hops value; a model passes through.
    """
    if value is None:
        return ProtocolModel(default_hops)
    if isinstance(value, InterferenceModel):
        return value
    if isinstance(value, int) and not isinstance(value, bool):
        return ProtocolModel(value)
    raise ConfigurationError(
        f"interference= expects an InterferenceModel or an integer hops "
        f"value, got {value!r}")
