"""Microbenchmarks of the scheduling primitives (multi-round timing).

Unlike the experiment benches (one-shot table generation), these use
pytest-benchmark's statistical timing to track the cost of the hot
primitives a deployment would re-run online: conflict-graph construction,
Bellman-Ford schedule recovery, greedy packing, feasibility ILPs and the
delay computation.
"""

from repro.core.conflict import conflict_graph
from repro.core.delay import path_delay_slots
from repro.core.greedy import greedy_schedule
from repro.core.ilp import SchedulingProblem, solve_schedule_ilp
from repro.core.ordering import schedule_from_order
from repro.core.tree_order import min_delay_tree_order
from repro.net.routing import gateway_tree
from repro.net.topology import grid_topology
from repro.phy.interference import interference_graph

TOPOLOGY = grid_topology(4, 4)
DEMANDS = {link: 1 for link in TOPOLOGY.links}
CONFLICTS = conflict_graph(TOPOLOGY, hops=2)
TREE = gateway_tree(TOPOLOGY, 0)
ORDER = min_delay_tree_order(TREE, 0)
TREE_DEMANDS = {link: 1 for link in ORDER.links()}
FRAME = 2 * len(TREE_DEMANDS)
SCHEDULE = schedule_from_order(CONFLICTS, TREE_DEMANDS, FRAME, ORDER)
ROUTE = tuple((i, i + 1) for i in (0, 1, 2))  # 0-1-2-3 along the top row


def test_bench_micro_conflict_graph(benchmark):
    graph = benchmark(conflict_graph, TOPOLOGY, 2)
    assert graph.number_of_nodes() == TOPOLOGY.num_links()


def test_bench_micro_interference_graph(benchmark):
    # Incidence-map construction: work scales with actual interference
    # edges, not with all O(L^2) link pairs (see repro.phy.interference).
    graph = benchmark(interference_graph, TOPOLOGY)
    assert graph.number_of_nodes() == TOPOLOGY.num_links()
    assert graph.number_of_edges() > 0


def test_bench_micro_bellman_ford_recovery(benchmark):
    schedule = benchmark(schedule_from_order, CONFLICTS, TREE_DEMANDS,
                         FRAME, ORDER)
    assert len(schedule) == len(TREE_DEMANDS)


def test_bench_micro_greedy_packing(benchmark):
    schedule = benchmark(greedy_schedule, CONFLICTS, DEMANDS)
    assert schedule.demands_met(DEMANDS)


def test_bench_micro_feasibility_ilp(benchmark):
    problem = SchedulingProblem(CONFLICTS, TREE_DEMANDS, FRAME)

    result = benchmark(solve_schedule_ilp, problem)
    assert result.feasible


def test_bench_micro_path_delay(benchmark):
    route = [(0, 1), (1, 2), (2, 3)]
    delay = benchmark(path_delay_slots, SCHEDULE, route)
    assert delay > 0


def test_bench_micro_tree_order(benchmark):
    order = benchmark(min_delay_tree_order, TREE, 0)
    assert len(order.links()) == 2 * TREE.number_of_edges()
