"""E3: delay vs frame duration.

Expected shape: delay is linear in frame duration with slope set by the
ordering quality (wraps + pipeline depth).
"""

import pytest

from conftest import run_experiment

from repro.analysis.experiments import e03_delay_vs_frame


def test_bench_e03_delay_vs_frame(benchmark):
    result = run_experiment(benchmark, e03_delay_vs_frame)
    rows = result.rows
    # linearity: delay ratio equals frame-duration ratio
    ratio = rows[-1][0] / rows[0][0]
    assert rows[-1][1] / rows[0][1] == pytest.approx(ratio)
    assert rows[-1][2] / rows[0][2] == pytest.approx(ratio)
    # ordering gap: adversarial delay is several times the good order's
    for row in rows:
        assert row[2] > 5 * row[1]
