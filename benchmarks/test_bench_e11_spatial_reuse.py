"""E11: spatial reuse under the k-hop conflict model.

Expected shape: required slots saturate once the chain outgrows the
conflict distance while total demand keeps growing; utilization exceeds 1.
The 1-hop model (no secondary interference) reuses more aggressively than
the 802.16-mandated 2-hop model.
"""

from conftest import run_experiment

from repro.analysis.experiments import e11_spatial_reuse


def test_bench_e11_spatial_reuse(benchmark):
    result = run_experiment(benchmark, e11_spatial_reuse,
                            chain_lengths=(4, 6, 8, 10, 12, 16))
    slots_1hop = [row[2] for row in result.rows]
    slots_2hop = [row[3] for row in result.rows]
    assert slots_2hop[-1] == slots_2hop[-3], "2-hop slots saturate"
    assert slots_1hop[-1] == slots_1hop[-3], "1-hop slots saturate"
    for one, two in zip(slots_1hop, slots_2hop):
        assert one <= two, "wider interference needs more slots"
    assert result.rows[-1][4] > 2.0, "utilization shows real reuse"
