"""E8: synchronization error over time.

Expected shape: free-running clocks diverge linearly; beacon sync
plateaus at the jitter floor; skew discipline lowers the plateau.  Zero
slot collisions while the error stays under the guard.
"""

from conftest import run_experiment

from repro.analysis.experiments import e08_sync_error


def test_bench_e08_sync_error(benchmark):
    result = run_experiment(benchmark, e08_sync_error, duration_s=6.0,
                            drift_ppm=10.0)
    rows = {row[0]: row for row in result.rows}
    assert rows["sync_off"][1] > 3 * rows["sync_on"][1], \
        "free-running error must dwarf the synced plateau"
    guard_us = rows["sync_on"][4]
    assert rows["sync_on"][1] < guard_us, "synced error within the guard"
    assert rows["sync_on"][3] == 0, "no slot collisions while synced"
