"""E20 (extension): guaranteed QoS while the mesh itself moves.

Expected shape: at every swept node speed the live schedule stays
S8-conflict-free and every carried flow inside its delay budget -- the
paper's guarantee claim extended to time-varying topologies.  Gateway
re-selection climbs steeply with speed.  The incremental-index arm
(``SolverEngine(delta_updates=True)``) must agree with the
rebuild-always arm step for step while performing strictly fewer full
conflict-index builds whenever the mesh actually churns.
"""

from conftest import run_experiment

from repro.analysis.experiments import e20_mobility


def test_bench_e20_mobility(benchmark):
    result = run_experiment(benchmark, e20_mobility)
    assert any(row[0] >= 10.0 for row in result.rows), \
        "the sweep reaches vehicular speeds"
    for (speed, batches, events, local, resolve, ____, reselect,
         goodput, conflict_ok, guarantee_ok, builds_delta, delta_updates,
         builds_rebuild, arms_identical) in result.rows:
        assert conflict_ok and guarantee_ok, \
            f"schedule validity must survive mobility at {speed} m/s"
        assert arms_identical, \
            "delta-updated and rebuilt indexes must drive identical runs"
        assert 0.0 <= goodput <= 1.0
        if speed == 0.0:
            assert batches == 0 and reselect == 0, \
                "a static field generates no topology churn"
            continue
        assert batches > 0 and events > 0, \
            f"motion at {speed} m/s must churn the topology"
        assert local + resolve == batches, \
            "every churn batch is answered by a repair strategy"
        if speed >= 10.0:
            assert delta_updates > 0, \
                f"delta updates must fire under churn at {speed} m/s"
            assert builds_delta < builds_rebuild, \
                "the delta arm must avoid rebuilds the baseline pays for"
    speeds = [row[0] for row in result.rows]
    resel = {row[0]: row[6] for row in result.rows}
    assert resel[max(speeds)] > resel[min(speeds)], \
        "gateway re-selection grows with node speed"
