"""E1: minimum guaranteed slots vs offered VoIP calls.

Expected shape: min slots grow roughly linearly with calls; the
delay-aware ILP needs no more slots than greedy while also bounding wraps.
"""

from conftest import run_experiment

from repro.analysis.experiments import e01_min_slots


def test_bench_e01_min_slots(benchmark):
    result = run_experiment(benchmark, e01_min_slots,
                            call_counts=(1, 2, 3, 4, 5, 6))
    slots = [row[2] for row in result.rows if row[2] is not None]
    assert slots == sorted(slots), "min slots must grow with load"
    for row in result.rows:
        assert row[2] is None or row[2] >= row[1], "ILP below lower bound"
