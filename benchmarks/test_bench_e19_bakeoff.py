"""E19 (extension): intra-node service-flow scheduler bake-off.

Expected dominance ordering over the mixed UGS+rtPS+nrtPS+BE saturating
load: the deadline-aware disciplines (strict priority, EDF) meet the
rtPS latency contract but starve the multi-hop best-effort flow; the
round-robin disciplines (WRR, DRR) keep every flow alive and score a
higher flow-level fairness index at the cost of rtPS latency
violations.  UGS is untouchable under every discipline -- its grants
are reserved, so its contract never depends on the arbitration policy.
"""

from conftest import run_experiment

from repro.analysis.experiments import e19_scheduler_bakeoff
from repro.mesh16.frame import default_frame_config
from repro.net.topology import chain_topology
from repro.qos import QosAdmissionController, ServiceClass, ServiceFlow, \
    TrafficContract


def test_bench_e19_bakeoff(benchmark):
    result = run_experiment(benchmark, e19_scheduler_bakeoff)
    rows = {row[0]: row for row in result.rows}
    assert set(rows) == {"strict", "wrr", "drr", "edf"}
    (DISC, UGS_VIOL, RTPS_VIOL, RTPS_P95, NRTPS_MET, BE_SHARE, BE_STARVED,
     JAIN, MAX_BE_AGE, IDLE) = range(10)

    # UGS: reserved grants carry it regardless of arbitration
    for row in rows.values():
        assert row[UGS_VIOL] == 0, f"{row[DISC]}: UGS contract broken"
        assert row[NRTPS_MET] == 1, f"{row[DISC]}: nrtPS rate floor broken"

    # deadline-aware disciplines meet the rtPS latency contract...
    for name in ("strict", "edf"):
        assert rows[name][RTPS_VIOL] == 0
        # ...by starving the multi-hop BE flow outright
        assert rows[name][BE_STARVED] == 1

    # round-robin disciplines trade rtPS latency for BE survival
    for name in ("wrr", "drr"):
        assert rows[name][RTPS_VIOL] > 0
        assert rows[name][RTPS_P95] > rows["strict"][RTPS_P95]
        assert rows[name][BE_STARVED] == 0

    # the fairness side of the trade: DRR beats strict on BE share and
    # on the flow-level Jain index
    assert rows["drr"][BE_SHARE] > rows["strict"][BE_SHARE]
    assert rows["drr"][JAIN] > rows["strict"][JAIN]
    assert rows["wrr"][JAIN] > rows["edf"][JAIN]

    # EDF is the gentler deadline discipline: never more rtPS violations
    # than strict priority
    assert rows["edf"][RTPS_VIOL] <= rows["strict"][RTPS_VIOL]

    # the load saturates: essentially every grant is used (the only idle
    # ones are pipeline fill while the first packets cross hop one)
    total = 400 * default_frame_config().data_slots
    for row in rows.values():
        assert row[IDLE] / total < 0.01, f"{row[DISC]}: not saturating"


def test_bench_e19_admission_gate():
    """Acceptance check riding the bake-off scenario: a UGS flow the
    min-slots search cannot carry is rejected, and admitted once the
    incumbent releases its reservation."""
    frame = default_frame_config()
    slot_rate = frame.data_slot_capacity_bits / frame.frame_duration_s

    def ugs(name):
        rate = 2 * slot_rate
        return ServiceFlow(name, 2, 0, ServiceClass.UGS, TrafficContract(
            min_reserved_rate_bps=rate, max_sustained_rate_bps=rate,
            max_latency_s=0.05))

    ctl = QosAdmissionController(chain_topology(3), frame,
                                 guaranteed_region_slots=4)
    assert ctl.request(ugs("voip0")).admitted
    rejected = ctl.request(ugs("voip1"), park_on_reject=True)
    assert not rejected.admitted
    ctl.release("voip0")
    outcomes = ctl.readmit_parked()
    assert [d.flow.name for d in outcomes] == ["voip1"]
    assert outcomes[0].admitted
