"""E18 (extension): control-plane loss tolerance of schedule dissemination.

A 3x3 grid runs three conflicting schedule floods while the corner
victim's control links black out (99.9% loss) across the middle
announcement and ambient control loss sweeps 0..30%.  Expected shape:
the resilient arm (epoch re-floods, coverage-acked activation with
make-before-break transition versions, sync holdover with fail-safe
muting) commits every version, ends with zero stale nodes, and the
executed slot map stays conflict-free (zero S8 violations) with zero
guard-time violations at every loss rate.  The legacy arm -- immediate
activation, single flood, no holdover -- desyncs: the victim executes a
stale map against its neighbours' new one and its drifted clock walks
transmissions into guard time.
"""

from conftest import run_experiment

from repro.analysis.experiments import e18_control_loss


def test_bench_e18_control_loss(benchmark):
    result = run_experiment(benchmark, e18_control_loss)
    resilient = [row for row in result.rows if row[1]]
    legacy = [row for row in result.rows if not row[1]]
    assert resilient and legacy, "both arms present at every loss rate"
    for (loss, ____, ____, s8, guard, mutes, commits, refloods,
         ____, transitions, commit_s, stale, ____, ____) in resilient:
        assert loss <= 0.3
        assert s8 == 0, "resilient arm never executes conflicting maps"
        assert guard == 0, "holdover keeps transmissions out of guard time"
        assert mutes >= 1, "the blacked-out victim fail-safe mutes"
        assert commits == 6, "all three floods (plus transitions) commit"
        assert refloods > 0 and transitions > 0
        assert 0.0 < commit_s < 1.0, "coverage-acked commit stays sub-second"
        assert stale == 0, "re-floods catch the victim back up"
    for row in legacy:
        s8, guard = row[3], row[4]
        assert s8 + guard > 0, "legacy arm desyncs under the same loss"
