"""E22: runtime fault injection vs result fidelity.

Expected shape: as chaos intensity rises the fault counters climb
(crashes, transient failures, torn writes), but because the policy
stops injecting within the retry budget, every row stays bitwise
identical to the chaos-free baseline and both ledger backends agree on
the per-task history.  Damage shows up only where it belongs: retried
tasks and quarantined cache entries.
"""

from conftest import run_experiment

from repro.analysis.experiments import e22_chaos_sweep

IDENTICAL = 10
LEDGERS_AGREE = 11


def test_bench_e22_chaos(benchmark):
    result = run_experiment(benchmark, e22_chaos_sweep,
                            intensities=(0.0, 0.4, 0.8), num_tasks=8)
    assert len(result.rows) == 3
    quiet, mid, loud = result.rows
    assert all(row[IDENTICAL] for row in result.rows), \
        "chaos within the retry budget must never change results"
    assert all(row[LEDGERS_AGREE] for row in result.rows), \
        "jsonl and sqlite ledgers must record the same history"
    faults = [sum(row[2:8]) for row in result.rows]
    assert faults[0] == 0, "zero intensity must inject nothing"
    assert faults[2] > faults[0], \
        "rising intensity must actually inject faults"
    assert loud[8] >= mid[8] >= quiet[8] == 0, \
        "retried-task counts should track intensity"
