"""E10: scheduler cost vs mesh size.

Expected shape: ILP size and time grow quickly with demanded links;
Bellman-Ford recovery from a fixed order stays in the sub-millisecond
range -- the argument for order-then-recover.
"""

from conftest import run_experiment

from repro.analysis.experiments import e10_solver_scaling


def test_bench_e10_solver_scaling(benchmark):
    result = run_experiment(benchmark, e10_solver_scaling,
                            grid_sizes=((2, 2), (2, 3), (3, 3), (3, 4)))
    variables = [row[2] for row in result.rows]
    assert variables == sorted(variables)
    for row in result.rows:
        assert row[4] < 0.05, "BF recovery must stay ~instant"
        assert row[5] is not None, "all instances schedulable"
        # warm-vs-cold arm: the warm engine must reproduce the cold
        # searches bitwise while paying strictly fewer ILP solves
        cold_ilp, warm_ilp, shortcuts, identical = row[8:12]
        assert identical, "warm results must be bitwise-identical to cold"
        assert shortcuts > 0, "warm arm must certify probes via BF"
        assert warm_ilp < cold_ilp, "warm arm must save ILP solves"
