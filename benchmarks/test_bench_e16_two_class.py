"""E16 (extension): best-effort capacity vs guaranteed VoIP load.

Expected shape: each admitted call grows the minimum guaranteed region, so
the elastic class's grant fraction falls monotonically toward zero -- the
multi-service trade the NET-COOP companion paper frames.
"""

from conftest import run_experiment

from repro.analysis.experiments import e16_two_class


def test_bench_e16_two_class(benchmark):
    result = run_experiment(benchmark, e16_two_class)
    regions = [row[1] for row in result.rows if row[1] is not None]
    fractions = [row[4] for row in result.rows if row[4] is not None]
    assert regions == sorted(regions), "guaranteed region grows with load"
    assert fractions == sorted(fractions, reverse=True), \
        "best-effort grant fraction shrinks monotonically"
    assert fractions[0] > 2 * fractions[-1], "the squeeze is substantial"
