"""E9: slot efficiency vs slot duration.

Expected shape: efficiency is monotone in slot length (guard + PLCP
amortization) and far from 1 at 802.16-minislot-like durations --
quantifying why the emulation uses fat slots.
"""

from conftest import run_experiment

from repro.analysis.experiments import e09_goodput_efficiency


def test_bench_e09_goodput_efficiency(benchmark):
    result = run_experiment(benchmark, e09_goodput_efficiency)
    efficiency = [row[3] for row in result.rows]
    assert efficiency == sorted(efficiency)
    assert efficiency[0] < 0.35, "short slots are overhead-dominated"
    assert efficiency[-1] > 0.8, "long slots approach the channel rate"
