"""E23: interference backends -- protocol model vs SINR ground truth.

Expected shape: the SINR backend hears further than two hops on the
90 m chain, so the 2-hop protocol graph leaves interfering pairs
uncovered (constant across carrier-sense multipliers -- audibility does
not depend on cs), the protocol-clean schedule carries SINR-level
violations, and the SINR schedule pays a couple of extra slots to stay
clean against the physical truth.  Hidden-node pairs and DCF jam
damage fall as the carrier-sense range widens past the audible range.
"""

from conftest import run_experiment

from repro.analysis.experiments import e23_interference_backends

UNCOVERED = 4
HIDDEN = 5
PROTO_SLOTS = 6
SINR_SLOTS = 7
PROTO_VIOL = 8
SINR_S8_OK = 9


def test_bench_e23_interference(benchmark):
    result = run_experiment(benchmark, e23_interference_backends,
                            cs_multipliers=(1.0, 2.5), duration_s=1.0)
    assert len(result.rows) == 2
    narrow, wide = result.rows
    assert all(row[UNCOVERED] > 0 for row in result.rows), \
        "the SINR truth must expose pairs the 2-hop model misses"
    assert narrow[HIDDEN] > 0, \
        "a narrow carrier-sense range must leave hidden-node pairs"
    assert narrow[HIDDEN] > wide[HIDDEN], \
        "widening carrier sense must shrink the hidden-node set"
    assert all(row[SINR_S8_OK] for row in result.rows), \
        "SINR-backend schedules must be S8-clean against the SINR graph"
    assert all(row[PROTO_VIOL] > 0 for row in result.rows), \
        "the protocol schedule should collide under the SINR truth here"
    assert all(row[SINR_SLOTS] >= row[PROTO_SLOTS]
               for row in result.rows), \
        "the denser SINR graph can never need fewer slots"
