"""E5: VoIP capacity -- TDMA emulation (with admission control) vs DCF.

Expected shape: TDMA admits up to its schedulability limit and every
admitted call meets QoS; DCF collapses collectively past a load knee.
"""

from conftest import run_experiment

from repro.analysis.experiments import e05_voip_capacity


def test_bench_e05_voip_capacity(benchmark):
    result = run_experiment(benchmark, e05_voip_capacity,
                            call_counts=(2, 4, 6, 8, 10), duration_s=2.0)
    for row in result.rows:
        offered, admitted, tdma_ok, dcf_ok = row[:4]
        assert tdma_ok == admitted, "every admitted TDMA call meets QoS"
    light, heavy = result.rows[0], result.rows[-1]
    assert light[3] == light[0], "DCF clean at light load"
    assert heavy[3] < heavy[0], "DCF degraded past the knee"
    assert heavy[5] > light[5], "DCF loss grows with load"
