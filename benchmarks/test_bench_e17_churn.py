"""E17 (extension): online schedule repair vs full re-solve under churn.

Expected shape: every churn rate sees fault events; local Bellman-Ford
repair handles the overwhelming majority of them with zero ILP probes, so
its mean convergence window is strictly smaller than the full re-solve
baseline's and fewer packets are lost during convergence.  After every
event the live schedule must stay conflict-free (S8) and every carried
call inside its delay budget (S30) -- the guarantee claim under churn.
"""

from conftest import run_experiment

from repro.analysis.experiments import e17_churn


def test_bench_e17_churn(benchmark):
    result = run_experiment(benchmark, e17_churn)
    assert all(row[1] > 0 for row in result.rows), "every rate sees churn"
    for (____, events, local, ____, repair_f, resolve_f,
         lost_repair, lost_resolve, ____, conflict_ok,
         guarantee_ok) in result.rows:
        assert local > 0, "local repair fires at every churn rate"
        assert repair_f < resolve_f, \
            "repair converges in fewer frames than the re-solve baseline"
        assert lost_repair <= lost_resolve, \
            "repair never loses more packets than re-solving would"
        assert conflict_ok and guarantee_ok, \
            "post-repair schedules keep the S8/S30 invariants"
