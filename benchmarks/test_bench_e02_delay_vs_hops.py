"""E2: end-to-end delay vs hop count per ordering policy.

Expected shape: delay-aware orders (ILP, tree) stay within one frame at
any hop count; the adversarial order pays ~a frame per hop.
"""

from conftest import run_experiment

from repro.analysis.experiments import e02_delay_vs_hops


def test_bench_e02_delay_vs_hops(benchmark):
    result = run_experiment(benchmark, e02_delay_vs_hops,
                            hop_counts=(2, 3, 4, 5, 6, 7, 8))
    frame_ms = 10.0
    for row in result.rows:
        hops, ilp_ms, tree_ms, ____, adversarial_ms = row[:5]
        assert ilp_ms <= frame_ms
        assert tree_ms <= frame_ms
        assert adversarial_ms >= (hops - 1) * frame_ms * 0.9
