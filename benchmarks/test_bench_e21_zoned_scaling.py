"""E21: zoned/greedy scaling vs the exact ILP on city-scale meshes.

Expected shape: the exact arm stops being tractable within a few
hundred links while the zoned and greedy arms keep producing validated
(S8 + S30) schedules; where the exact optimum exists the heuristic gap
stays within the policy's advertised 10% tolerance.
"""

from conftest import run_experiment

from repro.analysis.experiments import e21_zoned_scaling

GAP = 9  # column index of zoned_gap_pct
EXACT_STATUS = 13


def test_bench_e21_zoned_scaling(benchmark):
    result = run_experiment(benchmark, e21_zoned_scaling,
                            sizes=((24, 16), (80, 60), (240, 180)),
                            exact_link_cap=120)
    exact_rows = [r for r in result.rows if r[EXACT_STATUS] == "ok"]
    dnf_rows = [r for r in result.rows if r[EXACT_STATUS] != "ok"]
    assert exact_rows, "at least one size must be exactly solvable"
    assert dnf_rows, "at least one size must defeat the exact ILP"
    for row in result.rows:
        assert row[11] is True, "every schedule must be S8 conflict-free"
        assert row[12] is True, "every schedule must meet S30 guarantees"
        assert row[6] is not None, "zoned arm must always produce a schedule"
        assert row[7] is not None, "greedy arm must always produce a schedule"
    for row in exact_rows:
        assert row[GAP] <= 10.0, \
            "zoned gap must stay within the advertised tolerance"
        assert row[GAP + 1] <= 15.0, \
            "greedy gap should stay moderate where exact is tractable"
