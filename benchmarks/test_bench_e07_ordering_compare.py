"""E7: ordering policies across topologies.

Expected shape: the ILP and the tree algorithm achieve zero wraps;
greedy/random orders wrap.
"""

from conftest import run_experiment

from repro.analysis.experiments import e07_ordering_compare


def test_bench_e07_ordering_compare(benchmark):
    result = run_experiment(benchmark, e07_ordering_compare)
    for row in result.rows:
        name, flows, ilp, tree, greedy, random_ = row
        assert ilp == 0, f"{name}: ILP must reach zero wraps"
        if tree is not None:
            assert tree == 0, f"{name}: tree algorithm must match the ILP"
        assert greedy >= ilp and random_ >= ilp
    # at least one baseline wraps somewhere, or the comparison is vacuous
    assert any(row[4] > 0 or row[5] > 0 for row in result.rows)
