"""Shared helpers for the experiment benchmarks.

Each benchmark runs one experiment from
:mod:`repro.analysis.experiments` exactly once under pytest-benchmark
timing, prints the reconstructed table, and saves it under
``benchmarks/results/`` so EXPERIMENTS.md can be regenerated from a run.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def run_experiment(benchmark, experiment_fn, **kwargs):
    """Time one experiment run, print and persist its table."""
    result = benchmark.pedantic(lambda: experiment_fn(**kwargs),
                                rounds=1, iterations=1)
    RESULTS_DIR.mkdir(exist_ok=True)
    table = result.table()
    (RESULTS_DIR / f"{result.experiment}.txt").write_text(table + "\n")
    print()
    print(table)
    return result
