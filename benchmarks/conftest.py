"""Shared helpers for the experiment benchmarks.

Each benchmark runs one experiment from
:mod:`repro.analysis.experiments` exactly once under pytest-benchmark
timing, prints the reconstructed table, and saves it under
``benchmarks/results/`` so EXPERIMENTS.md can be regenerated from a run.

Every run is also appended to the runtime's JSONL run ledger
(``benchmarks/results/ledger.jsonl``), so
``python -m repro --cache-dir benchmarks/results --ledger-summary``
shows where benchmark time goes across sessions.
"""

from __future__ import annotations

import pathlib
import time

from repro.runtime.ledger import DEFAULT_LEDGER_NAME, RunLedger
from repro.runtime.tasks import TaskResult, make_task, task_key

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
LEDGER_PATH = RESULTS_DIR / DEFAULT_LEDGER_NAME


def run_experiment(benchmark, experiment_fn, **kwargs):
    """Time one experiment run, print, persist, and ledger its table."""
    started = time.perf_counter()
    result = benchmark.pedantic(lambda: experiment_fn(**kwargs),
                                rounds=1, iterations=1)
    wall_s = time.perf_counter() - started
    RESULTS_DIR.mkdir(exist_ok=True)
    table = result.table()
    (RESULTS_DIR / f"{result.experiment}.txt").write_text(table + "\n")
    task = make_task(experiment_fn, params=kwargs)
    RunLedger(LEDGER_PATH).record(TaskResult(
        task=task, key=task_key(task), outcome="ok", wall_s=wall_s,
        attempts=1, worker="benchmark"))
    print()
    print(table)
    return result
