"""E4: emulation overhead -- guard time vs drift and resync period.

Expected shape: required guard grows linearly in drift x resync interval;
slot capacity shrinks and hits zero when the guard swallows the slot.
"""

from conftest import run_experiment

from repro.analysis.experiments import e04_overhead


def test_bench_e04_overhead(benchmark):
    result = run_experiment(benchmark, e04_overhead)
    by_key = {(row[0], row[1]): row for row in result.rows}
    # monotone in drift at fixed interval
    assert by_key[(50, 1.0)][2] > by_key[(5, 1.0)][2]
    # monotone in interval at fixed drift
    assert by_key[(10, 10.0)][2] > by_key[(10, 0.1)][2]
    # the extreme corner is unusable
    assert by_key[(50, 10.0)][4] == 0
    # the benign corner keeps most of the slot
    assert by_key[(5, 0.1)][4] > 2000
