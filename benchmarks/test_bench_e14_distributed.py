"""E14 (extension): distributed DSCH handshake vs centralized ILP.

Expected shape: the local three-way handshake serves all demands on
uncongested frames at exactly 3 messages per link, with a makespan in the
same ballpark as the centralized answer (sometimes tighter, since it
protects exact interference rather than the conservative 2-hop model).
"""

from conftest import run_experiment

from repro.analysis.experiments import e14_distributed_vs_centralized


def test_bench_e14_distributed(benchmark):
    result = run_experiment(benchmark, e14_distributed_vs_centralized)
    for row in result.rows:
        case, links, central, makespan, served, messages, ____ = row
        assert served == f"{links}/{links}", f"{case}: demand stranded"
        assert messages == 3 * links
        # same ballpark: within 2x of the centralized region either way
        assert makespan <= 2 * central
        assert central <= 2 * makespan
