"""E15 (extension): control plane ablation -- roster vs mesh election.

Expected shape: the roster packs every control opportunity while election
idles some to holdoffs (recovering a share via spatial reuse on sparse
topologies) -- but sync quality is equivalent: both arms hold the mesh an
order of magnitude under the guard, with zero control collisions and zero
VoIP loss.
"""

from conftest import run_experiment

from repro.analysis.experiments import e15_control_plane
from repro.mesh16.frame import default_frame_config


def test_bench_e15_control_plane(benchmark):
    result = run_experiment(benchmark, e15_control_plane)
    guard_us = default_frame_config().guard_s * 1e6
    by_key = {(row[0], row[1]): row for row in result.rows}
    for (topo, plane), row in by_key.items():
        assert row[2] < guard_us / 2, f"{topo}/{plane}: sync too loose"
        assert row[5] == 0, f"{topo}/{plane}: control collisions"
        assert row[6] == 0, f"{topo}/{plane}: VoIP loss"
    for topo in ("grid3x3", "chain10"):
        assert by_key[(topo, "roster")][3] >= by_key[(topo, "election")][3]
    # spatial reuse: the sparse chain recovers more density than the grid
    assert (by_key[("chain10", "election")][3]
            >= by_key[("grid3x3", "election")][3])
