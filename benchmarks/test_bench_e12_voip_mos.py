"""E12: worst-call MOS at and past the DCF knee.

Expected shape: TDMA keeps every admitted call near the codec ceiling
(~4.0 for G.729); DCF's worst call collapses toward 1.0 past the knee.
"""

from conftest import run_experiment

from repro.analysis.experiments import e12_voip_mos


def test_bench_e12_voip_mos(benchmark):
    result = run_experiment(benchmark, e12_voip_mos, call_counts=(4, 8),
                            duration_s=2.0)
    moderate, heavy = result.rows
    assert moderate[2] > 3.8, "TDMA calls near the codec MOS ceiling"
    assert heavy[2] > 3.8, "TDMA protects admitted calls at heavy load"
    assert heavy[3] < 2.5, "DCF worst call collapses past the knee"
    assert heavy[2] - heavy[3] > 1.0
