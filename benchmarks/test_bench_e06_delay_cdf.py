"""E6: delay distribution -- TDMA bounded, DCF heavy-tailed.

Expected shape: TDMA's p50..max span is nearly flat (hard service bound);
DCF's tail stretches by multiples of its median under contention.
"""

from conftest import run_experiment

from repro.analysis.experiments import e06_delay_cdf


def test_bench_e06_delay_cdf(benchmark):
    result = run_experiment(benchmark, e06_delay_cdf, num_calls=6,
                            duration_s=3.0)
    rows = {row[0]: row for row in result.rows}
    tdma_spread = rows["max"][1] - rows["p50"][1]
    dcf_spread = rows["max"][2] - rows["p50"][2]
    assert tdma_spread < 5.0, "TDMA delay is capped within ~half a frame"
    assert dcf_spread > tdma_spread, "DCF tail exceeds TDMA's"
