"""E13 (extension): channel errors -- TDMA, TDMA + slot-ARQ, DCF.

Expected shape: plain TDMA loss tracks ~1-(1-p)^hops (channel errors pass
straight through, delay pinned by the schedule); DCF and the slot-ARQ
extension both hold loss near zero by retransmitting, paying in delay --
but the ARQ arm's delay stays schedule-shaped (frames), not
contention-shaped.
"""

from conftest import run_experiment

from repro.analysis.experiments import e13_channel_errors


def test_bench_e13_channel_errors(benchmark):
    result = run_experiment(benchmark, e13_channel_errors, duration_s=2.0)
    clean = result.rows[0]
    worst = result.rows[-1]
    assert clean[1] == 0.0 and clean[2] == 0.0 and clean[3] == 0.0
    # plain TDMA loss grows with the error rate...
    tdma_losses = [row[1] for row in result.rows]
    assert tdma_losses == sorted(tdma_losses)
    assert worst[1] > 0.05
    # ...while both ARQ mechanisms absorb it
    assert worst[2] <= worst[1] / 3, "slot-ARQ must recover most loss"
    assert worst[3] <= worst[1] / 3, "DCF ARQ must recover most loss"
    # plain TDMA delay is pinned by the schedule (loss only removes
    # samples, shifting the p95 by at most a sample spacing); the ARQ arm
    # pays real delay
    assert abs(worst[4] - clean[4]) < 0.05 * clean[4]
    assert worst[5] > clean[5]
    # retransmission counters move accordingly
    assert worst[7] > 0
    assert worst[8] > clean[8]
