"""Statistics helpers."""

import pytest

from repro.analysis.stats import mean_confidence_interval, summarize
from repro.errors import ConfigurationError


class TestSummarize:
    def test_basic(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.n == 3
        assert summary.mean == pytest.approx(2.0)
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert summary.std == pytest.approx(1.0)

    def test_single_sample_zero_std(self):
        assert summarize([5.0]).std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize([])


class TestConfidenceInterval:
    def test_contains_mean(self):
        mean, low, high = mean_confidence_interval([1, 2, 3, 4, 5])
        assert low <= mean <= high
        assert mean == pytest.approx(3.0)

    def test_wider_at_higher_confidence(self):
        data = [1.0, 2.0, 3.0, 4.0, 5.0]
        ____, low95, high95 = mean_confidence_interval(data, 0.95)
        ____, low99, high99 = mean_confidence_interval(data, 0.99)
        assert high99 - low99 > high95 - low95

    def test_degenerate_cases(self):
        mean, low, high = mean_confidence_interval([7.0])
        assert mean == low == high == 7.0
        mean, low, high = mean_confidence_interval([2.0, 2.0, 2.0])
        assert low == high == 2.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            mean_confidence_interval([])
        with pytest.raises(ConfigurationError):
            mean_confidence_interval([1.0, 2.0], confidence=1.5)
