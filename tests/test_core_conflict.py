"""Conflict-graph construction."""

import pytest

from repro.core.conflict import (
    conflict_degree,
    conflict_graph,
    conflicting_pairs,
    max_conflict_clique_demand,
)
from repro.errors import ConfigurationError
from repro.net.topology import chain_topology, star_topology


class TestOneHopModel:
    def test_links_sharing_a_node_conflict(self, chain5):
        conflicts = conflict_graph(chain5, hops=1)
        assert conflicts.has_edge((0, 1), (1, 2))
        assert conflicts.has_edge((0, 1), (1, 0))  # reverse direction too

    def test_disjoint_links_do_not_conflict(self, chain5):
        conflicts = conflict_graph(chain5, hops=1)
        assert not conflicts.has_edge((0, 1), (2, 3))
        assert not conflicts.has_edge((0, 1), (3, 4))


class TestTwoHopModel:
    def test_adjacent_links_conflict(self, chain5):
        conflicts = conflict_graph(chain5, hops=2)
        assert conflicts.has_edge((0, 1), (1, 2))

    def test_one_hop_separated_links_conflict(self, chain5):
        # (0,1) and (2,3): node 1 and node 2 are neighbours
        conflicts = conflict_graph(chain5, hops=2)
        assert conflicts.has_edge((0, 1), (2, 3))

    def test_two_hop_separated_links_do_not_conflict(self, chain5):
        # (0,1) and (3,4): closest endpoints 1 and 3 are 2 hops apart
        conflicts = conflict_graph(chain5, hops=2)
        assert not conflicts.has_edge((0, 1), (3, 4))

    def test_star_is_a_clique(self):
        topo = star_topology(4)
        conflicts = conflict_graph(topo, hops=2)
        n = conflicts.number_of_nodes()
        assert conflicts.number_of_edges() == n * (n - 1) // 2


class TestGeneral:
    def test_default_covers_all_links(self, chain5):
        conflicts = conflict_graph(chain5)
        assert set(conflicts.nodes) == set(chain5.links)

    def test_restricted_link_set(self, chain5):
        links = [(0, 1), (1, 2)]
        conflicts = conflict_graph(chain5, hops=2, links=links)
        assert sorted(conflicts.nodes) == links

    def test_unknown_restricted_link_rejected(self, chain5):
        with pytest.raises(ConfigurationError):
            conflict_graph(chain5, links=[(0, 4)])

    def test_invalid_hops_rejected(self, chain5):
        with pytest.raises(ConfigurationError):
            conflict_graph(chain5, hops=0)

    def test_larger_hops_only_adds_conflicts(self, grid33):
        one = conflict_graph(grid33, hops=1)
        two = conflict_graph(grid33, hops=2)
        three = conflict_graph(grid33, hops=3)
        assert set(one.edges) <= set(two.edges) <= set(three.edges)

    def test_symmetric(self, grid33):
        conflicts = conflict_graph(grid33, hops=2)
        for a, b in conflicts.edges:
            assert conflicts.has_edge(b, a)

    def test_no_self_conflicts(self, grid33):
        conflicts = conflict_graph(grid33, hops=2)
        assert all(a != b for a, b in conflicts.edges)


def test_conflicting_pairs_deterministic(chain5):
    conflicts = conflict_graph(chain5, hops=2)
    pairs1 = list(conflicting_pairs(conflicts))
    pairs2 = list(conflicting_pairs(conflicts))
    assert pairs1 == pairs2
    assert pairs1 == sorted(pairs1)
    assert all(a < b for a, b in pairs1)


def test_conflict_degree(chain5):
    conflicts = conflict_graph(chain5, hops=2)
    degrees = conflict_degree(conflicts)
    # middle links conflict with more links than edge links
    assert degrees[(2, 3)] >= degrees[(0, 1)]


class TestCliqueDemandBound:
    def test_node_clique_sum(self, chain5):
        conflicts = conflict_graph(chain5, hops=2)
        demands = {(0, 1): 2, (1, 2): 3, (1, 0): 1}
        # node 1 touches all three links: 2 + 3 + 1
        assert max_conflict_clique_demand(conflicts, demands) == 6

    def test_empty_demands(self, chain5):
        conflicts = conflict_graph(chain5, hops=2)
        assert max_conflict_clique_demand(conflicts, {}) == 0

    def test_negative_demand_rejected(self, chain5):
        conflicts = conflict_graph(chain5, hops=2)
        with pytest.raises(ConfigurationError):
            max_conflict_clique_demand(conflicts, {(0, 1): -1})

    def test_bound_is_valid_lower_bound(self):
        # on a star, all links conflict, so min slots == total demand
        topo = star_topology(3)
        conflicts = conflict_graph(topo, hops=2)
        demands = {(0, 1): 1, (0, 2): 2, (0, 3): 1}
        assert max_conflict_clique_demand(conflicts, demands) == 4


class TestDegenerateHopsGuard:
    def test_whole_mesh_reach_is_rejected(self):
        # hops=4 reaches every node of a 5-chain from every link: the
        # conflict graph is complete and the schedule would serialise
        with pytest.raises(ConfigurationError, match="degenerates"):
            conflict_graph(chain_topology(5), hops=4)

    def test_error_points_at_the_sinr_alternative(self):
        with pytest.raises(ConfigurationError, match="SinrModel"):
            conflict_graph(chain_topology(4), hops=3)

    def test_two_hop_default_is_exempt_on_tiny_meshes(self):
        # on a 3-chain even hops=2 yields a complete conflict graph;
        # the 802.16-mandated default must never be rejected for it
        graph = conflict_graph(chain_topology(3), hops=2)
        assert graph.number_of_edges() > 0

    def test_wide_hops_on_a_long_chain_is_fine(self):
        # hops=3 on a 10-chain does not reach the whole mesh: accepted
        graph = conflict_graph(chain_topology(10), hops=3)
        assert graph.number_of_edges() > 0
