"""Unit tests for the interference-model seam (repro.phy.models, S39)."""

import math

import pytest

from repro import obs
from repro.core.conflict import conflict_graph
from repro.errors import ConfigurationError
from repro.mobility.stream import RadioRangeModel, TopologyStream
from repro.net.topology import chain_topology, from_edges, grid_topology
from repro.phy.models import (
    ChannelCouplings,
    InterferenceModel,
    McsEntry,
    McsTable,
    PathLossModel,
    ProtocolModel,
    SinrModel,
    coerce_interference,
)

# chain spacing chosen so adjacent SNR sits in the 12M band and
# interference is audible out to ~3 hops (see docs/interference.md)
SPACING = 90.0


def chain8():
    return chain_topology(8, spacing=SPACING)


# -- PathLossModel ----------------------------------------------------------

def test_path_loss_log_distance():
    pl = PathLossModel(exponent=3.0, ref_loss_db=40.0)
    assert pl.loss_db(1.0) == pytest.approx(40.0)
    assert pl.loss_db(10.0) == pytest.approx(70.0)  # +10*n per decade
    assert pl.loss_db(100.0) == pytest.approx(100.0)
    # receivers inside the reference distance see the reference loss
    assert pl.loss_db(0.01) == pytest.approx(40.0)


def test_path_loss_rss_and_range_inverse():
    pl = PathLossModel(exponent=3.0, ref_loss_db=40.0)
    rng = pl.range_m(20.0, -86.0)
    assert pl.rss_dbm(20.0, rng) == pytest.approx(-86.0)
    # no positive margin -> no range at all
    assert pl.range_m(20.0, 30.0) == 0.0


def test_path_loss_validation():
    with pytest.raises(ConfigurationError):
        PathLossModel(exponent=0.0)
    with pytest.raises(ConfigurationError):
        PathLossModel(ref_distance_m=-1.0)


# -- McsTable ---------------------------------------------------------------

def test_mcs_table_sorted_and_validated():
    table = McsTable.from_rows([("fast", 20.0, 100), ("slow", 10.0, 10)])
    assert [e.name for e in table.entries] == ["slow", "fast"]
    assert table.floor_db == 10.0
    with pytest.raises(ConfigurationError):
        McsTable([])
    with pytest.raises(ConfigurationError):  # duplicate threshold
        McsTable.from_rows([("a", 10.0, 10), ("b", 10.0, 20)])
    with pytest.raises(ConfigurationError):  # rate not increasing
        McsTable.from_rows([("a", 10.0, 20), ("b", 20.0, 10)])
    with pytest.raises(ConfigurationError):  # non-positive rate
        McsEntry("x", 0.0, 0)


def test_mcs_best_is_fastest_usable():
    table = McsTable.default()
    assert table.best(9.9) is None
    assert table.best(10.0).name == "6M"
    assert table.best(17.9).name == "12M"
    assert table.best(99.0).name == "54M"


def test_mcs_select_hysteresis():
    table = McsTable.default()
    twelve = table.entries[1]
    # upgrade to 24M (threshold 18) only once cleared by the margin
    assert table.select(18.5, twelve, hysteresis_db=2.0) is twelve
    assert table.select(20.0, twelve, hysteresis_db=2.0).name == "24M"
    # partial upgrade: SINR good for 36M raw but only 24M+margin
    assert table.select(23.0, twelve, hysteresis_db=2.0).name == "24M"
    # downgrade is immediate once below the current threshold
    assert table.select(12.0, twelve, hysteresis_db=2.0).name == "6M"
    # below the floor nothing decodes, hysteresis or not
    assert table.select(5.0, twelve, hysteresis_db=2.0) is None
    # no previous assignment: raw best
    assert table.select(18.5, None, hysteresis_db=2.0).name == "24M"


# -- ProtocolModel / coercion ----------------------------------------------

def test_protocol_model_matches_conflict_graph():
    topology = grid_topology(3, 3)
    model = ProtocolModel(hops=2)
    ours = model.conflict_graph(topology)
    theirs = conflict_graph(topology, hops=2)
    assert sorted(ours.nodes) == sorted(theirs.nodes)
    assert (sorted(map(sorted, ours.edges))
            == sorted(map(sorted, theirs.edges)))
    assert model.cache_token(topology) == 2


def test_protocol_model_validation():
    for bad in (0, -1, True, 1.5, "2"):
        with pytest.raises(ConfigurationError):
            ProtocolModel(hops=bad)


def test_coerce_interference():
    assert coerce_interference(None).hops == 2
    assert coerce_interference(None, default_hops=3).hops == 3
    assert coerce_interference(1).hops == 1
    model = SinrModel()
    assert coerce_interference(model) is model
    with pytest.raises(ConfigurationError):
        coerce_interference(True)
    with pytest.raises(ConfigurationError):
        coerce_interference("sinr")


# -- SinrModel geometry and conflicts ---------------------------------------

def test_sinr_model_validation():
    with pytest.raises(ConfigurationError):
        SinrModel(cs_multiplier=0.5)
    with pytest.raises(ConfigurationError):
        SinrModel(hysteresis_db=-1.0)
    with pytest.raises(ConfigurationError):  # undecodable link budget
        SinrModel(tx_power_dbm=-200.0)


def test_sinr_model_needs_positions():
    bare = from_edges([(0, 1), (1, 2)], name="bare")
    model = SinrModel()
    with pytest.raises(ConfigurationError, match="positions"):
        model.conflict_graph(bare)
    with pytest.raises(ConfigurationError, match="positions"):
        model.cache_token(bare)


def test_sinr_snr_math():
    model = SinrModel()
    topology = chain8()
    # 90 m at exponent 3: loss = 40 + 30*log10(90) dB
    expected = 20.0 - (40.0 + 30.0 * math.log10(SPACING)) - (-96.0)
    assert model.snr_db(topology, (0, 1)) == pytest.approx(expected)
    # an interferer two hops out drags SINR below the noise-only SNR
    assert model.sinr_db(topology, (0, 1), 3) < model.snr_db(topology,
                                                             (0, 1))


def test_sinr_conflicts_reach_past_two_hops():
    model = SinrModel()
    topology = chain8()
    graph = model.conflict_graph(topology)
    protocol = conflict_graph(topology, hops=2)
    assert sorted(graph.nodes) == sorted(protocol.nodes)
    # the physical truth hears further than the 2-hop abstraction here
    assert graph.number_of_edges() > protocol.number_of_edges()
    # shared-radio conflicts always hold
    assert graph.has_edge((0, 1), (1, 2))
    # 3-hop-separated transmitters still conflict at this spacing...
    assert graph.has_edge((0, 1), (3, 4))
    # ...but the far end of the chain does not
    assert not graph.has_edge((0, 1), (6, 7))


def test_sinr_conflict_links_subset_validated():
    model = SinrModel()
    topology = chain8()
    sub = model.conflict_graph(topology, links=[(0, 1), (1, 2)])
    assert sorted(sub.nodes) == [(0, 1), (1, 2)]
    with pytest.raises(ConfigurationError):
        model.conflict_graph(topology, links=[(0, 7)])


def test_hidden_pairs_shrink_with_carrier_sense():
    topology = chain8()
    narrow = SinrModel(cs_multiplier=1.0).hidden_node_pairs(topology)
    wide = SinrModel(cs_multiplier=2.5).hidden_node_pairs(topology)
    assert narrow and not wide
    for a, b in narrow:
        assert not set(a) & set(b)  # hidden pairs never share a radio
        cs = SinrModel(cs_multiplier=1.0).carrier_sense_range_m()
        assert topology.distance(a[0], b[0]) > cs


def test_channel_couplings_exclude_neighbours():
    topology = chain8()
    couplings = SinrModel(cs_multiplier=2.5).channel_couplings(topology)
    assert isinstance(couplings, ChannelCouplings)
    assert couplings.sense_pairs and couplings.jam_pairs
    for u, v in couplings.sense_pairs:
        assert v not in topology.graph[u]
        assert topology.distance(u, v) <= SinrModel(
            cs_multiplier=2.5).carrier_sense_range_m()
    for tx, victim in couplings.jam_pairs:
        assert victim not in topology.graph[tx]
        assert tx != victim


# -- adaptive MCS -----------------------------------------------------------

def test_link_rates_hysteresis_is_stateful():
    model = SinrModel()
    # 90 m spacing: SNR ~17.4 dB -> 12M
    rates = model.link_rates(chain_topology(3, spacing=90.0))
    assert {e.name for e in rates.values()} == {"12M"}
    # nodes move closer (80 m, SNR ~19 dB): raw best is 24M but the
    # threshold is not cleared by the 2 dB margin -> the rate holds
    rates = model.link_rates(chain_topology(3, spacing=80.0))
    assert {e.name for e in rates.values()} == {"12M"}
    # much closer (60 m, SNR ~22.7 dB): 24M clears its margin -> upgrade
    rates = model.link_rates(chain_topology(3, spacing=60.0))
    assert {e.name for e in rates.values()} == {"24M"}
    # a fresh model (no carried state) jumps straight to the raw best
    fresh = SinrModel().link_rates(chain_topology(3, spacing=80.0))
    assert {e.name for e in fresh.values()} == {"24M"}


def test_link_rates_pin_below_floor_links_to_lowest():
    # 160 m spacing: SNR ~9.9 dB, below the 6M floor, yet the topology
    # says the link decodes -- charge it the most robust rate
    model = SinrModel()
    rates = model.link_rates(chain_topology(3, spacing=160.0))
    assert {e.name for e in rates.values()} == {"6M"}


def test_sinr_metrics_are_counted():
    with obs.use_registry(obs.MetricsRegistry()) as registry:
        model = SinrModel(cs_multiplier=1.0)
        model.conflict_graph(chain8())
        model.hidden_node_pairs(chain8())
        model.link_rates(chain_topology(3, spacing=90.0))
        model.link_rates(chain_topology(3, spacing=60.0))
        counters = registry.snapshot()["counters"]
    assert counters["phy.sinr.conflict_edges"] > 0
    assert counters["phy.sinr.hidden_pairs"] > 0
    assert counters["phy.sinr.mcs_switches"] > 0


# -- cache token ------------------------------------------------------------

def test_cache_token_tracks_physics_and_positions():
    topology = chain8()
    model = SinrModel()
    token = model.cache_token(topology)
    assert token == model.cache_token(topology)  # stable
    assert token[0] == "sinr"
    assert SinrModel(cs_multiplier=1.5).cache_token(topology) != token
    moved = chain_topology(8, spacing=SPACING + 5.0)
    assert SinrModel().cache_token(moved) != token


# -- mobility unification ---------------------------------------------------

def test_radio_range_model_shares_the_link_budget():
    model = SinrModel()
    radio = model.radio_range_model()
    assert isinstance(radio, RadioRangeModel)
    assert radio.range_m == pytest.approx(model.communication_range_m())
    via_classmethod = RadioRangeModel.from_path_loss(
        model.path_loss, model.tx_power_dbm,
        model.noise_floor_dbm + model.mcs.floor_db)
    assert via_classmethod.range_m == pytest.approx(radio.range_m)


def test_topology_stream_accepts_sinr_model():
    from repro.mobility.trace import MobilityTrace

    trace = MobilityTrace([
        (0.0, 0, 0.0, 0.0), (0.0, 1, 100.0, 0.0),
        (1.0, 0, 0.0, 0.0), (1.0, 1, 100.0, 0.0)])
    model = SinrModel()
    stream = TopologyStream(trace, radio=model)
    assert isinstance(stream.radio, RadioRangeModel)
    assert stream.radio.range_m == pytest.approx(
        model.communication_range_m())
    # 100 m < the ~158 m communication range: the link exists
    _, _, edges = stream.snapshots()[0]
    assert (0, 1) in edges


def test_interference_model_base_is_abstract():
    base = InterferenceModel()
    with pytest.raises(NotImplementedError):
        base.conflict_graph(chain8())
    with pytest.raises(NotImplementedError):
        base.cache_token(chain8())
    assert base.describe() == "abstract"
