"""Property-based tests: the solver-policy arms on random disk meshes.

Three contracts from ISSUE 8:

- zoned and greedy schedules are **S8-conflict-free** (no conflicting
  blocks overlap, validated against the full conflict graph) and meet
  the **S30 guarantees** (throughput stability and the deterministic
  delay bound within every flow's budget);
- the heuristic arms are *sound, never complete*: when they return a
  schedule it meets every delay budget it was given, and its region is
  never smaller than the exact optimum;
- ``policy="exact"`` (and the default ``"auto"`` policy at paper scale)
  stays **bitwise-identical** to the pre-policy solver output: same
  slots, same probe log, same schedule table.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.delay import path_delay_slots
from repro.core.engine import SolverEngine
from repro.core.guarantees import check_guarantees
from repro.core.minslots import minimum_slots
from repro.core.policy import SolverPolicy
from repro.core.zones import greedy_minimum_slots, zoned_minimum_slots
from repro.mesh16.frame import default_frame_config
from repro.net.flows import Flow, FlowSet
from repro.net.routing import route_all
from repro.net.topology import random_disk_topology

FRAME = default_frame_config()
PACKET_BITS = 800


@st.composite
def scheduling_instances(draw):
    """A small random-disk mesh plus 1-4 routed flows with lax budgets."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    num_nodes = draw(st.integers(min_value=4, max_value=9))
    topology = random_disk_topology(num_nodes, radio_range=45.0,
                                   area=80.0, seed=seed)
    nodes = sorted(topology.nodes)
    others = [n for n in nodes if n != nodes[0]]
    srcs = draw(st.lists(st.sampled_from(others), min_size=1, max_size=4,
                         unique=True))
    flows = route_all(topology, FlowSet([
        Flow(f"f{i}", src=s, dst=nodes[0], rate_bps=64_000,
             delay_budget_s=0.2)
        for i, s in enumerate(srcs)]))
    max_zone_links = draw(st.integers(min_value=2, max_value=6))
    return topology, flows, max_zone_links


def _problem(topology, flows, engine):
    from repro.analysis.scenarios import delay_constraints_for

    demands = flows.link_demands(FRAME.frame_duration_s,
                                 FRAME.data_slot_capacity_bits)
    index = engine.conflict_index(topology, hops=2, links=sorted(demands))
    return index, demands, delay_constraints_for(flows, FRAME)


def _assert_s8_and_s30(result, index, demands, constraints, flows):
    """The soundness gate every heuristic schedule must pass."""
    schedule = result.schedule
    assert schedule.violations(index.graph) == []          # S8
    assert schedule.demands_met(demands)
    assert schedule.frame_slots == FRAME.data_slots
    for constraint in constraints:
        assert (path_delay_slots(schedule, constraint.route)
                <= constraint.budget_slots)
    for flow in flows:                                     # S30
        report = check_guarantees(schedule, flow, FRAME, PACKET_BITS)
        assert report.stable
        assert report.meets_budget(flow.delay_budget_s)


@given(scheduling_instances())
@settings(max_examples=12, deadline=None)
def test_heuristic_arms_emit_only_valid_guaranteed_schedules(instance):
    topology, flows, max_zone_links = instance
    engine = SolverEngine()
    index, demands, constraints = _problem(topology, flows, engine)
    exact = minimum_slots(index.graph, demands, FRAME.data_slots,
                          constraints, engine=engine, policy="exact")
    policy = SolverPolicy(mode="zoned", max_zone_links=max_zone_links)
    for result in (
            zoned_minimum_slots(index, demands, FRAME.data_slots,
                                constraints, engine=engine, policy=policy),
            greedy_minimum_slots(index, demands, FRAME.data_slots,
                                 constraints, engine=engine)):
        if not result.feasible:
            continue  # sound, not complete: silence is allowed, lies are not
        _assert_s8_and_s30(result, index, demands, constraints, flows)
        if exact.feasible:
            assert result.slots >= exact.slots  # never beats the optimum


@given(scheduling_instances())
@settings(max_examples=12, deadline=None)
def test_exact_policy_is_bitwise_identical_to_the_pre_policy_solver(
        instance):
    topology, flows, ____ = instance
    engine = SolverEngine()
    index, demands, constraints = _problem(topology, flows, engine)

    # The pre-policy path, verbatim: run_search on a fresh cold engine.
    reference_engine = SolverEngine(warm_start=False, max_indexes=0,
                                    max_problems=0)
    reference = reference_engine.run_search(
        index.graph, demands, FRAME.data_slots, tuple(constraints),
        "linear", FRAME.data_slots, None)

    for policy in ("exact", None):  # explicit exact and default auto
        result = minimum_slots(index.graph, demands, FRAME.data_slots,
                               constraints, engine=SolverEngine(),
                               policy=policy)
        assert result.slots == reference.slots
        assert result.probes == reference.probes
        assert result.lower_bound == reference.lower_bound
        assert result.meta is None
        if reference.schedule is None:
            assert result.schedule is None
        else:
            assert result.schedule.to_dict() == reference.schedule.to_dict()


@given(scheduling_instances())
@settings(max_examples=8, deadline=None)
def test_zoned_solve_is_deterministic(instance):
    """Equal inputs produce equal zoned schedules -- the property the
    E21 serial-vs-parallel identity check rests on."""
    topology, flows, max_zone_links = instance
    policy = SolverPolicy(mode="zoned", max_zone_links=max_zone_links)
    outcomes = []
    for ____ in range(2):
        engine = SolverEngine()
        index, demands, constraints = _problem(topology, flows, engine)
        result = zoned_minimum_slots(index, demands, FRAME.data_slots,
                                     constraints, engine=engine,
                                     policy=policy)
        outcomes.append(result)
    first, second = outcomes
    assert first.slots == second.slots
    assert first.meta == second.meta
    if first.schedule is not None:
        assert first.schedule.to_dict() == second.schedule.to_dict()
