"""Discrete-event kernel behaviour."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


def test_starts_at_zero(sim):
    assert sim.now == 0.0
    assert sim.pending == 0


def test_schedule_and_run(sim):
    fired = []
    sim.schedule(1.5, fired.append, "a")
    sim.run()
    assert fired == ["a"]
    assert sim.now == 1.5


def test_events_run_in_time_order(sim):
    order = []
    sim.schedule(2.0, order.append, "late")
    sim.schedule(1.0, order.append, "early")
    sim.schedule(1.5, order.append, "middle")
    sim.run()
    assert order == ["early", "middle", "late"]


def test_equal_timestamps_fifo(sim):
    order = []
    for label in "abcde":
        sim.schedule(1.0, order.append, label)
    sim.run()
    assert order == list("abcde")


def test_zero_delay_runs_after_current_instant_events(sim):
    order = []

    def first():
        order.append("first")
        sim.schedule(0.0, order.append, "nested")

    sim.schedule(1.0, first)
    sim.schedule(1.0, order.append, "second")
    sim.run()
    assert order == ["first", "second", "nested"]


def test_negative_delay_rejected(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_in_past_rejected(sim):
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_non_finite_time_rejected(sim):
    with pytest.raises(SimulationError):
        sim.schedule_at(float("inf"), lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule_at(float("nan"), lambda: None)


def test_cancelled_event_does_not_fire(sim):
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []


def test_cancel_is_idempotent(sim):
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()


def test_run_until_stops_and_advances_clock(sim):
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(5.0, fired.append, "b")
    sim.run(until=3.0)
    assert fired == ["a"]
    assert sim.now == 3.0
    sim.run()
    assert fired == ["a", "b"]


def test_run_until_includes_boundary_events(sim):
    fired = []
    sim.schedule(2.0, fired.append, "exact")
    sim.run(until=2.0)
    assert fired == ["exact"]


def test_events_scheduled_during_run_execute(sim):
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(1.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 4.0


def test_max_events_guard(sim):
    def forever():
        sim.schedule(0.0, forever)

    sim.schedule(0.0, forever)
    with pytest.raises(SimulationError, match="max_events"):
        sim.run(max_events=100)


def test_run_not_reentrant(sim):
    def nested():
        sim.run()

    sim.schedule(1.0, nested)
    with pytest.raises(SimulationError, match="reentrant"):
        sim.run()


def test_step_executes_one_event(sim):
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    assert sim.step() is True
    assert fired == ["a"]
    assert sim.step() is True
    assert fired == ["a", "b"]
    assert sim.step() is False


def test_step_skips_cancelled(sim):
    fired = []
    event = sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    event.cancel()
    assert sim.step() is True
    assert fired == ["b"]


def test_peek_time(sim):
    assert sim.peek_time() is None
    event = sim.schedule(2.0, lambda: None)
    sim.schedule(3.0, lambda: None)
    assert sim.peek_time() == 2.0
    event.cancel()
    assert sim.peek_time() == 3.0


def test_events_executed_counter(sim):
    for i in range(5):
        sim.schedule(float(i + 1), lambda: None)
    cancelled = sim.schedule(10.0, lambda: None)
    cancelled.cancel()
    sim.run()
    assert sim.events_executed == 5


def test_determinism_across_instances():
    def run_once():
        sim = Simulator()
        log = []
        for i in range(10):
            sim.schedule(1.0, log.append, i)
        sim.run()
        return log

    assert run_once() == run_once()


# -- pending vs lazy cancellation ----------------------------------------


def test_pending_excludes_cancelled_events(sim):
    events = [sim.schedule(float(i + 1), lambda: None) for i in range(4)]
    assert sim.pending == 4
    events[1].cancel()
    assert sim.pending == 3
    # idempotent: a second cancel must not double-count
    events[1].cancel()
    assert sim.pending == 3
    events[2].cancel()
    assert sim.pending == 2


def test_pending_drains_to_zero(sim):
    sim.schedule(1.0, lambda: None)
    doomed = sim.schedule(2.0, lambda: None)
    doomed.cancel()
    sim.schedule(3.0, lambda: None)
    assert sim.pending == 2
    sim.run()
    assert sim.pending == 0


def test_pending_tracks_step_and_peek(sim):
    first = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    first.cancel()
    assert sim.peek_time() == 2.0  # drops the cancelled corpse
    assert sim.pending == 1
    assert sim.step() is True
    assert sim.pending == 0


def test_cancel_after_fire_does_not_corrupt_pending(sim):
    fired = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.run(until=1.5)
    assert sim.pending == 1
    fired.cancel()  # already executed: must be a no-op for the count
    assert sim.pending == 1


def test_step_updates_obs_counters():
    from repro import obs

    reg = obs.MetricsRegistry()
    previous = obs.set_registry(reg)
    try:
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        cancelled = sim.schedule(2.0, lambda: None)
        cancelled.cancel()
        sim.schedule(3.0, lambda: None)
        while sim.step():
            pass
        snap = reg.snapshot()
        assert snap["counters"]["sim.engine.events"] == 2
        # final call returned False but still counts as a step
        assert snap["counters"]["sim.engine.steps"] == 3
    finally:
        obs.set_registry(previous)


def test_run_and_step_count_events_identically():
    from repro import obs

    def drive(stepwise: bool) -> int:
        reg = obs.MetricsRegistry()
        previous = obs.set_registry(reg)
        try:
            sim = Simulator()
            for i in range(5):
                sim.schedule(float(i + 1), lambda: None)
            if stepwise:
                while sim.step():
                    pass
            else:
                sim.run()
            return reg.snapshot()["counters"]["sim.engine.events"]
        finally:
            obs.set_registry(previous)

    assert drive(stepwise=True) == drive(stepwise=False) == 5
